//! Workspace facade for the Stateful Entities (EDBT 2024) reproduction.
//!
//! This crate only re-exports the member crates so that the examples under
//! `examples/` and the integration tests under `tests/` have a single
//! dependency root. See the crate-level documentation of
//! [`stateful_entities`] for the compiler pipeline and IR,
//! [`stateflow_runtime`] / [`statefun_runtime`] for the simulated execution
//! engines, and [`shard_runtime`] for the real multi-threaded sharded engine.

#![forbid(unsafe_code)]

pub use desim;
pub use durable_log;
pub use entity_lang;
pub use mq;
pub use racecheck;
pub use shard_runtime;
pub use state_backend;
pub use stateflow_runtime;
pub use stateful_entities;
pub use statefun_runtime;
pub use txn;
pub use workloads;
