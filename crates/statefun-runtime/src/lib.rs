//! # statefun-runtime
//!
//! Apache Flink StateFun-style baseline runtime (Section 3 "Flink's
//! Statefun"), reproduced as a deterministic virtual-time simulation over the
//! same compiled IR that StateFlow executes.
//!
//! Architectural properties reproduced from the paper's description of the
//! baseline deployment:
//!
//! * **Kafka ingress/egress**: every client request enters and leaves the job
//!   through the log, paying produce/consume latency;
//! * **remote function runtime**: Flink task slots do routing and state
//!   management, but every function body executes in an external (remote)
//!   Python runtime — *every* invocation, read or write, pays the same
//!   remote round trip (this is why workloads A and B look identical in
//!   Figure 3);
//! * **acyclic dataflow**: function-to-function calls (the continuations of
//!   split methods) cannot flow along a cycle — they are re-inserted through
//!   Kafka, paying a full log round trip per hop;
//! * **resource split**: half the cores run the Flink cluster
//!   (messaging + state), the other half run the remote function runtime, so
//!   only half the cores execute business logic — which is why the baseline
//!   saturates earlier in the throughput sweep (Figure 4);
//! * **no transactions, no locking**: concurrent accesses to the same key are
//!   not isolated; the runtime reports `supports_transactions() == false` and
//!   the latency experiment does not run workload T against it, exactly like
//!   the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use desim::stats::Histogram;
use desim::{NetworkModel, ServiceQueue, Time};
use mq::Broker;
use state_backend::StateStore;
use stateful_entities::{
    interp, CallId, DataflowIR, EntityAddr, Key, MethodCall, RuntimeError, RuntimeResult,
    StepOutcome, Value, VerifyError,
};
use std::collections::BTreeMap;

/// Configuration of the StateFun-style deployment.
#[derive(Debug, Clone)]
pub struct StateFunConfig {
    /// Flink task slots (routing + state). The paper's setup: 3 of 6 cores.
    pub flink_slots: usize,
    /// Remote function runtime workers (function execution). The other 3 cores.
    pub function_workers: usize,
    /// Latency constants.
    pub net: NetworkModel,
    /// Checkpoint interval (Flink-style aligned checkpoints); only the
    /// bookkeeping cost is modelled.
    pub checkpoint_interval: Time,
}

impl Default for StateFunConfig {
    fn default() -> Self {
        StateFunConfig {
            flink_slots: 3,
            function_workers: 3,
            net: NetworkModel::default(),
            checkpoint_interval: 1_000 * desim::MILLIS,
        }
    }
}

/// Result of a run (latencies, responses, counters).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// End-to-end latency per completed request (µs).
    pub latencies: Histogram,
    /// Response value per call id.
    pub responses: BTreeMap<u64, Value>,
    /// Total function invocations executed in the remote runtime.
    pub remote_invocations: u64,
    /// Number of continuation events re-inserted through Kafka.
    pub kafka_loops: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Virtual time of the last response.
    pub makespan: Time,
}

#[derive(Debug, Clone)]
struct Request {
    call_id: u64,
    arrival: Time,
    call: MethodCall,
}

/// The StateFun-style baseline runtime simulation.
pub struct StateFunRuntime {
    ir: DataflowIR,
    /// Deployment configuration (public so benches can inspect it).
    pub config: StateFunConfig,
    store: StateStore,
    flink_cores: Vec<ServiceQueue>,
    function_cores: Vec<ServiceQueue>,
    kafka: Broker<u64>,
    requests: Vec<Request>,
    next_call_id: u64,
    round_robin: usize,
}

impl StateFunRuntime {
    /// Create a runtime for a compiled IR.
    ///
    /// Gated on whole-program verification like every other runtime: a
    /// corrupt IR is rejected with a typed [`VerifyError`] before any
    /// simulation structure exists.
    pub fn new(mut ir: DataflowIR, config: StateFunConfig) -> Result<Self, VerifyError> {
        ir.ensure_verified()?;
        let kafka = Broker::new();
        kafka.create_topic("ingress", config.flink_slots);
        kafka.create_topic("egress", config.flink_slots);
        kafka.create_topic("loopback", config.flink_slots);
        Ok(StateFunRuntime {
            store: StateStore::new(config.flink_slots),
            flink_cores: vec![ServiceQueue::new(); config.flink_slots],
            function_cores: vec![ServiceQueue::new(); config.function_workers],
            kafka,
            requests: Vec::new(),
            next_call_id: 0,
            round_robin: 0,
            ir,
            config,
        })
    }

    /// StateFun offers no transactional guarantees across entities.
    pub fn supports_transactions(&self) -> bool {
        false
    }

    /// The IR this runtime executes (ingress-side name→id resolution).
    pub fn ir(&self) -> &DataflowIR {
        &self.ir
    }

    /// Bulk-load an entity instance (setup, not timed).
    pub fn load_entity(&mut self, entity: &str, args: &[Value]) -> RuntimeResult<Value> {
        let (key, state) = interp::instantiate(&self.ir, entity, args)?;
        let class = self
            .ir
            .class_id(entity)
            .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?;
        let addr = EntityAddr::from_ids(class, key);
        let reference = Value::EntityRef(addr.clone());
        self.store.put(addr, state);
        Ok(reference)
    }

    /// Read a field of an entity (verification helper).
    pub fn read_field(&self, entity: &str, key: Key, field: &str) -> Option<Value> {
        let class = stateful_entities::ClassId::lookup(entity)?;
        self.store
            .read_field(&EntityAddr::from_ids(class, key), field)
    }

    /// Submit a client request arriving at `arrival` virtual time.
    pub fn submit(&mut self, arrival: Time, call: MethodCall) -> CallId {
        let call_id = self.next_call_id;
        self.next_call_id += 1;
        self.kafka
            .produce("ingress", call.target.key_hash(), call_id);
        self.requests.push(Request {
            call_id,
            arrival,
            call,
        });
        CallId(call_id)
    }

    fn slot_of(&self, addr: &EntityAddr) -> usize {
        // Cached-hash routing: no key bytes are re-walked per hop.
        addr.partition(self.config.flink_slots)
    }

    /// Process every submitted request in arrival order, in virtual time.
    pub fn run(&mut self) -> RunReport {
        let mut report = RunReport::default();
        let mut requests = self.requests.clone();
        requests.sort_by_key(|r| (r.arrival, r.call_id));
        let net = self.config.net;
        let mut next_checkpoint = self.config.checkpoint_interval;

        for request in requests {
            while request.arrival >= next_checkpoint {
                // Aligned checkpoint: every slot pauses briefly.
                for slot in &mut self.flink_cores {
                    slot.complete_after(next_checkpoint, net.operator_service);
                }
                report.checkpoints += 1;
                next_checkpoint += self.config.checkpoint_interval;
            }
            match self.execute_request(&request, &net, &mut report) {
                Ok((finish, value)) => {
                    report
                        .latencies
                        .record(finish.saturating_sub(request.arrival));
                    report.responses.insert(request.call_id, value);
                    report.makespan = report.makespan.max(finish);
                }
                Err(_) => {
                    // StateFun surfaces failures to the client via the egress
                    // topic; the request simply produces no response here.
                }
            }
        }
        report
    }

    fn execute_request(
        &mut self,
        request: &Request,
        net: &NetworkModel,
        report: &mut RunReport,
    ) -> RuntimeResult<(Time, Value)> {
        // Client → Kafka → ingress router: half a round trip to produce, half
        // to be polled by the Flink source.
        let mut now = request.arrival + net.kafka_round_trip / 2;

        let mut current_call = request.call.clone();
        let mut stack: Vec<stateful_entities::Frame> = Vec::new();
        let mut pending_resume: Option<(stateful_entities::Frame, Value)> = None;
        let mut first_hop = true;
        let mut hops = 0u64;

        loop {
            hops += 1;
            if hops > 10_000 {
                return Err(RuntimeError::new("request exceeded hop budget"));
            }
            // A continuation (function-to-function call or resume) must loop
            // back through Kafka because the dataflow is acyclic.
            if !first_hop {
                now += net.kafka_round_trip;
                report.kafka_loops += 1;
            }
            first_hop = false;

            // Execute against a copy and write back only on success, so an
            // errored invocation leaves no partial field writes behind.
            let (addr, step) =
                match pending_resume.take() {
                    Some((frame, value)) => {
                        let addr = frame.addr.clone();
                        let mut state = self.store.get(&addr).cloned().ok_or_else(|| {
                            RuntimeError::new(format!("entity {addr} not loaded"))
                        })?;
                        let out = interp::resume(&self.ir, &addr, &mut state, frame, value)?;
                        self.store.put(addr.clone(), state);
                        (addr, out)
                    }
                    None => {
                        let addr = current_call.target.clone();
                        let mut state = self.store.get(&addr).cloned().ok_or_else(|| {
                            RuntimeError::new(format!("entity {addr} not loaded"))
                        })?;
                        let out = interp::start(
                            &self.ir,
                            &addr,
                            &mut state,
                            current_call.method,
                            &current_call.args,
                        )?;
                        self.store.put(addr.clone(), state);
                        (addr, out)
                    }
                };

            // Flink slot: keyBy routing + state read/write.
            let slot = self.slot_of(&addr);
            let slot_service = net.operator_service + 2 * net.state_access;
            now = self.flink_cores[slot].complete_after(now, slot_service);

            // Remote function runtime: ship the state + arguments over, run
            // the function body, ship the result back. Every invocation pays
            // this, reads and writes alike.
            let worker = self.round_robin % self.config.function_workers;
            self.round_robin += 1;
            now = self.function_cores[worker]
                .complete_after(now + net.remote_function_rtt / 2, net.function_service)
                + net.remote_function_rtt / 2;
            report.remote_invocations += 1;

            match step {
                StepOutcome::Return(value) => {
                    if let Some(frame) = stack.pop() {
                        pending_resume = Some((frame, value));
                        continue;
                    }
                    // Egress: result goes back to the client through Kafka.
                    return Ok((now + net.kafka_round_trip / 2, value));
                }
                StepOutcome::Call { call, frame } => {
                    stack.push(frame);
                    current_call = call;
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{MILLIS, SECONDS};
    use entity_lang::corpus;
    use stateful_entities::compile;

    fn account_runtime(accounts: usize) -> StateFunRuntime {
        let program = compile(corpus::ACCOUNT_SOURCE).unwrap();
        let mut rt = StateFunRuntime::new(program.ir.clone(), StateFunConfig::default())
            .expect("compiled IR verifies");
        for i in 0..accounts {
            rt.load_entity(
                "Account",
                &[
                    format!("acc{i}").into(),
                    Value::Int(1_000),
                    "payload".into(),
                ],
            )
            .unwrap();
        }
        rt
    }

    fn call(
        rt: &StateFunRuntime,
        entity: &str,
        key: &str,
        method: &str,
        args: Vec<Value>,
    ) -> MethodCall {
        rt.ir()
            .resolve_call(entity, Key::Str(key.into()), method, args)
            .unwrap()
    }

    #[test]
    fn no_transaction_support() {
        let rt = account_runtime(1);
        assert!(!rt.supports_transactions());
    }

    #[test]
    fn reads_and_updates_have_similar_latency() {
        // Every call pays the remote-function round trip, so a read costs the
        // same as an update — the effect the paper points out for workloads
        // A vs B in Figure 3.
        let mut reads = account_runtime(10);
        let mut writes = account_runtime(10);
        for i in 0..100u64 {
            reads.submit(
                i * 10 * MILLIS,
                call(&reads, "Account", &format!("acc{}", i % 10), "read", vec![]),
            );
            writes.submit(
                i * 10 * MILLIS,
                call(
                    &writes,
                    "Account",
                    &format!("acc{}", i % 10),
                    "update",
                    vec![Value::Int(i as i64)],
                ),
            );
        }
        let mut read_report = reads.run();
        let mut write_report = writes.run();
        let (rp, wp) = (read_report.latencies.p99(), write_report.latencies.p99());
        let ratio = rp as f64 / wp as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "read p99 {rp} and update p99 {wp} should be nearly identical"
        );
    }

    #[test]
    fn state_mutations_are_applied() {
        let mut rt = account_runtime(3);
        rt.submit(
            MILLIS,
            call(&rt, "Account", "acc1", "update", vec![Value::Int(7)]),
        );
        rt.submit(
            2 * MILLIS,
            call(&rt, "Account", "acc1", "credit", vec![Value::Int(3)]),
        );
        let report = rt.run();
        assert_eq!(report.responses.len(), 2);
        assert_eq!(
            rt.read_field("Account", Key::Str("acc1".into()), "balance"),
            Some(Value::Int(10))
        );
    }

    #[test]
    fn split_functions_loop_through_kafka() {
        let program = compile(corpus::FIGURE1_SOURCE).unwrap();
        let mut rt = StateFunRuntime::new(program.ir.clone(), StateFunConfig::default())
            .expect("compiled IR verifies");
        rt.load_entity("Item", &["apple".into(), Value::Int(5)])
            .unwrap();
        rt.load_entity("User", &["alice".into()]).unwrap();
        rt.submit(
            0,
            call(&rt, "Item", "apple", "restock", vec![Value::Int(100)]),
        );
        rt.submit(
            MILLIS,
            call(&rt, "User", "alice", "deposit", vec![Value::Int(1_000)]),
        );
        let item_ref = Value::entity_ref("Item", Key::Str("apple".into()));
        rt.submit(
            10 * MILLIS,
            call(
                &rt,
                "User",
                "alice",
                "buy_item",
                vec![Value::Int(2), item_ref],
            ),
        );
        let report = rt.run();
        assert_eq!(report.responses[&2], Value::Bool(true));
        // buy_item = 2 remote calls + 2 resumes: at least 4 loopbacks.
        assert!(report.kafka_loops >= 4, "{}", report.kafka_loops);
        assert_eq!(
            rt.read_field("Item", Key::Str("apple".into()), "stock"),
            Some(Value::Int(98))
        );
    }

    #[test]
    fn single_call_latency_dominated_by_kafka_and_remote_runtime() {
        let mut rt = account_runtime(1);
        rt.submit(0, call(&rt, "Account", "acc0", "read", vec![]));
        let mut report = rt.run();
        let net = NetworkModel::default();
        let floor = net.kafka_round_trip + net.remote_function_rtt;
        assert!(
            report.latencies.p50() >= floor,
            "latency {} must include at least one Kafka round trip and one remote call ({floor})",
            report.latencies.p50()
        );
    }

    #[test]
    fn saturates_earlier_than_low_load() {
        let run_at = |rps: u64| {
            let mut rt = account_runtime(100);
            let duration = 2 * SECONDS;
            let interval = SECONDS / rps;
            let mut t = 0;
            let mut i = 0u64;
            while t < duration {
                rt.submit(
                    t,
                    call(&rt, "Account", &format!("acc{}", i % 100), "read", vec![]),
                );
                t += interval;
                i += 1;
            }
            let mut report = rt.run();
            report.latencies.p99()
        };
        let low = run_at(200);
        let high = run_at(20_000);
        assert!(
            high > low,
            "overload p99 ({high}) must exceed low-load p99 ({low})"
        );
    }

    #[test]
    fn checkpoints_are_counted() {
        let mut rt = account_runtime(2);
        for i in 0..10u64 {
            rt.submit(
                i * 500 * MILLIS,
                call(&rt, "Account", "acc0", "read", vec![]),
            );
        }
        let report = rt.run();
        assert!(report.checkpoints >= 4);
    }
}
