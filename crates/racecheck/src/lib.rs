//! # racecheck: a concurrency certifier for the sharded engine
//!
//! The offline container cannot import ThreadSanitizer or loom, so this
//! crate builds the subset the engine actually needs, specialized to its
//! ownership discipline (each partition owned by exactly one shard thread;
//! the coordinator touches state only through sealed bytes). Three layers,
//! all reached through one [`Monitor`] handle that the runtime carries as
//! `ShardConfig::monitor` — `None` compiles to the unmonitored hot path:
//!
//! 1. **Happens-before race detection** ([`Monitor::access`]). Every thread
//!    role keeps a [`VectorClock`]; every channel message the runtime sends
//!    while monitored carries a [`Stamp`] (the sender's clock, ticked), and
//!    every receive joins it. Every monitored resource access — partition
//!    state reads/writes, barrier-cut reads, snapshot-store mutations — is
//!    checked FastTrack-style: a read must see the last write's clock
//!    component, a write must additionally see every recorded read. An
//!    unordered pair becomes a [`RaceDiagnostic`] naming the resource, both
//!    thread roles, and both access contexts.
//!
//! 2. **Online commit-order certification** ([`Monitor::certify_batch`]).
//!    An independent re-derivation of the order-preserving Aria rule from
//!    the three-kind footprint lattice alone: within a batch no two
//!    *committed* calls may conflict on a key; a committed call may not
//!    conflict with a still-in-flight batch's committed footprints; and a
//!    committed call may not overtake an earlier-arrived conflicting call
//!    that is still deferred. Divergence becomes a [`CertifierViolation`]
//!    naming the batch, the conflicting `(class, key)` pair, and both
//!    calls' footprints.
//!
//! 3. **Seeded schedule exploration** ([`SchedulePlan`] / [`ScheduleRng`]).
//!    Deterministic, bounded delay injection plus legal permutations
//!    (dispatch fan-out order, mailbox flush order — never the order of
//!    events *within* one channel, which per-sender FIFO semantics and the
//!    happens-before model both rely on). A sweep harness runs the
//!    equivalence corpus across N seeds with the monitor armed.
//!
//! [`DefectPlan`] exists purely to prove the detector the way PR 9 proved
//! the verifier: seeded defect injection (a dropped barrier-ack stamp, a
//! mis-masked conflict pair) must trip its specific diagnostic.

#![forbid(unsafe_code)]

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

/// Keep at most this many race/certifier diagnostics; a genuinely broken
/// run floods the monitor, and the first few diagnostics are the useful
/// ones. The total count keeps counting past the cap.
const DIAGNOSTIC_CAP: usize = 64;

/// Thread roles at or above this are assigned dynamically
/// ([`Monitor::ensure_current_role`]) to threads the runtime does not
/// name — client sessions, test drivers. Roles below it are reserved for
/// the engine: coordinator `0`, shard `s` at `1 + s`.
pub const DYNAMIC_ROLE_BASE: u32 = 1 << 16;

// ---------------------------------------------------------------------------
// Hot-path hashing
// ---------------------------------------------------------------------------

/// Multiply-xor hasher for the monitor's hot-path tables. The keys here are
/// engine-internal ids (roles, partitions, `(class, key)` pairs), never
/// attacker-controlled, so SipHash's flood resistance buys nothing — while
/// its per-lookup cost is a measurable slice of the armed overhead budget
/// (several map operations per monitored call).
#[derive(Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over thread roles: one monotone counter per role. Sparse
/// (a map, not a dense vector) because role ids are sparse — engine roles
/// are small integers, dynamic roles start at [`DYNAMIC_ROLE_BASE`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    components: BTreeMap<u32, u64>,
}

impl VectorClock {
    /// The all-zero clock (bottom of the lattice).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// This clock's component for `role` (absent = 0).
    pub fn get(&self, role: u32) -> u64 {
        self.components.get(&role).copied().unwrap_or(0)
    }

    /// Advance `role`'s own component by one; returns the new value.
    pub fn tick(&mut self, role: u32) -> u64 {
        let slot = self.components.entry(role).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Componentwise maximum (the lattice join).
    pub fn join(&mut self, other: &VectorClock) {
        for (&role, &value) in &other.components {
            let slot = self.components.entry(role).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Happens-before-or-equal: every component of `self` is ≤ the matching
    /// component of `other`. This is the lattice partial order; two clocks
    /// with `!a.leq(b) && !b.leq(a)` are concurrent.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.components
            .iter()
            .all(|(&role, &value)| value <= other.get(role))
    }

    /// Neither ordered before nor after `other`.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

/// A snapshot of a sender's clock, carried on a message and joined by the
/// receiver — one happens-before edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stamp(pub VectorClock);

// ---------------------------------------------------------------------------
// Resources and race diagnostics
// ---------------------------------------------------------------------------

/// What a monitored access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// One shard's live partition state (owned by its worker thread).
    Partition(usize),
    /// One partition's barrier capture at one epoch: written by the worker
    /// at the capture walk, read by the coordinator when the epoch's bytes
    /// arrive. Keyed per epoch so absorbing an *older* epoch's bytes is
    /// never checked against a *newer* capture's write.
    PartitionCut {
        /// The capturing shard.
        partition: usize,
        /// The epoch the capture was cut at.
        epoch: u64,
    },
    /// The coordinator's snapshot store (a single-writer tripwire: every
    /// mutation must come from the same happens-before timeline).
    SnapshotStore,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Partition(p) => write!(f, "partition {p}"),
            Resource::PartitionCut { partition, epoch } => {
                write!(f, "partition {partition} cut at epoch {epoch}")
            }
            Resource::SnapshotStore => write!(f, "snapshot store"),
        }
    }
}

/// Read or write, for the FastTrack check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access: must be ordered after the last write.
    Read,
    /// Write access: must be ordered after the last write *and* every
    /// recorded read.
    Write,
}

/// One side of a detected race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessInfo {
    /// The accessing thread role (coordinator 0, shard `s` at `1 + s`).
    pub role: u32,
    /// The call site, e.g. `"barrier capture"` or `"absorb snapshot bytes"`.
    pub context: String,
}

/// Two accesses to one resource not ordered by happens-before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceDiagnostic {
    /// The resource both sides touched.
    pub resource: Resource,
    /// `"write-write"`, `"read-write"`, or `"write-read"` (prior access
    /// first).
    pub kind: &'static str,
    /// The earlier recorded access.
    pub prior: AccessInfo,
    /// The access that failed the happens-before check.
    pub current: AccessInfo,
}

impl fmt::Display for RaceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {}: role {} ({}) unordered with role {} ({})",
            self.kind,
            self.resource,
            self.prior.role,
            self.prior.context,
            self.current.role,
            self.current.context
        )
    }
}

/// Per-resource detector state: the last write's epoch (writer role + its
/// own clock component at the write) and, per reader role, the reader's
/// component at its latest read. FastTrack's insight: checking these
/// components against the accessor's clock view is equivalent to comparing
/// full clocks.
#[derive(Default)]
struct ResourceState {
    last_write: Option<(u32, u64, &'static str)>,
    reads: FastMap<u32, (u64, &'static str)>,
}

/// One role's clock plus its access-elision window: the resources this role
/// has already checked since its last *clock edge* (a stamp emitted or a
/// stamp joined). Between two clock edges a role's happens-before relation
/// to every other role is constant, so a repeated access to the same
/// resource is race-equivalent to the window's first — eliding it loses no
/// detection: a foreign role can only become ordered after this role's
/// accesses by joining a stamp, and emitting that stamp cleared the window,
/// forcing the next access through the full check; a foreign *concurrent*
/// access in between is checked on the foreign side against the state the
/// first access recorded. This is what keeps the armed per-call hook at two
/// map probes instead of a full FastTrack pass (see the overhead bench).
#[derive(Default)]
struct RoleClock {
    clock: VectorClock,
    /// Strongest access kind already recorded per resource this window
    /// (a write subsumes a read).
    window: FastMap<Resource, AccessKind>,
}

// ---------------------------------------------------------------------------
// Commit-order certifier
// ---------------------------------------------------------------------------

/// A conflict key as the engine hashes it: `(class id, 64-bit key hash)`.
pub type CertKey = (u32, u64);

/// Access-lattice bit: provably read-only on the key.
pub const CERT_READ: u8 = 1;
/// Access-lattice bit: commutative read-modify-write on the key.
pub const CERT_COMM: u8 = 2;
/// Access-lattice bit: may write the key exclusively.
pub const CERT_WRITE: u8 = 4;

/// The certifier's own copy of the conflict rule — re-derived here, not
/// imported, so a bug in the engine's mask logic cannot silently agree
/// with itself: two masks conflict unless their union is pure-read or
/// pure-commutative.
pub fn cert_conflict(a: u8, b: u8) -> bool {
    let union = a | b;
    union != CERT_READ && union != CERT_COMM
}

/// One call as the coordinator's commit rule saw it: its arrival id,
/// whether this batch committed it, and its deduplicated footprint.
#[derive(Debug, Clone)]
pub struct CertEntry {
    /// Global call id (assigned in arrival order).
    pub call_id: u64,
    /// `true` if the batch committed the call, `false` if it deferred it.
    pub committed: bool,
    /// `(key, access mask)` pairs, deduplicated per call.
    pub keys: Vec<(CertKey, u8)>,
}

/// Borrowed view of a [`CertEntry`]: the zero-copy shape the engine feeds
/// [`Monitor::certify_batch_by_ref`] straight out of its footprint table.
/// Cloning every call's key vector just to certify it was a measurable
/// slice of the armed overhead budget (one heap allocation per call).
#[derive(Debug, Clone, Copy)]
pub struct CertEntryRef<'a> {
    /// Global call id (assigned in arrival order).
    pub call_id: u64,
    /// `true` if the batch committed the call, `false` if it deferred it.
    pub committed: bool,
    /// `(key, access mask)` pairs, deduplicated per call.
    pub keys: &'a [(CertKey, u8)],
}

/// A committed schedule diverging from the order-preserving Aria rule.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifierViolation {
    /// The batch (1-based dispatch ordinal) the divergence surfaced in.
    pub batch: u64,
    /// The conflicting `(class id, key hash)` pair.
    pub key: CertKey,
    /// What rule broke.
    pub kind: CertViolationKind,
    /// The committed call that failed the check, with its full footprint.
    pub call: (u64, Vec<(CertKey, u8)>),
    /// The call it conflicts with, with its full footprint.
    pub other: (u64, Vec<(CertKey, u8)>),
}

/// Which certifier rule a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertViolationKind {
    /// Two committed calls of one batch conflict on the key.
    IntraBatch,
    /// A committed call conflicts with a still-in-flight batch (the named
    /// batch in `other_batch`).
    Pipeline {
        /// The in-flight batch holding the conflicting reservation.
        other_batch: u64,
    },
    /// A committed call overtook an earlier-arrived conflicting call that
    /// is still deferred — commit order no longer equals arrival order.
    ArrivalOrder,
}

impl fmt::Display for CertifierViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = match self.kind {
            CertViolationKind::IntraBatch => {
                "two committed calls conflict in one batch".to_string()
            }
            CertViolationKind::Pipeline { other_batch } => {
                format!("committed call conflicts with in-flight batch {other_batch}")
            }
            CertViolationKind::ArrivalOrder => {
                "committed call overtakes an earlier conflicting arrival".to_string()
            }
        };
        write!(
            f,
            "batch {}: {} on (class {}, key {:#x}); call {} footprint {:?} vs call {} footprint {:?}",
            self.batch, rule, self.key.0, self.key.1, self.call.0, self.call.1, self.other.0, self.other.1
        )
    }
}

#[derive(Default)]
struct CertifierState {
    /// Committed footprints of batches dispatched but not yet retired,
    /// keyed by batch ordinal, indexed per key so the pipeline check is a
    /// lookup per (entry, key) instead of a scan of every reservation.
    inflight: FastMap<u64, FastMap<CertKey, Vec<(u8, u64)>>>,
    /// Arrived-but-deferred calls, indexed per key for the overtake check.
    pending: FastMap<CertKey, Vec<(u64, u8)>>,
    /// Full footprints of pending calls (for diagnostics).
    pending_footprints: FastMap<u64, Vec<(CertKey, u8)>>,
    violations: Vec<CertifierViolation>,
    violations_total: u64,
    batches_certified: u64,
    calls_certified: u64,
}

impl CertifierState {
    /// `true` while any deferred call is still parked — the only time the
    /// overtake check and the committed-call pending-removal need to hash.
    fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn push_violation(&mut self, v: CertifierViolation) {
        self.violations_total += 1;
        if self.violations.len() < DIAGNOSTIC_CAP {
            self.violations.push(v);
        }
    }
}

// ---------------------------------------------------------------------------
// The monitor
// ---------------------------------------------------------------------------

/// Aggregate monitor counters (for the overhead bench table and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Resource accesses checked.
    pub accesses: u64,
    /// Stamps issued (happens-before edges announced).
    pub stamps: u64,
    /// Stamps joined (happens-before edges observed).
    pub joins: u64,
    /// Races detected (total, past the diagnostic cap too).
    pub races: u64,
    /// Certifier violations (total).
    pub violations: u64,
    /// Batches certified.
    pub batches_certified: u64,
    /// Calls certified.
    pub calls_certified: u64,
}

/// The shared detector handle. Cheap to clone (`Arc` it); every hook in the
/// runtime is behind `if let Some(monitor)`, so an unarmed run never pays.
///
/// Thread identity is role-based (coordinator `0`, shard `s` at `1 + s`,
/// dynamically assigned ids from [`DYNAMIC_ROLE_BASE`] for everything
/// else), surviving worker respawn across recoveries. Hooks that cannot
/// thread a role through their API (state, mq) resolve the calling OS
/// thread through [`Monitor::bind_current_thread`]'s registry; an unbound
/// thread's accesses are ignored (it is outside the monitored run).
pub struct Monitor {
    threads: RwLock<HashMap<ThreadId, u32>>,
    next_dynamic: AtomicU32,
    /// Per-role clocks (and elision windows), lock-sharded by role: every
    /// clock operation (stamp, join, access tick) touches only the operating
    /// role's own entry, so concurrent workers never contend here — the
    /// difference between the armed bench row and an unusable one.
    clocks: Vec<Mutex<FastMap<u32, RoleClock>>>,
    /// Resource table, sharded by key hash to keep distinct partitions off
    /// one lock.
    resources: Vec<Mutex<FastMap<Resource, ResourceState>>>,
    /// Message stamps for channel edges addressed by key rather than
    /// carried in-band (the mq hooks): `(domain, a, b)` → sender stamp.
    edges: Mutex<HashMap<(u64, u64, u64), Stamp>>,
    races: Mutex<Vec<RaceDiagnostic>>,
    races_total: AtomicU64,
    cert: Mutex<CertifierState>,
    accesses: AtomicU64,
    stamps: AtomicU64,
    joins: AtomicU64,
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Monitor")
            .field("accesses", &stats.accesses)
            .field("races", &stats.races)
            .field("violations", &stats.violations)
            .finish()
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

/// Channel-edge domain tag for mq topic records (see [`Monitor::channel_send`]).
pub const EDGE_MQ: u64 = 1;
/// Channel-edge domain tag for service session responses.
pub const EDGE_SESSION: u64 = 2;

const RESOURCE_SHARDS: usize = 8;
const CLOCK_SHARDS: usize = 16;

/// Fibonacci-hash a role onto a clock shard, so dense engine roles (0, 1,
/// 2, …) and the dynamic block ([`DYNAMIC_ROLE_BASE`] and up) spread over
/// distinct locks instead of colliding mod-power-of-two.
fn clock_shard(role: u32) -> usize {
    ((role as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % CLOCK_SHARDS
}

impl Monitor {
    /// A fresh monitor with empty clocks and no diagnostics.
    pub fn new() -> Self {
        Monitor {
            threads: RwLock::new(HashMap::new()),
            next_dynamic: AtomicU32::new(DYNAMIC_ROLE_BASE),
            clocks: (0..CLOCK_SHARDS)
                .map(|_| Mutex::new(FastMap::default()))
                .collect(),
            resources: (0..RESOURCE_SHARDS)
                .map(|_| Mutex::new(FastMap::default()))
                .collect(),
            edges: Mutex::new(HashMap::new()),
            races: Mutex::new(Vec::new()),
            races_total: AtomicU64::new(0),
            cert: Mutex::new(CertifierState::default()),
            accesses: AtomicU64::new(0),
            stamps: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Convenience: a fresh monitor behind an `Arc`, ready for
    /// `ShardConfig::monitor`.
    pub fn armed() -> Arc<Self> {
        Arc::new(Monitor::new())
    }

    // -- thread identity ----------------------------------------------------

    /// Register the calling OS thread under an engine role. Re-binding on
    /// respawn is expected: the newest binding wins, and a dead thread's
    /// stale entry is harmless (its id is never observed again).
    pub fn bind_current_thread(&self, role: u32) {
        self.threads
            .write()
            .insert(std::thread::current().id(), role);
    }

    /// The calling thread's role, if it was bound (or dynamically
    /// registered).
    pub fn current_role(&self) -> Option<u32> {
        self.threads
            .read()
            .get(&std::thread::current().id())
            .copied()
    }

    /// The calling thread's role, assigning a fresh dynamic one if absent —
    /// used by front-door hooks where any client thread may appear.
    pub fn ensure_current_role(&self) -> u32 {
        if let Some(role) = self.current_role() {
            return role;
        }
        let role = self.next_dynamic.fetch_add(1, Ordering::SeqCst);
        self.bind_current_thread(role);
        role
    }

    // -- happens-before edges -----------------------------------------------

    /// Tick `role`'s clock and snapshot it: the stamp a message should
    /// carry.
    pub fn stamp(&self, role: u32) -> Stamp {
        self.stamps.fetch_add(1, Ordering::Relaxed);
        let mut clocks = self.clocks[clock_shard(role)].lock();
        let rc = clocks.entry(role).or_default();
        // A clock edge: accesses after this stamp are a new elision window.
        rc.window.clear();
        rc.clock.tick(role);
        Stamp(rc.clock.clone())
    }

    /// [`Monitor::stamp`] for the calling thread, dynamically registering
    /// it if needed.
    pub fn stamp_current(&self) -> Stamp {
        let role = self.ensure_current_role();
        self.stamp(role)
    }

    /// Join a received stamp into `role`'s clock: the receive side of one
    /// happens-before edge.
    pub fn join(&self, role: u32, stamp: &Stamp) {
        self.joins.fetch_add(1, Ordering::Relaxed);
        let mut clocks = self.clocks[clock_shard(role)].lock();
        let rc = clocks.entry(role).or_default();
        // A clock edge: the joined stamp may order this role after new
        // foreign accesses, so the elision window is stale.
        rc.window.clear();
        rc.clock.join(&stamp.0);
    }

    /// [`Monitor::join`] for the calling thread (no-op when unbound —
    /// an unmonitored thread has no clock to order).
    pub fn join_current(&self, stamp: &Stamp) {
        if let Some(role) = self.current_role() {
            self.join(role, stamp);
        }
    }

    /// Record a channel-edge stamp by key (for channels whose payload
    /// cannot carry one in-band, e.g. mq topic records): the send side.
    pub fn channel_send(&self, domain: u64, a: u64, b: u64) {
        let stamp = self.stamp_current();
        self.edges.lock().insert((domain, a, b), stamp);
    }

    /// Join the stamp recorded for a channel-edge key, if any: the receive
    /// side. The stamp stays recorded — offset-addressed records can be
    /// re-read (replay), and each re-read is a new edge from the same send.
    pub fn channel_recv(&self, domain: u64, a: u64, b: u64) {
        let stamp = self.edges.lock().get(&(domain, a, b)).cloned();
        if let Some(stamp) = stamp {
            self.join_current(&stamp);
        }
    }

    // -- the race detector --------------------------------------------------

    /// Check one access of `resource` by `role` against everything recorded
    /// for it. `context` names the call site for the diagnostic (static so
    /// the hot path records it allocation-free).
    ///
    /// Lock order: the role's clock shard before the resource shard — the
    /// only place two monitor locks are held at once (exactly one of each),
    /// so nested acquisition cannot cycle.
    pub fn access(&self, role: u32, resource: Resource, kind: AccessKind, context: &'static str) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let mut clocks = self.clocks[clock_shard(role)].lock();
        let rc = clocks.entry(role).or_default();
        // Elision fast path: this role already put an access at least as
        // strong as `kind` through the full check since its last clock
        // edge, and nothing about its happens-before relation to any other
        // role has changed since (see [`RoleClock`] for the soundness
        // argument).
        match rc.window.get(&resource) {
            Some(AccessKind::Write) => return,
            Some(AccessKind::Read) if kind == AccessKind::Read => return,
            _ => {}
        }
        rc.window.insert(resource, kind);
        let clock = &mut rc.clock;
        // Tick: every checked access is an event on the accessor's
        // timeline, so later stamps (and the components recorded below)
        // order after it even on threads that never send a message in
        // between.
        clock.tick(role);
        let own_component = clock.get(role);
        let shard = resource_shard(&resource);
        let mut table = self.resources[shard].lock();
        let state = table.entry(resource).or_default();
        let mut race: Option<RaceDiagnostic> = None;
        if let Some((w_role, w_at, w_ctx)) = &state.last_write {
            if *w_role != role && clock.get(*w_role) < *w_at {
                race = Some(RaceDiagnostic {
                    resource,
                    kind: if kind == AccessKind::Write {
                        "write-write"
                    } else {
                        "write-read"
                    },
                    prior: AccessInfo {
                        role: *w_role,
                        context: w_ctx.to_string(),
                    },
                    current: AccessInfo {
                        role,
                        context: context.to_string(),
                    },
                });
            }
        }
        if race.is_none() && kind == AccessKind::Write {
            for (r_role, (r_at, r_ctx)) in &state.reads {
                if *r_role != role && clock.get(*r_role) < *r_at {
                    race = Some(RaceDiagnostic {
                        resource,
                        kind: "read-write",
                        prior: AccessInfo {
                            role: *r_role,
                            context: r_ctx.to_string(),
                        },
                        current: AccessInfo {
                            role,
                            context: context.to_string(),
                        },
                    });
                    break;
                }
            }
        }
        match kind {
            AccessKind::Write => {
                state.last_write = Some((role, own_component, context));
                // Recorded reads all happened before this write (or were
                // just flagged); later accesses only need ordering against
                // the write.
                state.reads.clear();
            }
            AccessKind::Read => {
                state.reads.insert(role, (own_component, context));
            }
        }
        drop(table);
        drop(clocks);
        if let Some(diagnostic) = race {
            self.races_total.fetch_add(1, Ordering::Relaxed);
            let mut races = self.races.lock();
            if races.len() < DIAGNOSTIC_CAP {
                races.push(diagnostic);
            }
        }
    }

    /// [`Monitor::access`] resolving the calling thread's role; ignored for
    /// unbound threads (accesses outside the monitored run, e.g. a test
    /// inspecting state it owns exclusively).
    pub fn access_current(&self, resource: Resource, kind: AccessKind, context: &'static str) {
        if let Some(role) = self.current_role() {
            self.access(role, resource, kind, context);
        }
    }

    // -- the commit-order certifier ------------------------------------------

    /// Certify one dispatched batch: every entry the commit rule looked at,
    /// in batch order, committed and deferred alike.
    pub fn certify_batch(&self, batch_no: u64, entries: &[CertEntry]) {
        let refs: Vec<CertEntryRef<'_>> = entries
            .iter()
            .map(|e| CertEntryRef {
                call_id: e.call_id,
                committed: e.committed,
                keys: &e.keys,
            })
            .collect();
        self.certify_batch_by_ref(batch_no, &refs);
    }

    /// [`Monitor::certify_batch`] over borrowed footprint slices — the armed
    /// hot path: the coordinator certifies every batch, and cloning each
    /// call's key vector into an owned [`CertEntry`] costs one allocation
    /// per call. Diagnostics still own their footprints (copied only when a
    /// violation actually fires).
    pub fn certify_batch_by_ref(&self, batch_no: u64, entries: &[CertEntryRef<'_>]) {
        let mut cert = self.cert.lock();
        cert.batches_certified += 1;
        cert.calls_certified += entries.len() as u64;

        // (1) Intra-batch: committed × committed on a shared key. One pass
        // with a per-key index of the distinct footprint masks already seen
        // (the mask lattice has at most a handful of values, so the inner
        // check is O(1)); scanning all committed pairs would be quadratic in
        // the batch size, which dominates monitor overhead at batch 512.
        let mut seen: FastMap<CertKey, Vec<(u8, usize)>> = FastMap::default();
        let mut intra_violations = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            if !entry.committed {
                continue;
            }
            for &(key, mask) in entry.keys {
                let masks = seen.entry(key).or_default();
                for &(other_mask, other_idx) in masks.iter() {
                    if cert_conflict(other_mask, mask) {
                        let other = &entries[other_idx];
                        intra_violations.push(CertifierViolation {
                            batch: batch_no,
                            key,
                            kind: CertViolationKind::IntraBatch,
                            call: (entry.call_id, entry.keys.to_vec()),
                            other: (other.call_id, other.keys.to_vec()),
                        });
                    }
                }
                if !masks.iter().any(|(m, _)| *m == mask) {
                    masks.push((mask, i));
                }
            }
        }
        for v in intra_violations {
            cert.push_violation(v);
        }

        // (2) Pipeline: committed calls vs in-flight batches' commitments,
        // a per-key lookup into each unretired batch's reservation index.
        let mut pipeline_violations = Vec::new();
        for entry in entries.iter().filter(|e| e.committed) {
            for &(key, my_mask) in entry.keys {
                for (&other_batch, held) in &cert.inflight {
                    let Some(holders) = held.get(&key) else {
                        continue;
                    };
                    for &(mask, other_call) in holders {
                        if cert_conflict(mask, my_mask) {
                            pipeline_violations.push(CertifierViolation {
                                batch: batch_no,
                                key,
                                kind: CertViolationKind::Pipeline { other_batch },
                                call: (entry.call_id, entry.keys.to_vec()),
                                other: (other_call, vec![(key, mask)]),
                            });
                        }
                    }
                }
            }
        }
        for v in pipeline_violations {
            cert.push_violation(v);
        }

        // (3) Arrival order: a committed call must not overtake an
        // earlier-arrived conflicting call that is still deferred. Guarded
        // on the pending set being non-empty: in a clean run deferrals are
        // rare, and hashing every committed key against an empty map is
        // pure overhead.
        let mut order_violations = Vec::new();
        for entry in entries.iter().filter(|e| cert.has_pending() && e.committed) {
            for &(key, mask) in entry.keys {
                if let Some(waiters) = cert.pending.get(&key) {
                    for &(pending_id, pending_mask) in waiters {
                        if pending_id < entry.call_id && cert_conflict(mask, pending_mask) {
                            let footprint = cert
                                .pending_footprints
                                .get(&pending_id)
                                .cloned()
                                .unwrap_or_default();
                            order_violations.push(CertifierViolation {
                                batch: batch_no,
                                key,
                                kind: CertViolationKind::ArrivalOrder,
                                call: (entry.call_id, entry.keys.to_vec()),
                                other: (pending_id, footprint),
                            });
                        }
                    }
                }
            }
        }
        for v in order_violations {
            cert.push_violation(v);
        }

        // (4) Update certifier state: committed calls leave the pending
        // set, deferred calls (re-)enter it, and the batch's committed
        // footprints become the new in-flight reservations.
        let mut committed_keys: FastMap<CertKey, Vec<(u8, u64)>> = FastMap::default();
        for entry in entries {
            if entry.committed {
                if cert.has_pending() {
                    for &(key, _) in entry.keys {
                        if let Some(waiters) = cert.pending.get_mut(&key) {
                            waiters.retain(|(id, _)| *id != entry.call_id);
                            if waiters.is_empty() {
                                cert.pending.remove(&key);
                            }
                        }
                    }
                    cert.pending_footprints.remove(&entry.call_id);
                }
                for &(key, mask) in entry.keys {
                    committed_keys
                        .entry(key)
                        .or_default()
                        .push((mask, entry.call_id));
                }
            } else {
                for &(key, mask) in entry.keys {
                    let waiters = cert.pending.entry(key).or_default();
                    if !waiters.iter().any(|(id, _)| *id == entry.call_id) {
                        waiters.push((entry.call_id, mask));
                    }
                }
                cert.pending_footprints
                    .entry(entry.call_id)
                    .or_insert_with(|| entry.keys.to_vec());
            }
        }
        cert.inflight.insert(batch_no, committed_keys);
    }

    /// Observe a batch retiring: its calls answered, its reservations
    /// released — it no longer constrains later batches.
    pub fn certify_retire(&self, batch_no: u64) {
        self.cert.lock().inflight.remove(&batch_no);
    }

    /// Observe a recovery rollback: dispatched-but-unretired batches belong
    /// to the failed timeline and their calls will replay with the same
    /// ids, so the certifier forgets everything not yet retired.
    pub fn certify_rollback(&self) {
        let mut cert = self.cert.lock();
        cert.inflight.clear();
        cert.pending.clear();
        cert.pending_footprints.clear();
    }

    // -- results -------------------------------------------------------------

    /// Detected races, capped at [`DIAGNOSTIC_CAP`] (see
    /// [`MonitorStats::races`] for the total).
    pub fn races(&self) -> Vec<RaceDiagnostic> {
        self.races.lock().clone()
    }

    /// Certifier violations, capped at [`DIAGNOSTIC_CAP`].
    pub fn certifier_violations(&self) -> Vec<CertifierViolation> {
        self.cert.lock().violations.clone()
    }

    /// No races, no certifier violations.
    pub fn is_clean(&self) -> bool {
        self.races_total.load(Ordering::SeqCst) == 0 && self.cert.lock().violations_total == 0
    }

    /// Aggregate counters.
    pub fn stats(&self) -> MonitorStats {
        let cert = self.cert.lock();
        MonitorStats {
            accesses: self.accesses.load(Ordering::SeqCst),
            stamps: self.stamps.load(Ordering::SeqCst),
            joins: self.joins.load(Ordering::SeqCst),
            races: self.races_total.load(Ordering::SeqCst),
            violations: cert.violations_total,
            batches_certified: cert.batches_certified,
            calls_certified: cert.calls_certified,
        }
    }

    /// A human-readable summary of everything detected (empty-run friendly:
    /// says "clean" when nothing was).
    pub fn report(&self) -> String {
        let stats = self.stats();
        let mut out = format!(
            "monitor: {} accesses, {} stamps, {} joins, {} batches certified",
            stats.accesses, stats.stamps, stats.joins, stats.batches_certified
        );
        if self.is_clean() {
            out.push_str(" — clean");
            return out;
        }
        for race in self.races() {
            out.push_str("\n  race: ");
            out.push_str(&race.to_string());
        }
        for violation in self.certifier_violations() {
            out.push_str("\n  certifier: ");
            out.push_str(&violation.to_string());
        }
        out
    }
}

fn resource_shard(resource: &Resource) -> usize {
    match resource {
        Resource::Partition(p) => p % RESOURCE_SHARDS,
        Resource::PartitionCut { partition, .. } => (partition + 3) % RESOURCE_SHARDS,
        Resource::SnapshotStore => 7,
    }
}

// ---------------------------------------------------------------------------
// Seeded schedule exploration
// ---------------------------------------------------------------------------

/// A deterministic interleaving perturbation: bounded delays on channel
/// deliveries and barrier acks, plus legal permutations of fan-out order.
/// Rides the same config-level injection plumbing as `FailurePlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Seed for every per-role decision stream.
    pub seed: u64,
    /// Upper bound for injected delays, in microseconds (kept small: the
    /// point is to shuffle interleavings, not to slow the run down).
    pub max_delay_us: u32,
}

impl SchedulePlan {
    /// A plan with the default delay bound.
    pub fn seeded(seed: u64) -> Self {
        SchedulePlan {
            seed,
            max_delay_us: 20,
        }
    }
}

/// Perturbation sites, mixed into the decision stream so the same seed
/// produces different (but deterministic per `(seed, role, site,
/// sequence)`) choices at each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSite {
    /// Before a cross-shard / dispatch channel send.
    ChannelSend,
    /// Before a barrier ack.
    BarrierAck,
    /// Permuting a fan-out order (dispatch destinations, flush buffers).
    FanOut,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One role's deterministic decision stream over a [`SchedulePlan`]. Each
/// role derives its own stream from `(seed, role)`, so decisions are
/// reproducible per role regardless of cross-thread timing.
#[derive(Debug, Clone)]
pub struct ScheduleRng {
    state: u64,
    max_delay_us: u32,
}

impl ScheduleRng {
    /// The decision stream for `role` under `plan`.
    pub fn new(plan: &SchedulePlan, role: u32) -> Self {
        ScheduleRng {
            state: splitmix64(plan.seed ^ ((role as u64) << 32)),
            max_delay_us: plan.max_delay_us,
        }
    }

    fn next(&mut self, site: ScheduleSite) -> u64 {
        let tag = match site {
            ScheduleSite::ChannelSend => 0x11,
            ScheduleSite::BarrierAck => 0x22,
            ScheduleSite::FanOut => 0x33,
        };
        self.state = splitmix64(self.state ^ tag);
        self.state
    }

    /// The injected delay for one event at `site`: `None` (most of the
    /// time) or a bounded duration. Delays only — a message is never
    /// reordered within its channel, preserving the per-sender FIFO order
    /// the happens-before model relies on.
    pub fn delay(&mut self, site: ScheduleSite) -> Option<Duration> {
        let r = self.next(site);
        if !r.is_multiple_of(4) || self.max_delay_us == 0 {
            return None;
        }
        let us = (r >> 8) % (self.max_delay_us as u64) + 1;
        Some(Duration::from_micros(us))
    }

    /// Sleep the injected delay for `site`, if one fires.
    pub fn pause(&mut self, site: ScheduleSite) {
        if let Some(d) = self.delay(site) {
            std::thread::sleep(d);
        } else if self.next(site).is_multiple_of(8) {
            std::thread::yield_now();
        }
    }

    /// Deterministic Fisher–Yates permutation of a fan-out order. Legal
    /// because the engine's correctness never depends on the relative order
    /// of *different* destinations' sends — only on per-channel FIFO, which
    /// a permutation across channels cannot disturb.
    pub fn permute<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next(ScheduleSite::FanOut) % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded defect injection (test-only, proves the detector)
// ---------------------------------------------------------------------------

/// Deliberate defects that must trip their specific diagnostic — the
/// detector's own proof harness, mirroring PR 9's IR mutation matrix. Inert
/// by default; production code never arms one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefectPlan {
    /// Drop the happens-before stamp from every barrier ack: the
    /// coordinator then absorbs snapshot bytes without ever having joined
    /// the capture's clock, and the monitor must flag an unordered
    /// [`Resource::PartitionCut`] read naming the partition.
    pub drop_barrier_ack_stamp: bool,
    /// In the named batch (1-based dispatch ordinal), flip the first
    /// deferred call to committed — dispatching a genuinely conflicting
    /// pair. The certifier must flag an intra-batch conflict naming the
    /// batch and the `(class, key)` pair.
    pub mis_mask_batch: Option<u64>,
}

impl DefectPlan {
    /// Whether any defect is armed.
    pub fn armed(&self) -> bool {
        self.drop_barrier_ack_stamp || self.mis_mask_batch.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn clock_of(pairs: &[(u32, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(role, n) in pairs {
            for _ in 0..n {
                c.tick(role);
            }
        }
        c
    }

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.tick(3), 1);
        assert_eq!(c.tick(3), 2);
        assert_eq!(c.get(3), 2);
    }

    #[test]
    fn ordered_accesses_are_clean() {
        let m = Monitor::new();
        // Worker 1 writes, stamps; coordinator joins, reads: ordered.
        m.access(1, Resource::Partition(0), AccessKind::Write, "worker write");
        let stamp = m.stamp(1);
        m.join(0, &stamp);
        m.access(0, Resource::Partition(0), AccessKind::Read, "coord read");
        assert!(m.is_clean(), "{}", m.report());
    }

    #[test]
    fn unordered_read_after_write_is_flagged() {
        let m = Monitor::new();
        m.access(1, Resource::Partition(0), AccessKind::Write, "worker write");
        // No stamp joined: the coordinator's read is concurrent.
        m.access(0, Resource::Partition(0), AccessKind::Read, "coord read");
        let races = m.races();
        assert_eq!(races.len(), 1, "{}", m.report());
        assert_eq!(races[0].kind, "write-read");
        assert_eq!(races[0].resource, Resource::Partition(0));
        assert_eq!(races[0].prior.role, 1);
        assert_eq!(races[0].current.role, 0);
    }

    #[test]
    fn unordered_write_after_read_is_flagged() {
        let m = Monitor::new();
        m.access(0, Resource::Partition(2), AccessKind::Read, "coord read");
        m.access(1, Resource::Partition(2), AccessKind::Write, "worker write");
        let races = m.races();
        assert_eq!(races.len(), 1, "{}", m.report());
        assert_eq!(races[0].kind, "read-write");
    }

    #[test]
    fn same_role_never_races_with_itself() {
        let m = Monitor::new();
        for _ in 0..10 {
            m.access(1, Resource::Partition(0), AccessKind::Write, "w");
            m.access(1, Resource::Partition(0), AccessKind::Read, "r");
        }
        assert!(m.is_clean());
    }

    #[test]
    fn cut_epochs_are_distinct_resources() {
        let m = Monitor::new();
        // Worker writes the epoch-2 cut *after* the coordinator joined only
        // the epoch-1 ack; reading the epoch-1 cut must stay clean.
        m.access(
            1,
            Resource::PartitionCut {
                partition: 0,
                epoch: 1,
            },
            AccessKind::Write,
            "capture e1",
        );
        let ack1 = m.stamp(1);
        m.join(0, &ack1);
        m.access(
            1,
            Resource::PartitionCut {
                partition: 0,
                epoch: 2,
            },
            AccessKind::Write,
            "capture e2",
        );
        m.access(
            0,
            Resource::PartitionCut {
                partition: 0,
                epoch: 1,
            },
            AccessKind::Read,
            "absorb e1 bytes",
        );
        assert!(m.is_clean(), "{}", m.report());
        // But reading the epoch-2 cut without its ack is a race.
        m.access(
            0,
            Resource::PartitionCut {
                partition: 0,
                epoch: 2,
            },
            AccessKind::Read,
            "absorb e2 bytes",
        );
        assert!(!m.is_clean());
    }

    #[test]
    fn channel_edges_order_offset_addressed_records() {
        let m = Monitor::new();
        m.bind_current_thread(5);
        m.access(5, Resource::Partition(1), AccessKind::Write, "producer");
        m.channel_send(EDGE_MQ, 1, 42);
        // Same thread re-bound as a different role models the consumer.
        m.bind_current_thread(6);
        m.channel_recv(EDGE_MQ, 1, 42);
        m.access(6, Resource::Partition(1), AccessKind::Read, "consumer");
        assert!(m.is_clean(), "{}", m.report());
    }

    #[test]
    fn certifier_accepts_conflict_free_batches() {
        let m = Monitor::new();
        m.certify_batch(
            1,
            &[
                CertEntry {
                    call_id: 0,
                    committed: true,
                    keys: vec![((1, 10), CERT_WRITE)],
                },
                CertEntry {
                    call_id: 1,
                    committed: true,
                    keys: vec![((1, 11), CERT_WRITE)],
                },
                CertEntry {
                    call_id: 2,
                    committed: true,
                    keys: vec![((1, 10), CERT_READ)],
                },
            ],
        );
        // Call 2 reads key 10 which call 0 writes — that IS a conflict.
        assert_eq!(m.certifier_violations().len(), 1);
        let m = Monitor::new();
        m.certify_batch(
            1,
            &[
                CertEntry {
                    call_id: 0,
                    committed: true,
                    keys: vec![((1, 10), CERT_READ)],
                },
                CertEntry {
                    call_id: 1,
                    committed: true,
                    keys: vec![((1, 10), CERT_READ)],
                },
                CertEntry {
                    call_id: 2,
                    committed: true,
                    keys: vec![((1, 11), CERT_COMM)],
                },
                CertEntry {
                    call_id: 3,
                    committed: true,
                    keys: vec![((1, 11), CERT_COMM)],
                },
            ],
        );
        assert!(m.is_clean(), "{}", m.report());
    }

    #[test]
    fn certifier_flags_committed_conflict_pair() {
        let m = Monitor::new();
        m.certify_batch(
            3,
            &[
                CertEntry {
                    call_id: 7,
                    committed: true,
                    keys: vec![((2, 99), CERT_WRITE)],
                },
                CertEntry {
                    call_id: 8,
                    committed: true,
                    keys: vec![((2, 99), CERT_WRITE)],
                },
            ],
        );
        let violations = m.certifier_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].batch, 3);
        assert_eq!(violations[0].key, (2, 99));
        assert_eq!(violations[0].kind, CertViolationKind::IntraBatch);
    }

    #[test]
    fn certifier_flags_pipeline_conflict_until_retire() {
        let m = Monitor::new();
        m.certify_batch(
            1,
            &[CertEntry {
                call_id: 0,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        m.certify_batch(
            2,
            &[CertEntry {
                call_id: 1,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        assert_eq!(m.certifier_violations().len(), 1);
        assert!(matches!(
            m.certifier_violations()[0].kind,
            CertViolationKind::Pipeline { other_batch: 1 }
        ));
        let m = Monitor::new();
        m.certify_batch(
            1,
            &[CertEntry {
                call_id: 0,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        m.certify_retire(1);
        m.certify_batch(
            2,
            &[CertEntry {
                call_id: 1,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        assert!(m.is_clean(), "{}", m.report());
    }

    #[test]
    fn certifier_flags_overtaken_arrival() {
        let m = Monitor::new();
        // Call 0 deferred on key 5; call 1 commits on key 5 in the next
        // batch while 0 is still pending: commit order ≠ arrival order.
        m.certify_batch(
            1,
            &[CertEntry {
                call_id: 0,
                committed: false,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        m.certify_retire(1);
        m.certify_batch(
            2,
            &[CertEntry {
                call_id: 1,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        let violations = m.certifier_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == CertViolationKind::ArrivalOrder
                    && v.call.0 == 1
                    && v.other.0 == 0),
            "{}",
            m.report()
        );
    }

    #[test]
    fn certifier_rollback_forgets_unretired_state() {
        let m = Monitor::new();
        m.certify_batch(
            1,
            &[CertEntry {
                call_id: 0,
                committed: false,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        m.certify_rollback();
        // The replayed timeline commits call 1 first — no stale pending
        // entry may flag it.
        m.certify_batch(
            1,
            &[CertEntry {
                call_id: 1,
                committed: true,
                keys: vec![((1, 5), CERT_WRITE)],
            }],
        );
        assert!(m.is_clean(), "{}", m.report());
    }

    #[test]
    fn schedule_rng_is_deterministic_per_role() {
        let plan = SchedulePlan::seeded(0xBEEF);
        let mut a = ScheduleRng::new(&plan, 1);
        let mut b = ScheduleRng::new(&plan, 1);
        let seq_a: Vec<_> = (0..16)
            .map(|_| a.delay(ScheduleSite::ChannelSend))
            .collect();
        let seq_b: Vec<_> = (0..16)
            .map(|_| b.delay(ScheduleSite::ChannelSend))
            .collect();
        assert_eq!(seq_a, seq_b);
        let mut c = ScheduleRng::new(&plan, 2);
        let seq_c: Vec<_> = (0..16)
            .map(|_| c.delay(ScheduleSite::ChannelSend))
            .collect();
        assert_ne!(seq_a, seq_c, "distinct roles draw distinct streams");
    }

    #[test]
    fn schedule_delays_stay_bounded() {
        let plan = SchedulePlan {
            seed: 7,
            max_delay_us: 5,
        };
        let mut rng = ScheduleRng::new(&plan, 0);
        for _ in 0..256 {
            if let Some(d) = rng.delay(ScheduleSite::BarrierAck) {
                assert!(d <= Duration::from_micros(5));
                assert!(d >= Duration::from_micros(1));
            }
        }
    }

    #[test]
    fn permute_is_a_permutation() {
        let plan = SchedulePlan::seeded(3);
        let mut rng = ScheduleRng::new(&plan, 0);
        let mut items: Vec<u32> = (0..10).collect();
        rng.permute(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    /// Strategy pieces for the lattice properties: clocks over 6 roles with
    /// small components.
    fn clock_strategy() -> impl Strategy<Value = VectorClock> {
        prop::collection::vec((0u32..6, 0u64..20), 0..6).prop_map(|pairs| clock_of(&pairs))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn join_is_associative_and_commutative(
            a in clock_strategy(),
            b in clock_strategy(),
            c in clock_strategy(),
        ) {
            let mut ab_c = a.clone();
            ab_c.join(&b);
            ab_c.join(&c);
            let mut bc = b.clone();
            bc.join(&c);
            let mut a_bc = a.clone();
            a_bc.join(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            let mut ba = b.clone();
            ba.join(&a);
            let mut ab = a.clone();
            ab.join(&b);
            prop_assert_eq!(&ab, &ba);
        }

        #[test]
        fn join_is_monotone_upper_bound(a in clock_strategy(), b in clock_strategy()) {
            let mut joined = a.clone();
            joined.join(&b);
            prop_assert!(a.leq(&joined), "a ⊑ a⊔b");
            prop_assert!(b.leq(&joined), "b ⊑ a⊔b");
            // Idempotence: joining again changes nothing.
            let mut twice = joined.clone();
            twice.join(&b);
            prop_assert_eq!(&twice, &joined);
        }

        #[test]
        fn happens_before_is_transitive(
            a in clock_strategy(),
            b in clock_strategy(),
            c in clock_strategy(),
        ) {
            if a.leq(&b) && b.leq(&c) {
                prop_assert!(a.leq(&c));
            }
            // Ticks strictly advance: a ⊑ a.tick and never the reverse.
            let mut ticked = a.clone();
            ticked.tick(0);
            prop_assert!(a.leq(&ticked));
            prop_assert!(!ticked.leq(&a));
        }
    }
}
