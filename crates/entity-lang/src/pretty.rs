//! Pretty printer: renders AST nodes back to surface syntax.
//!
//! Used for IR dumps (the compiler stores the split function bodies in the
//! dataflow IR and the pretty printer makes those inspectable), debugging, and
//! round-trip property tests.

use crate::ast::{BoolOp, EntityDef, Expr, MethodDef, Module, Stmt, Target, UnaryOp};
use std::fmt::Write;

const INDENT: &str = "    ";

/// Render a whole module.
pub fn module_to_source(module: &Module) -> String {
    let mut out = String::new();
    for (i, entity) in module.entities.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&entity_to_source(entity));
    }
    out
}

/// Render a single entity definition.
pub fn entity_to_source(entity: &EntityDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entity {}:", entity.name);
    for field in &entity.fields {
        let _ = writeln!(out, "{INDENT}{}: {}", field.name, field.ty);
    }
    if !entity.fields.is_empty() {
        out.push('\n');
    }
    for (i, method) in entity.methods.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&method_to_source(method, 1));
    }
    out
}

/// Render a method definition at the given indentation depth.
pub fn method_to_source(method: &MethodDef, depth: usize) -> String {
    let pad = INDENT.repeat(depth);
    let mut out = String::new();
    let params: Vec<String> = std::iter::once("self".to_string())
        .chain(
            method
                .params
                .iter()
                .map(|p| format!("{}: {}", p.name, p.ty)),
        )
        .collect();
    let ret = if method.return_ty == crate::types::Type::None {
        String::new()
    } else {
        format!(" -> {}", method.return_ty)
    };
    let _ = writeln!(
        out,
        "{pad}def {}({}){}:",
        method.name,
        params.join(", "),
        ret
    );
    out.push_str(&block_to_source(&method.body, depth + 1));
    out
}

/// Render a statement block at the given indentation depth.
pub fn block_to_source(body: &[Stmt], depth: usize) -> String {
    let mut out = String::new();
    if body.is_empty() {
        let _ = writeln!(out, "{}pass", INDENT.repeat(depth));
        return out;
    }
    for stmt in body {
        out.push_str(&stmt_to_source(stmt, depth));
    }
    out
}

/// Render one statement at the given indentation depth.
pub fn stmt_to_source(stmt: &Stmt, depth: usize) -> String {
    let pad = INDENT.repeat(depth);
    let mut out = String::new();
    match stmt {
        Stmt::Assign {
            target, ty, value, ..
        } => {
            let annot = ty.as_ref().map(|t| format!(": {t}")).unwrap_or_default();
            let _ = writeln!(out, "{pad}{target}{annot} = {}", expr_to_source(value));
        }
        Stmt::AugAssign {
            target, op, value, ..
        } => {
            let _ = writeln!(out, "{pad}{target} {op}= {}", expr_to_source(value));
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}{}", expr_to_source(expr));
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "{pad}return {}", expr_to_source(v));
            }
            None => {
                let _ = writeln!(out, "{pad}return");
            }
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "{pad}if {}:", expr_to_source(cond));
            out.push_str(&block_to_source(then_body, depth + 1));
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                out.push_str(&block_to_source(else_body, depth + 1));
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while {}:", expr_to_source(cond));
            out.push_str(&block_to_source(body, depth + 1));
        }
        Stmt::For {
            var, iter, body, ..
        } => {
            let _ = writeln!(out, "{pad}for {var} in {}:", expr_to_source(iter));
            out.push_str(&block_to_source(body, depth + 1));
        }
        Stmt::Pass { .. } => {
            let _ = writeln!(out, "{pad}pass");
        }
        Stmt::Break { .. } => {
            let _ = writeln!(out, "{pad}break");
        }
        Stmt::Continue { .. } => {
            let _ = writeln!(out, "{pad}continue");
        }
    }
    out
}

/// Render an expression (fully parenthesised where precedence matters).
pub fn expr_to_source(expr: &Expr) -> String {
    match expr {
        Expr::Int(v, _) => v.to_string(),
        Expr::Float(v, _) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Str(s, _) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::Bool(true, _) => "True".to_string(),
        Expr::Bool(false, _) => "False".to_string(),
        Expr::NoneLit(_) => "None".to_string(),
        Expr::Name(n, _) => n.clone(),
        Expr::SelfField(f, _) => format!("self.{f}"),
        Expr::Call {
            recv, method, args, ..
        } => {
            let recv = recv.clone().unwrap_or_else(|| "self".to_string());
            let args: Vec<String> = args.iter().map(expr_to_source).collect();
            format!("{recv}.{method}({})", args.join(", "))
        }
        Expr::Builtin { name, args, .. } => {
            let args: Vec<String> = args.iter().map(expr_to_source).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Binary {
            op, left, right, ..
        } => format!("({} {op} {})", expr_to_source(left), expr_to_source(right)),
        Expr::Compare {
            op, left, right, ..
        } => format!("({} {op} {})", expr_to_source(left), expr_to_source(right)),
        Expr::Logic {
            op, left, right, ..
        } => {
            let word = match op {
                BoolOp::And => "and",
                BoolOp::Or => "or",
            };
            format!(
                "({} {word} {})",
                expr_to_source(left),
                expr_to_source(right)
            )
        }
        Expr::Unary { op, operand, .. } => match op {
            UnaryOp::Neg => format!("(-{})", expr_to_source(operand)),
            UnaryOp::Not => format!("(not {})", expr_to_source(operand)),
        },
        Expr::List(items, _) => {
            let items: Vec<String> = items.iter().map(expr_to_source).collect();
            format!("[{}]", items.join(", "))
        }
        Expr::Index { obj, index, .. } => {
            format!("{}[{}]", expr_to_source(obj), expr_to_source(index))
        }
    }
}

/// Convenience used in error paths: render a [`Target`].
pub fn target_to_source(target: &Target) -> String {
    target.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::FIGURE1_SOURCE;
    use crate::parser::parse_module;
    use crate::typecheck::check_module;

    #[test]
    fn pretty_printed_figure1_reparses_to_same_ast_shape() {
        let module = parse_module(FIGURE1_SOURCE).unwrap();
        let rendered = module_to_source(&module);
        let reparsed = parse_module(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- rendered ---\n{rendered}"));
        assert_eq!(module.entities.len(), reparsed.entities.len());
        for (a, b) in module.entities.iter().zip(reparsed.entities.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.fields.len(), b.fields.len());
            assert_eq!(a.methods.len(), b.methods.len());
            for (ma, mb) in a.methods.iter().zip(b.methods.iter()) {
                assert_eq!(ma.name, mb.name);
                assert_eq!(ma.params.len(), mb.params.len());
                assert_eq!(ma.return_ty, mb.return_ty);
            }
        }
        // The re-parsed module must also typecheck.
        check_module(&reparsed).unwrap();
    }

    #[test]
    fn expressions_render_with_parentheses() {
        let module = parse_module(FIGURE1_SOURCE).unwrap();
        let buy = module.entity("User").unwrap().method("buy_item").unwrap();
        let text = stmt_to_source(&buy.body[0], 0);
        assert!(text.contains("(amount * item.get_price())"), "{text}");
    }

    #[test]
    fn empty_block_renders_pass() {
        assert_eq!(block_to_source(&[], 1).trim(), "pass");
    }

    #[test]
    fn string_literals_are_escaped() {
        use crate::span::Span;
        let e = Expr::Str("a\"b".into(), Span::synthetic());
        assert_eq!(expr_to_source(&e), "\"a\\\"b\"");
    }
}
