//! Source positions and spans used throughout the front end.
//!
//! Every token, AST node, and diagnostic carries a [`Span`] so that the
//! compiler pipeline (analysis, splitting) can report errors pointing back to
//! the original entity program, exactly like the paper's AST-level analysis
//! reports errors against the Python source.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub col: u32,
}

impl Pos {
    /// Create a new position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }

    /// The position used for synthesized nodes that have no source location.
    pub fn synthetic() -> Self {
        Pos { line: 0, col: 0 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Start position (inclusive).
    pub start: Pos,
    /// End position (exclusive).
    pub end: Pos,
}

impl Span {
    /// Create a span from two positions.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at a single position.
    pub fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The span used for nodes synthesized by the compiler (e.g. split
    /// continuation functions) that have no direct source location.
    pub fn synthetic() -> Self {
        Span::point(Pos::synthetic())
    }

    /// Returns a span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// True if this span was synthesized (no source location).
    pub fn is_synthetic(&self) -> bool {
        self.start.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}", self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(Pos::new(1, 1), Pos::new(1, 5));
        let b = Span::new(Pos::new(2, 3), Pos::new(2, 9));
        let m = a.merge(b);
        assert_eq!(m.start, Pos::new(1, 1));
        assert_eq!(m.end, Pos::new(2, 9));
    }

    #[test]
    fn synthetic_span_displays_marker() {
        assert_eq!(Span::synthetic().to_string(), "<synthetic>");
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::point(Pos::new(3, 1)).is_synthetic());
    }

    #[test]
    fn pos_display() {
        assert_eq!(Pos::new(4, 7).to_string(), "4:7");
    }
}
