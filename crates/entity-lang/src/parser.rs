//! Recursive-descent parser for the entity surface language.
//!
//! Produces the [`Module`] AST consumed by the static analysis passes of the
//! `stateful-entities` compiler. The grammar is the Python subset described in
//! Section 2.2 of the paper: entity classes, typed methods, conditionals,
//! `for` loops over lists, `while` loops, and (remote) method calls.

use crate::ast::{
    is_builtin, BinOp, BoolOp, CmpOp, EntityDef, Expr, FieldDecl, MethodDef, Module, Param, Stmt,
    Target, UnaryOp,
};
use crate::error::{LangError, LangResult};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::types::Type;

/// Parse a full source file into a [`Module`].
pub fn parse_module(source: &str) -> LangResult<Module> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_module()
}

/// Parse a single entity definition (convenience for tests and examples).
pub fn parse_entity(source: &str) -> LangResult<EntityDef> {
    let module = parse_module(source)?;
    module
        .entities
        .into_iter()
        .next()
        .ok_or_else(|| LangError::parse(Span::synthetic(), "source contains no entity definition"))
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, idx: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        tok
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> LangResult<Token> {
        if self.check(&kind) {
            Ok(self.advance())
        } else {
            let found = self.peek();
            Err(LangError::parse(
                found.span,
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    found.kind.describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> LangResult<(String, Span)> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Ident(name) => Ok((name, tok.span)),
            other => Err(LangError::parse(
                tok.span,
                format!("expected an identifier, found {}", other.describe()),
            )),
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    // ----- module / entity level -------------------------------------------------

    fn parse_module(&mut self) -> LangResult<Module> {
        let mut entities = Vec::new();
        self.skip_newlines();
        while !self.check(&TokenKind::Eof) {
            entities.push(self.parse_entity_def()?);
            self.skip_newlines();
        }
        Ok(Module { entities })
    }

    fn parse_entity_def(&mut self) -> LangResult<EntityDef> {
        let kw = self.expect(TokenKind::Entity)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        self.expect(TokenKind::Indent)?;

        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::Dedent) || self.check(&TokenKind::Eof) {
                break;
            }
            if self.check(&TokenKind::Def) {
                methods.push(self.parse_method()?);
            } else if matches!(self.peek_kind(), TokenKind::Ident(_)) {
                fields.push(self.parse_field_decl()?);
            } else if self.eat(&TokenKind::Pass) {
                self.expect(TokenKind::Newline)?;
            } else {
                let tok = self.peek();
                return Err(LangError::parse(
                    tok.span,
                    format!(
                        "expected a field declaration or method definition, found {}",
                        tok.kind.describe()
                    ),
                ));
            }
        }

        Ok(EntityDef {
            name,
            fields,
            methods,
            span: kw.span,
        })
    }

    fn parse_field_decl(&mut self) -> LangResult<FieldDecl> {
        let (name, span) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.parse_type()?;
        self.expect(TokenKind::Newline)?;
        Ok(FieldDecl { name, ty, span })
    }

    fn parse_method(&mut self) -> LangResult<MethodDef> {
        let kw = self.expect(TokenKind::Def)?;
        let (name, name_span) = match self.peek_kind().clone() {
            TokenKind::Ident(_) => self.expect_ident()?,
            // `__init__` and `__key__` are ordinary identifiers, but allow a
            // helpful error for anything else.
            other => {
                return Err(LangError::parse(
                    self.peek().span,
                    format!("expected a method name, found {}", other.describe()),
                ));
            }
        };
        self.expect(TokenKind::LParen)?;
        // `self` is mandatory as the first parameter.
        if !self.eat(&TokenKind::SelfKw) {
            return Err(LangError::parse(
                name_span,
                format!("method `{name}` must take `self` as its first parameter"),
            ));
        }
        let mut params = Vec::new();
        while self.eat(&TokenKind::Comma) {
            if self.check(&TokenKind::RParen) {
                break;
            }
            let (pname, pspan) = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let ty = self.parse_type()?;
            params.push(Param {
                name: pname,
                ty,
                span: pspan,
            });
        }
        self.expect(TokenKind::RParen)?;
        let return_ty = if self.eat(&TokenKind::Arrow) {
            self.parse_type()?
        } else {
            Type::None
        };
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        let body = self.parse_block()?;
        Ok(MethodDef {
            name,
            params,
            return_ty,
            body,
            span: kw.span,
        })
    }

    fn parse_type(&mut self) -> LangResult<Type> {
        // `None` is a valid return annotation.
        if self.eat(&TokenKind::NoneLit) {
            return Ok(Type::None);
        }
        let (name, span) = self.expect_ident()?;
        if name == "list" {
            self.expect(TokenKind::LBracket)?;
            let inner = self.parse_type()?;
            self.expect(TokenKind::RBracket)?;
            return Ok(Type::List(Box::new(inner)));
        }
        if name == "dict" {
            return Err(LangError::parse(
                span,
                "`dict` values are not supported by the programming model",
            ));
        }
        let _ = span;
        Ok(Type::from_name(&name))
    }

    // ----- statements -------------------------------------------------------------

    fn parse_block(&mut self) -> LangResult<Vec<Stmt>> {
        self.expect(TokenKind::Indent)?;
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::Dedent) || self.check(&TokenKind::Eof) {
                break;
            }
            stmts.push(self.parse_stmt()?);
        }
        if stmts.is_empty() {
            return Err(LangError::parse(
                self.peek().span,
                "expected an indented block with at least one statement",
            ));
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> LangResult<Stmt> {
        match self.peek_kind() {
            TokenKind::If => self.parse_if(),
            TokenKind::While => self.parse_while(),
            TokenKind::For => self.parse_for(),
            TokenKind::Return => {
                let kw = self.advance();
                let value = if self.check(&TokenKind::Newline) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::Return {
                    value,
                    span: kw.span,
                })
            }
            TokenKind::Pass => {
                let kw = self.advance();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::Pass { span: kw.span })
            }
            TokenKind::Break => {
                let kw = self.advance();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::Break { span: kw.span })
            }
            TokenKind::Continue => {
                let kw = self.advance();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::Continue { span: kw.span })
            }
            _ => self.parse_simple_stmt(),
        }
    }

    /// Assignment, augmented assignment, or expression statement.
    fn parse_simple_stmt(&mut self) -> LangResult<Stmt> {
        // Try to recognise an assignment target first.
        let checkpoint = self.idx;
        if let Some((target, span)) = self.try_parse_target() {
            match self.peek_kind() {
                TokenKind::Colon => {
                    self.advance();
                    let ty = self.parse_type()?;
                    self.expect(TokenKind::Assign)?;
                    let value = self.parse_expr()?;
                    self.expect(TokenKind::Newline)?;
                    return Ok(Stmt::Assign {
                        target,
                        ty: Some(ty),
                        value,
                        span,
                    });
                }
                TokenKind::Assign => {
                    self.advance();
                    let value = self.parse_expr()?;
                    self.expect(TokenKind::Newline)?;
                    return Ok(Stmt::Assign {
                        target,
                        ty: None,
                        value,
                        span,
                    });
                }
                TokenKind::PlusAssign | TokenKind::MinusAssign | TokenKind::StarAssign => {
                    let op = match self.advance().kind {
                        TokenKind::PlusAssign => BinOp::Add,
                        TokenKind::MinusAssign => BinOp::Sub,
                        _ => BinOp::Mul,
                    };
                    let value = self.parse_expr()?;
                    self.expect(TokenKind::Newline)?;
                    return Ok(Stmt::AugAssign {
                        target,
                        op,
                        value,
                        span,
                    });
                }
                _ => {
                    // Not an assignment after all: rewind and parse as expression.
                    self.idx = checkpoint;
                }
            }
        }
        let expr = self.parse_expr()?;
        let span = expr.span();
        self.expect(TokenKind::Newline)?;
        Ok(Stmt::ExprStmt { expr, span })
    }

    /// Attempt to parse `name` or `self.field` as an assignment target without
    /// committing (the caller rewinds if no assignment operator follows).
    fn try_parse_target(&mut self) -> Option<(Target, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                // Only a bare identifier can be a target; `x[0] = ...` is not
                // supported by the programming model.
                let next = self.tokens.get(self.idx + 1).map(|t| &t.kind);
                if matches!(
                    next,
                    Some(TokenKind::Colon)
                        | Some(TokenKind::Assign)
                        | Some(TokenKind::PlusAssign)
                        | Some(TokenKind::MinusAssign)
                        | Some(TokenKind::StarAssign)
                ) {
                    self.advance();
                    return Some((Target::Name(name), span));
                }
                None
            }
            TokenKind::SelfKw => {
                let span = self.peek().span;
                let dot = self.tokens.get(self.idx + 1).map(|t| &t.kind);
                let field = self.tokens.get(self.idx + 2).map(|t| t.kind.clone());
                let after = self.tokens.get(self.idx + 3).map(|t| &t.kind);
                if matches!(dot, Some(TokenKind::Dot)) {
                    if let Some(TokenKind::Ident(field)) = field {
                        if matches!(
                            after,
                            Some(TokenKind::Colon)
                                | Some(TokenKind::Assign)
                                | Some(TokenKind::PlusAssign)
                                | Some(TokenKind::MinusAssign)
                                | Some(TokenKind::StarAssign)
                        ) {
                            self.advance();
                            self.advance();
                            self.advance();
                            return Some((Target::SelfField(field), span));
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn parse_if(&mut self) -> LangResult<Stmt> {
        let kw = self.expect(TokenKind::If)?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        let then_body = self.parse_block()?;
        let else_body = self.parse_else_tail()?;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span: kw.span,
        })
    }

    /// Parse `elif`/`else` continuations. `elif` is desugared into a nested
    /// `If` statement inside the `else` branch.
    fn parse_else_tail(&mut self) -> LangResult<Vec<Stmt>> {
        if self.check(&TokenKind::Elif) {
            let kw = self.advance();
            let cond = self.parse_expr()?;
            self.expect(TokenKind::Colon)?;
            self.expect(TokenKind::Newline)?;
            let then_body = self.parse_block()?;
            let else_body = self.parse_else_tail()?;
            return Ok(vec![Stmt::If {
                cond,
                then_body,
                else_body,
                span: kw.span,
            }]);
        }
        if self.eat(&TokenKind::Else) {
            self.expect(TokenKind::Colon)?;
            self.expect(TokenKind::Newline)?;
            return self.parse_block();
        }
        Ok(Vec::new())
    }

    fn parse_while(&mut self) -> LangResult<Stmt> {
        let kw = self.expect(TokenKind::While)?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        let body = self.parse_block()?;
        Ok(Stmt::While {
            cond,
            body,
            span: kw.span,
        })
    }

    fn parse_for(&mut self) -> LangResult<Stmt> {
        let kw = self.expect(TokenKind::For)?;
        let (var, _) = self.expect_ident()?;
        self.expect(TokenKind::In)?;
        let iter = self.parse_expr()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        let body = self.parse_block()?;
        Ok(Stmt::For {
            var,
            iter,
            body,
            span: kw.span,
        })
    }

    // ----- expressions ------------------------------------------------------------

    fn parse_expr(&mut self) -> LangResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> LangResult<Expr> {
        let mut left = self.parse_and()?;
        while self.check(&TokenKind::Or) {
            let tok = self.advance();
            let right = self.parse_and()?;
            let span = tok.span.merge(right.span());
            left = Expr::Logic {
                op: BoolOp::Or,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> LangResult<Expr> {
        let mut left = self.parse_not()?;
        while self.check(&TokenKind::And) {
            let tok = self.advance();
            let right = self.parse_not()?;
            let span = tok.span.merge(right.span());
            left = Expr::Logic {
                op: BoolOp::And,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> LangResult<Expr> {
        if self.check(&TokenKind::Not) {
            let tok = self.advance();
            let operand = self.parse_not()?;
            let span = tok.span.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> LangResult<Expr> {
        let left = self.parse_arith()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => Some(CmpOp::Eq),
            TokenKind::NotEq => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_arith()?;
            let span = left.span().merge(right.span());
            return Ok(Expr::Compare {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            });
        }
        Ok(left)
    }

    fn parse_arith(&mut self) -> LangResult<Expr> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_term()?;
            let span = left.span().merge(right.span());
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> LangResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::SlashSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            let span = left.span().merge(right.span());
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> LangResult<Expr> {
        if self.check(&TokenKind::Minus) {
            let tok = self.advance();
            let operand = self.parse_unary()?;
            let span = tok.span.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> LangResult<Expr> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.check(&TokenKind::Dot) {
                let dot = self.advance();
                let (method, mspan) = self.expect_ident()?;
                if !self.check(&TokenKind::LParen) {
                    return Err(LangError::parse(
                        mspan,
                        format!(
                            "attribute access `.{method}` on another entity is not allowed; \
                             remote state must be accessed through method calls"
                        ),
                    ));
                }
                let args = self.parse_call_args()?;
                let recv = match &expr {
                    Expr::Name(name, _) => Some(name.clone()),
                    _ => {
                        return Err(LangError::parse(
                            dot.span,
                            "method calls are only allowed on `self` or on variables \
                             holding an entity reference",
                        ));
                    }
                };
                let span = expr.span().merge(self.prev_span());
                expr = Expr::Call {
                    recv,
                    method,
                    args,
                    span,
                };
            } else if self.check(&TokenKind::LBracket) {
                self.advance();
                let index = self.parse_expr()?;
                let close = self.expect(TokenKind::RBracket)?;
                let span = expr.span().merge(close.span);
                expr = Expr::Index {
                    obj: Box::new(expr),
                    index: Box::new(index),
                    span,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.idx.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_else(Span::synthetic)
    }

    fn parse_call_args(&mut self) -> LangResult<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_atom(&mut self) -> LangResult<Expr> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Int(v) => Ok(Expr::Int(v, tok.span)),
            TokenKind::Float(v) => Ok(Expr::Float(v, tok.span)),
            TokenKind::Str(s) => Ok(Expr::Str(s, tok.span)),
            TokenKind::True => Ok(Expr::Bool(true, tok.span)),
            TokenKind::False => Ok(Expr::Bool(false, tok.span)),
            TokenKind::NoneLit => Ok(Expr::NoneLit(tok.span)),
            TokenKind::SelfKw => {
                self.expect(TokenKind::Dot)?;
                let (name, nspan) = self.expect_ident()?;
                if self.check(&TokenKind::LParen) {
                    let args = self.parse_call_args()?;
                    let span = tok.span.merge(self.prev_span());
                    Ok(Expr::Call {
                        recv: None,
                        method: name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::SelfField(name, tok.span.merge(nspan)))
                }
            }
            TokenKind::Ident(name) => {
                if self.check(&TokenKind::LParen) {
                    if is_builtin(&name) {
                        let args = self.parse_call_args()?;
                        let span = tok.span.merge(self.prev_span());
                        return Ok(Expr::Builtin { name, args, span });
                    }
                    return Err(LangError::parse(
                        tok.span,
                        format!(
                            "unknown function `{name}`; only builtins ({}) and entity \
                             method calls are supported",
                            crate::ast::BUILTINS.join(", ")
                        ),
                    ));
                }
                Ok(Expr::Name(name, tok.span))
            }
            TokenKind::LParen => {
                let expr = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(expr)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let close = self.expect(TokenKind::RBracket)?;
                Ok(Expr::List(items, tok.span.merge(close.span)))
            }
            other => Err(LangError::parse(
                tok.span,
                format!("unexpected {} in expression", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::FIGURE1_SOURCE;

    #[test]
    fn parses_figure1_example() {
        let module = parse_module(FIGURE1_SOURCE).unwrap();
        assert_eq!(module.entities.len(), 2);
        let item = module.entity("Item").unwrap();
        assert_eq!(item.fields.len(), 3);
        assert_eq!(item.methods.len(), 5);
        let user = module.entity("User").unwrap();
        let buy = user.method("buy_item").unwrap();
        assert_eq!(buy.params.len(), 2);
        assert_eq!(buy.params[1].ty, Type::Entity("Item".into()));
        assert_eq!(buy.return_ty, Type::Bool);
        assert_eq!(buy.body.len(), 6);
    }

    #[test]
    fn parses_remote_call_expression() {
        let module = parse_module(FIGURE1_SOURCE).unwrap();
        let buy = module.entity("User").unwrap().method("buy_item").unwrap();
        match &buy.body[0] {
            Stmt::Assign {
                target, ty, value, ..
            } => {
                assert_eq!(*target, Target::Name("total_price".into()));
                assert_eq!(*ty, Some(Type::Int));
                match value {
                    Expr::Binary {
                        op: BinOp::Mul,
                        right,
                        ..
                    } => match right.as_ref() {
                        Expr::Call {
                            recv, method, args, ..
                        } => {
                            assert_eq!(recv.as_deref(), Some("item"));
                            assert_eq!(method, "get_price");
                            assert!(args.is_empty());
                        }
                        other => panic!("expected call, got {other:?}"),
                    },
                    other => panic!("expected binary, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn desugars_elif_chain() {
        let src = r#"
entity T:
    x: int

    def __init__(self):
        self.x = 0

    def __key__(self) -> int:
        return self.x

    def classify(self, v: int) -> str:
        if v < 0:
            return "neg"
        elif v == 0:
            return "zero"
        else:
            return "pos"
"#;
        let module = parse_module(src).unwrap();
        let m = module.entity("T").unwrap().method("classify").unwrap();
        match &m.body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_and_while_loops() {
        let src = r#"
entity Cart:
    total: int

    def __init__(self):
        self.total = 0

    def __key__(self) -> int:
        return self.total

    def sum(self, prices: list[int]) -> int:
        acc: int = 0
        for p in prices:
            acc += p
        i: int = 0
        while i < 3:
            i += 1
        return acc
"#;
        let module = parse_module(src).unwrap();
        let m = module.entity("Cart").unwrap().method("sum").unwrap();
        assert!(matches!(m.body[1], Stmt::For { .. }));
        assert!(matches!(m.body[3], Stmt::While { .. }));
        assert_eq!(m.params[0].ty, Type::List(Box::new(Type::Int)));
    }

    #[test]
    fn rejects_remote_attribute_access() {
        let src = r#"
entity A:
    x: int

    def __init__(self):
        self.x = 0

    def __key__(self) -> int:
        return self.x

    def f(self, other: A) -> int:
        return other.x
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("attribute access"));
    }

    #[test]
    fn rejects_unknown_free_function() {
        let src = r#"
entity A:
    x: int

    def __init__(self):
        self.x = 0

    def __key__(self) -> int:
        return self.x

    def f(self) -> int:
        return foo(1)
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn rejects_method_without_self() {
        let src = "entity A:\n    def f() -> int:\n        return 1\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("self"));
    }

    #[test]
    fn parses_builtin_calls_and_lists() {
        let src = r#"
entity A:
    x: int

    def __init__(self):
        self.x = 0

    def __key__(self) -> int:
        return self.x

    def f(self, xs: list[int]) -> int:
        ys: list[int] = [1, 2, 3]
        n: int = len(xs) + len(ys)
        return ys[0] + n
"#;
        let module = parse_module(src).unwrap();
        let m = module.entity("A").unwrap().method("f").unwrap();
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parse_entity_returns_first_definition() {
        let entity = parse_entity(FIGURE1_SOURCE).unwrap();
        assert_eq!(entity.name, "Item");
    }

    #[test]
    fn empty_module_is_ok() {
        let m = parse_module("").unwrap();
        assert!(m.entities.is_empty());
    }

    #[test]
    fn error_reports_location() {
        let err = parse_module("entity :\n").unwrap_err();
        assert_eq!(err.span.start.line, 1);
    }
}
