//! Static types of the entity surface language.
//!
//! The paper requires static type hints on the input/output of every stateful
//! entity function; the compiler uses entity-typed parameters to detect remote
//! calls. [`Type`] is shared by the type checker and the downstream compiler
//! pipeline in the `stateful-entities` crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A static type in the entity language.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// Boolean (`bool`).
    Bool,
    /// UTF-8 string (`str`).
    Str,
    /// Homogeneous list (`list[T]`).
    List(Box<Type>),
    /// A reference to another stateful entity, by class name.
    Entity(String),
    /// The unit/None type (methods without a return annotation).
    None,
}

impl Type {
    /// Parse a type name as written in the source (`int`, `str`,
    /// `list[int]` handled by the parser; bare names that are not primitives
    /// are entity references).
    pub fn from_name(name: &str) -> Type {
        match name {
            "int" => Type::Int,
            "float" => Type::Float,
            "bool" => Type::Bool,
            "str" => Type::Str,
            "None" => Type::None,
            other => Type::Entity(other.to_string()),
        }
    }

    /// True if this type refers to another entity (the marker the compiler
    /// uses to detect remote calls).
    pub fn is_entity(&self) -> bool {
        matches!(self, Type::Entity(_))
    }

    /// The entity class name if this is an entity reference.
    pub fn entity_name(&self) -> Option<&str> {
        match self {
            Type::Entity(name) => Some(name),
            _ => None,
        }
    }

    /// True for types whose values can be partition keys (`int` or `str`).
    pub fn is_keyable(&self) -> bool {
        matches!(self, Type::Int | Type::Str)
    }

    /// True if `self` and `other` are compatible for assignment
    /// (`int` widens to `float`; everything else must match exactly).
    pub fn accepts(&self, other: &Type) -> bool {
        self == other || (matches!(self, Type::Float) && matches!(other, Type::Int))
    }

    /// True if the type is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "str"),
            Type::List(inner) => write!(f, "list[{inner}]"),
            Type::Entity(name) => write!(f, "{name}"),
            Type::None => write!(f, "None"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_names_resolve() {
        assert_eq!(Type::from_name("int"), Type::Int);
        assert_eq!(Type::from_name("str"), Type::Str);
        assert_eq!(Type::from_name("Item"), Type::Entity("Item".into()));
    }

    #[test]
    fn entity_detection() {
        assert!(Type::Entity("User".into()).is_entity());
        assert!(!Type::Int.is_entity());
        assert_eq!(Type::Entity("User".into()).entity_name(), Some("User"));
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Type::Float.accepts(&Type::Int));
        assert!(!Type::Int.accepts(&Type::Float));
        assert!(Type::Str.accepts(&Type::Str));
    }

    #[test]
    fn display_of_nested_list() {
        let t = Type::List(Box::new(Type::List(Box::new(Type::Int))));
        assert_eq!(t.to_string(), "list[list[int]]");
    }

    #[test]
    fn keyable_types() {
        assert!(Type::Int.is_keyable());
        assert!(Type::Str.is_keyable());
        assert!(!Type::Float.is_keyable());
        assert!(!Type::Entity("X".into()).is_keyable());
    }
}
