//! Indentation-aware lexer for the entity surface language.
//!
//! The lexer mirrors the behaviour of CPython's tokenizer for the subset of
//! the language we support: logical lines terminated by [`TokenKind::Newline`],
//! indentation changes reported as [`TokenKind::Indent`] / [`TokenKind::Dedent`],
//! `#` comments, blank-line skipping, and implicit line joining inside
//! parentheses and brackets.

use crate::error::{LangError, LangResult};
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Number of spaces a tab character counts for when computing indentation.
const TAB_WIDTH: u32 = 4;

/// Tokenise `source` into a vector of tokens ending with [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> LangResult<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    source: &'a str,
    idx: usize,
    line: u32,
    col: u32,
    /// Stack of active indentation widths; always starts with 0.
    indents: Vec<u32>,
    /// Depth of open `(`/`[` pairs; newlines are ignored while > 0.
    bracket_depth: usize,
    /// True when we are at the start of a logical line and must measure
    /// indentation before emitting the next token.
    at_line_start: bool,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            source,
            idx: 0,
            line: 1,
            col: 1,
            indents: vec![0],
            bracket_depth: 0,
            at_line_start: true,
            tokens: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: Pos) {
        let span = Span::new(start, self.pos());
        self.tokens.push(Token::new(kind, span));
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        if self.source.is_empty() {
            self.tokens
                .push(Token::new(TokenKind::Eof, Span::point(self.pos())));
            return Ok(self.tokens);
        }
        loop {
            if self.at_line_start && self.bracket_depth == 0 {
                if self.handle_line_start()? {
                    break;
                }
                continue;
            }
            match self.peek() {
                None => {
                    self.finish_at_eof();
                    break;
                }
                Some(c) => self.lex_token(c)?,
            }
        }
        Ok(self.tokens)
    }

    /// Measure indentation at the start of a logical line, skipping blank and
    /// comment-only lines. Returns `true` when the end of input was reached.
    fn handle_line_start(&mut self) -> LangResult<bool> {
        let mut width = 0u32;
        loop {
            match self.peek() {
                Some(' ') => {
                    width += 1;
                    self.bump();
                }
                Some('\t') => {
                    width += TAB_WIDTH;
                    self.bump();
                }
                _ => break,
            }
        }
        match self.peek() {
            // Blank line or comment-only line: consume to end of line and retry.
            Some('\n') => {
                self.bump();
                return Ok(false);
            }
            Some('\r') => {
                self.bump();
                if self.peek() == Some('\n') {
                    self.bump();
                }
                return Ok(false);
            }
            Some('#') => {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                return Ok(false);
            }
            None => {
                self.finish_at_eof();
                return Ok(true);
            }
            Some(_) => {}
        }

        let start = self.pos();
        let current = *self.indents.last().expect("indent stack never empty");
        if width > current {
            self.indents.push(width);
            self.push(TokenKind::Indent, start);
        } else if width < current {
            while *self.indents.last().expect("indent stack never empty") > width {
                self.indents.pop();
                self.push(TokenKind::Dedent, start);
            }
            if *self.indents.last().expect("indent stack never empty") != width {
                return Err(LangError::lex(
                    Span::point(start),
                    format!("inconsistent dedent to width {width}"),
                ));
            }
        }
        self.at_line_start = false;
        Ok(false)
    }

    /// Emit trailing Newline/Dedents/Eof at end of input.
    fn finish_at_eof(&mut self) {
        let pos = self.pos();
        // Terminate the last logical line if there were tokens on it.
        if let Some(last) = self.tokens.last() {
            if !matches!(
                last.kind,
                TokenKind::Newline | TokenKind::Dedent | TokenKind::Indent
            ) {
                self.tokens
                    .push(Token::new(TokenKind::Newline, Span::point(pos)));
            }
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.tokens
                .push(Token::new(TokenKind::Dedent, Span::point(pos)));
        }
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(pos)));
    }

    fn lex_token(&mut self, c: char) -> LangResult<()> {
        let start = self.pos();
        match c {
            ' ' | '\t' => {
                self.bump();
            }
            '\r' => {
                self.bump();
            }
            '\n' => {
                self.bump();
                if self.bracket_depth == 0 {
                    // Collapse consecutive newlines.
                    if !matches!(
                        self.tokens.last().map(|t| &t.kind),
                        Some(TokenKind::Newline)
                    ) {
                        self.push(TokenKind::Newline, start);
                    }
                    self.at_line_start = true;
                }
            }
            '#' => {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
            }
            '0'..='9' => self.lex_number(start)?,
            '"' | '\'' => self.lex_string(start, c)?,
            c if c.is_alphabetic() || c == '_' => self.lex_ident(start),
            _ => self.lex_operator(start, c)?,
        }
        Ok(())
    }

    fn lex_number(&mut self, start: Pos) -> LangResult<()> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let span = Span::new(start, self.pos());
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| LangError::lex(span, format!("invalid float literal `{text}`")))?;
            self.push(TokenKind::Float(value), start);
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| LangError::lex(span, format!("invalid integer literal `{text}`")))?;
            self.push(TokenKind::Int(value), start);
        }
        Ok(())
    }

    fn lex_string(&mut self, start: Pos, quote: char) -> LangResult<()> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    return Err(LangError::lex(
                        Span::new(start, self.pos()),
                        "unterminated string literal",
                    ));
                }
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('\\') => text.push('\\'),
                    Some('"') => text.push('"'),
                    Some('\'') => text.push('\''),
                    Some(other) => {
                        return Err(LangError::lex(
                            Span::new(start, self.pos()),
                            format!("unknown escape sequence `\\{other}`"),
                        ));
                    }
                    None => {
                        return Err(LangError::lex(
                            Span::new(start, self.pos()),
                            "unterminated string literal",
                        ));
                    }
                },
                Some(c) if c == quote => break,
                Some(c) => text.push(c),
            }
        }
        self.push(TokenKind::Str(text), start);
        Ok(())
    }

    fn lex_ident(&mut self, start: Pos) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text));
        self.push(kind, start);
    }

    fn lex_operator(&mut self, start: Pos, c: char) -> LangResult<()> {
        self.bump();
        let next = self.peek();
        let kind = match (c, next) {
            ('+', Some('=')) => {
                self.bump();
                TokenKind::PlusAssign
            }
            ('-', Some('=')) => {
                self.bump();
                TokenKind::MinusAssign
            }
            ('*', Some('=')) => {
                self.bump();
                TokenKind::StarAssign
            }
            ('-', Some('>')) => {
                self.bump();
                TokenKind::Arrow
            }
            ('=', Some('=')) => {
                self.bump();
                TokenKind::EqEq
            }
            ('!', Some('=')) => {
                self.bump();
                TokenKind::NotEq
            }
            ('<', Some('=')) => {
                self.bump();
                TokenKind::Le
            }
            ('>', Some('=')) => {
                self.bump();
                TokenKind::Ge
            }
            ('/', Some('/')) => {
                self.bump();
                TokenKind::SlashSlash
            }
            ('+', _) => TokenKind::Plus,
            ('-', _) => TokenKind::Minus,
            ('*', _) => TokenKind::Star,
            ('/', _) => TokenKind::Slash,
            ('%', _) => TokenKind::Percent,
            ('=', _) => TokenKind::Assign,
            ('<', _) => TokenKind::Lt,
            ('>', _) => TokenKind::Gt,
            ('(', _) => {
                self.bracket_depth += 1;
                TokenKind::LParen
            }
            (')', _) => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                TokenKind::RParen
            }
            ('[', _) => {
                self.bracket_depth += 1;
                TokenKind::LBracket
            }
            (']', _) => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                TokenKind::RBracket
            }
            (',', _) => TokenKind::Comma,
            (':', _) => TokenKind::Colon,
            ('.', _) => TokenKind::Dot,
            (other, _) => {
                return Err(LangError::lex(
                    Span::new(start, self.pos()),
                    format!("unexpected character `{other}`"),
                ));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let toks = kinds("x: int = 41 + 1\n");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("int".into()),
                TokenKind::Assign,
                TokenKind::Int(41),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn emits_indent_and_dedent() {
        let src = "entity A:\n    def f(self) -> int:\n        return 1\n";
        let toks = kinds(src);
        let indents = toks.iter().filter(|t| **t == TokenKind::Indent).count();
        let dedents = toks.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let src = "x = 1\n\n# a comment\n   \ny = 2\n";
        let toks = kinds(src);
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Ident(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["x".to_string(), "y".to_string()]);
        // No indent tokens should be produced for the blank lines.
        assert!(!toks.contains(&TokenKind::Indent));
    }

    #[test]
    fn implicit_line_joining_inside_parens() {
        let src = "f(1,\n  2,\n  3)\n";
        let toks = kinds(src);
        let newlines = toks.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1, "only the final newline should be emitted");
        assert!(!toks.contains(&TokenKind::Indent));
    }

    #[test]
    fn lexes_string_escapes() {
        let toks = kinds("s = \"a\\nb\"\n");
        assert!(toks.contains(&TokenKind::Str("a\nb".into())));
    }

    #[test]
    fn lexes_floats_and_floor_div() {
        let toks = kinds("y = 3.25 // 2\n");
        assert!(toks.contains(&TokenKind::Float(3.25)));
        assert!(toks.contains(&TokenKind::SlashSlash));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("s = \"oops\n").is_err());
    }

    #[test]
    fn rejects_inconsistent_dedent() {
        let src = "if x:\n        y = 1\n    z = 2\n";
        // Dedent to width 4 which was never pushed (only 0 and 8 exist).
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(tokenize("x = 1 ? 2\n").is_err());
    }

    #[test]
    fn handles_missing_trailing_newline() {
        let toks = kinds("x = 1");
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
        assert!(toks.contains(&TokenKind::Newline));
    }

    #[test]
    fn handles_empty_input() {
        let toks = kinds("");
        assert_eq!(toks, vec![TokenKind::Eof]);
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let toks = kinds("x = 1\r\ny = 2\r\n");
        let idents = toks
            .iter()
            .filter(|t| matches!(t, TokenKind::Ident(_)))
            .count();
        assert_eq!(idents, 2);
    }
}
