//! Sample entity programs used throughout the workspace (tests, examples,
//! workloads, benchmarks).
//!
//! Keeping them here guarantees that every crate compiles exactly the same
//! source through the same pipeline, mirroring how the paper's evaluation runs
//! its YCSB/YCSB+T entities through the StateFlow compiler.

/// The paper's running example (Figure 1): a `User` buying an `Item`.
///
/// `User.buy_item` performs two remote calls (`get_price`, `update_stock`)
/// inside control flow, which forces the compiler to split the function —
/// this is the canonical program exercised by the splitting and state-machine
/// tests.
pub const FIGURE1_SOURCE: &str = r#"
entity Item:
    item_id: str
    stock: int
    price: int

    def __init__(self, item_id: str, price: int):
        self.item_id = item_id
        self.stock = 0
        self.price = price

    def __key__(self) -> str:
        return self.item_id

    def get_price(self) -> int:
        return self.price

    def restock(self, amount: int) -> int:
        self.stock += amount
        return self.stock

    def update_stock(self, amount: int) -> bool:
        if self.stock + amount < 0:
            return False
        self.stock += amount
        return True

entity User:
    username: str
    balance: int

    def __init__(self, username: str):
        self.username = username
        self.balance = 0

    def __key__(self) -> str:
        return self.username

    def deposit(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    def get_balance(self) -> int:
        return self.balance

    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.get_price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(0 - amount)
        if not available:
            return False
        self.balance -= total_price
        return True
"#;

/// A bank `Account` entity implementing the YCSB / YCSB+T operations:
/// point reads, updates, and the transactional `transfer` used by workload T
/// (2 reads + 2 writes across two entities).
pub const ACCOUNT_SOURCE: &str = r#"
entity Account:
    account_id: str
    balance: int
    payload: str

    def __init__(self, account_id: str, balance: int, payload: str):
        self.account_id = account_id
        self.balance = balance
        self.payload = payload

    def __key__(self) -> str:
        return self.account_id

    def read(self) -> int:
        return self.balance

    def read_payload(self) -> str:
        return self.payload

    def update(self, value: int) -> int:
        self.balance = value
        return self.balance

    def update_payload(self, data: str) -> None:
        self.payload = data

    def credit(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    def debit(self, amount: int) -> bool:
        if self.balance - amount < 0:
            return False
        self.balance -= amount
        return True

    def transfer(self, amount: int, to: Account) -> bool:
        enough: bool = self.balance >= amount
        if not enough:
            return False
        received: int = to.credit(amount)
        self.balance -= amount
        return True

    def transfer_audited(self, amount: int, to: Account, log: Account) -> bool:
        audit: int = log.read()
        if audit < 0:
            return False
        enough: bool = self.balance >= amount
        if not enough:
            return False
        received: int = to.credit(amount)
        self.balance -= amount
        return True
"#;

/// A TPC-C-lite schema (the paper reports StateFlow runs "partly TPC-C"):
/// Warehouse / District / Customer entities with simplified `new_order` and
/// `payment` transactions expressed as entity method calls.
pub const TPCC_LITE_SOURCE: &str = r#"
entity Warehouse:
    warehouse_id: str
    ytd: int
    tax: int

    def __init__(self, warehouse_id: str, tax: int):
        self.warehouse_id = warehouse_id
        self.ytd = 0
        self.tax = tax

    def __key__(self) -> str:
        return self.warehouse_id

    def get_tax(self) -> int:
        return self.tax

    def add_ytd(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd

entity District:
    district_id: str
    next_order_id: int
    ytd: int
    tax: int

    def __init__(self, district_id: str, tax: int):
        self.district_id = district_id
        self.next_order_id = 1
        self.ytd = 0
        self.tax = tax

    def __key__(self) -> str:
        return self.district_id

    def next_order(self) -> int:
        order_id: int = self.next_order_id
        self.next_order_id += 1
        return order_id

    def add_ytd(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd

    def get_tax(self) -> int:
        return self.tax

entity Customer:
    customer_id: str
    balance: int
    ytd_payment: int
    payment_count: int
    delivery_count: int

    def __init__(self, customer_id: str, balance: int):
        self.customer_id = customer_id
        self.balance = balance
        self.ytd_payment = 0
        self.payment_count = 0
        self.delivery_count = 0

    def __key__(self) -> str:
        return self.customer_id

    def get_balance(self) -> int:
        return self.balance

    def new_order(self, order_total: int, district: District, warehouse: Warehouse) -> int:
        order_id: int = district.next_order()
        w_tax: int = warehouse.get_tax()
        d_tax: int = district.get_tax()
        taxed_total: int = order_total + order_total * (w_tax + d_tax) // 100
        self.balance -= taxed_total
        return order_id

    def payment(self, amount: int, district: District, warehouse: Warehouse) -> int:
        self.balance += amount
        self.ytd_payment += amount
        self.payment_count += 1
        w_ytd: int = warehouse.add_ytd(amount)
        d_ytd: int = district.add_ytd(amount)
        return self.balance
"#;

/// A shopping-cart program exercising loops over lists with remote calls in
/// the loop body (the hardest splitting case: `for`-loop unrolling tracked by
/// the state machine).
pub const CART_SOURCE: &str = r#"
entity Product:
    sku: str
    price: int
    stock: int

    def __init__(self, sku: str, price: int, stock: int):
        self.sku = sku
        self.price = price
        self.stock = stock

    def __key__(self) -> str:
        return self.sku

    def get_price(self) -> int:
        return self.price

    def reserve(self, quantity: int) -> bool:
        if self.stock - quantity < 0:
            return False
        self.stock -= quantity
        return True

    def release(self, quantity: int) -> int:
        self.stock += quantity
        return self.stock

entity Cart:
    cart_id: str
    total: int
    item_count: int

    def __init__(self, cart_id: str):
        self.cart_id = cart_id
        self.total = 0
        self.item_count = 0

    def __key__(self) -> str:
        return self.cart_id

    def add_item(self, quantity: int, product: Product) -> bool:
        reserved: bool = product.reserve(quantity)
        if not reserved:
            return False
        price: int = product.get_price()
        self.total += price * quantity
        self.item_count += quantity
        return True

    def checkout_total(self, quantities: list[int], product: Product) -> int:
        total: int = 0
        for q in quantities:
            price: int = product.get_price()
            total += price * q
        self.total = total
        return total
"#;

/// All corpus programs with a short human-readable name, for data-driven tests.
pub fn all_programs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("figure1", FIGURE1_SOURCE),
        ("account", ACCOUNT_SOURCE),
        ("tpcc_lite", TPCC_LITE_SOURCE),
        ("cart", CART_SOURCE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::typecheck::check_module;

    #[test]
    fn every_corpus_program_parses_and_typechecks() {
        for (name, src) in all_programs() {
            let module = parse_module(src).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
            check_module(&module).unwrap_or_else(|e| panic!("{name}: typecheck failed: {e}"));
        }
    }

    #[test]
    fn figure1_has_expected_entities() {
        let module = parse_module(FIGURE1_SOURCE).unwrap();
        assert!(module.entity("User").is_some());
        assert!(module.entity("Item").is_some());
    }

    #[test]
    fn account_transfer_is_cross_entity() {
        let module = parse_module(ACCOUNT_SOURCE).unwrap();
        let types = check_module(&module).unwrap();
        let transfer = &types.entity("Account").unwrap().methods["transfer"];
        assert_eq!(transfer.entity_locals(), vec![("to", "Account")]);
    }

    #[test]
    fn tpcc_lite_has_three_entities() {
        let module = parse_module(TPCC_LITE_SOURCE).unwrap();
        assert_eq!(module.entities.len(), 3);
    }
}
