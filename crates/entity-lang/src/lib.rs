//! # entity-lang
//!
//! Front end for the *stateful entities* programming model described in
//! "Stateful Entities: Object-oriented Cloud Applications as Distributed
//! Dataflows" (EDBT 2024).
//!
//! The paper embeds its programming model as an internal DSL in Python:
//! developers write ordinary, imperative, object-oriented classes with static
//! type hints, annotate them as entities, and the StateFlow compiler analyses
//! the AST. This crate reproduces that front end as a standalone surface
//! language with the same shape:
//!
//! * [`lexer`] — indentation-aware tokenizer (Python-style layout, comments,
//!   implicit line joining inside brackets);
//! * [`parser`] — recursive-descent parser producing the [`ast::Module`] AST;
//! * [`typecheck`] — enforces the programming-model rules of Section 2.2 of
//!   the paper (mandatory type hints, `__key__`, immutable keys, serializable
//!   state, no entity-typed fields) and produces a [`typecheck::ModuleTypes`]
//!   summary consumed by the `stateful-entities` compiler;
//! * [`pretty`] — renders ASTs back to source, used for IR dumps;
//! * [`corpus`] — the example programs used across the workspace (the paper's
//!   Figure 1, the YCSB/YCSB+T `Account` entity, TPC-C-lite, and a cart
//!   program with loops over remote calls).
//!
//! ```
//! use entity_lang::{corpus, parser, typecheck};
//!
//! let module = parser::parse_module(corpus::FIGURE1_SOURCE).unwrap();
//! let types = typecheck::check_module(&module).unwrap();
//! let buy_item = &types.entity("User").unwrap().methods["buy_item"];
//! // Entity-typed parameters are how remote calls are detected:
//! assert_eq!(buy_item.entity_locals(), vec![("item", "Item")]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod corpus;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typecheck;
pub mod types;

pub use ast::{EntityDef, Expr, MethodDef, Module, Stmt, Target};
pub use error::{LangError, LangResult};
pub use parser::{parse_entity, parse_module};
pub use span::{Pos, Span};
pub use typecheck::{check_module, EntityTypes, MethodTypes, ModuleTypes};
pub use types::Type;

/// Parse **and** type-check a source file in one call.
///
/// This is the entry point used by the `stateful-entities` compiler: it
/// returns both the AST and the type summary, or the first front-end error.
pub fn frontend(source: &str) -> LangResult<(Module, ModuleTypes)> {
    let module = parser::parse_module(source)?;
    let types = typecheck::check_module(&module)?;
    Ok((module, types))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_runs_both_phases() {
        let (module, types) = frontend(corpus::FIGURE1_SOURCE).unwrap();
        assert_eq!(module.entities.len(), types.entities.len());
    }

    #[test]
    fn frontend_reports_parse_errors() {
        let err = frontend("entity :\n").unwrap_err();
        assert_eq!(err.phase, error::Phase::Parse);
    }

    #[test]
    fn frontend_reports_type_errors() {
        let src = "entity A:\n    def __init__(self):\n        pass\n";
        let err = frontend(src).unwrap_err();
        assert_eq!(err.phase, error::Phase::Type);
    }
}
