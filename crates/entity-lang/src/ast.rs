//! Abstract syntax tree of the entity surface language.
//!
//! The AST is deliberately close to the Python subset the paper analyses:
//! entity (class) definitions with typed fields, typed methods, conditionals,
//! `for` loops over lists, general `while` loops, and method calls on
//! entity-typed references (which the compiler later treats as remote calls).

use crate::span::Span;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed source file: a set of entity definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Entity definitions in source order.
    pub entities: Vec<EntityDef>,
}

impl Module {
    /// Look up an entity definition by name.
    pub fn entity(&self, name: &str) -> Option<&EntityDef> {
        self.entities.iter().find(|e| e.name == name)
    }
}

/// An `entity Foo:` definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityDef {
    /// Class name.
    pub name: String,
    /// Declared fields (class-level `name: type` annotations).
    pub fields: Vec<FieldDecl>,
    /// Methods, in source order (including `__init__` and `__key__`).
    pub methods: Vec<MethodDef>,
    /// Source location of the definition header.
    pub span: Span,
}

impl EntityDef {
    /// Look up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A class-level field declaration, `stock: int`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A method definition inside an entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Method name (`__init__`, `__key__`, or a user method).
    pub name: String,
    /// Parameters, excluding `self` (which is implicit and mandatory).
    pub params: Vec<Param>,
    /// Declared return type (`None` when there is no `->` annotation).
    pub return_ty: Type,
    /// Method body.
    pub body: Vec<Stmt>,
    /// Source location of the `def` header.
    pub span: Span,
}

impl MethodDef {
    /// True if this is the constructor.
    pub fn is_init(&self) -> bool {
        self.name == "__init__"
    }

    /// True if this is the partition-key method.
    pub fn is_key(&self) -> bool {
        self.name == "__key__"
    }
}

/// A typed method parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (required by the programming model).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// A local variable, `x = ...`.
    Name(String),
    /// A field of the current entity, `self.balance = ...`.
    SelfField(String),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Name(n) => write!(f, "{n}"),
            Target::SelfField(n) => write!(f, "self.{n}"),
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target: ty = value` / `target = value`.
    Assign {
        /// Assignment target.
        target: Target,
        /// Optional type annotation.
        ty: Option<Type>,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `target += value` and friends (desugared by the parser into the
    /// corresponding binary operation, but kept as a distinct node so the
    /// pretty printer can round-trip the source).
    AugAssign {
        /// Assignment target.
        target: Target,
        /// The binary operator applied (`+`, `-`, `*`).
        op: BinOp,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// An expression evaluated for its effects (usually a remote call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
    /// `return` / `return expr`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if cond: ... else: ...` (with `elif` desugared into nested `If`s).
    If {
        /// Condition.
        cond: Expr,
        /// Statements of the true branch.
        then_body: Vec<Stmt>,
        /// Statements of the false branch (empty when there is no `else`).
        else_body: Vec<Stmt>,
        /// Source location of the `if` keyword.
        span: Span,
    },
    /// `while cond: ...`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `for var in iterable: ...` — iterables are lists.
    For {
        /// Loop variable.
        var: String,
        /// The iterable expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `pass`.
    Pass {
        /// Source location.
        span: Span,
    },
    /// `break`.
    Break {
        /// Source location.
        span: Span,
    },
    /// `continue`.
    Continue {
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::AugAssign { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Pass { span }
            | Stmt::Break { span }
            | Stmt::Continue { span } => *span,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division; produces a float)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%`
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolOp {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Arithmetic negation, `-x`.
    Neg,
    /// Logical negation, `not x`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Float literal.
    Float(f64, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// `None`.
    NoneLit(Span),
    /// A local variable or parameter reference.
    Name(String, Span),
    /// `self.field`.
    SelfField(String, Span),
    /// A method call. `recv` is `None` for calls on `self`
    /// (`self.helper(...)`), otherwise the name of the local variable or
    /// parameter holding the entity reference (`item.update_stock(...)`).
    Call {
        /// Receiver variable name (`None` means `self`).
        recv: Option<String>,
        /// Method name.
        method: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// A builtin function call (`len`, `range`, `min`, `max`, `abs`, `str`, `int`).
    Builtin {
        /// Builtin name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Comparison.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// `and` / `or` (short-circuiting).
    Logic {
        /// Connective.
        op: BoolOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// List literal.
    List(Vec<Expr>, Span),
    /// Indexing, `xs[i]`.
    Index {
        /// The indexed expression.
        obj: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Str(_, s)
            | Expr::Bool(_, s)
            | Expr::NoneLit(s)
            | Expr::Name(_, s)
            | Expr::SelfField(_, s)
            | Expr::List(_, s) => *s,
            Expr::Call { span, .. }
            | Expr::Builtin { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Compare { span, .. }
            | Expr::Logic { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Index { span, .. } => *span,
        }
    }

    /// Walk this expression and all sub-expressions, calling `f` on each.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } | Expr::Builtin { args, .. } | Expr::List(args, _) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Binary { left, right, .. }
            | Expr::Compare { left, right, .. }
            | Expr::Logic { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::Index { obj, index, .. } => {
                obj.walk(f);
                index.walk(f);
            }
            _ => {}
        }
    }

    /// Collect the names of local variables referenced by this expression
    /// (not including `self.field` accesses).
    pub fn referenced_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.for_each_name(&mut |n| names.push(n.to_string()));
        names
    }

    /// Visit the names of local variables referenced by this expression
    /// without allocating (the borrowed counterpart of
    /// [`Expr::referenced_names`]; call receivers included).
    pub fn for_each_name<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        self.walk(&mut |e| {
            if let Expr::Name(n, _) = e {
                f(n);
            }
            if let Expr::Call {
                recv: Some(recv), ..
            } = e
            {
                f(recv);
            }
        });
    }
}

/// The list of supported builtin function names.
pub const BUILTINS: &[&str] = &["len", "range", "min", "max", "abs", "str", "int"];

/// Returns true if `name` is a supported builtin function.
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn s() -> Span {
        Span::synthetic()
    }

    #[test]
    fn walk_visits_nested_expressions() {
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Name("a".into(), s())),
            right: Box::new(Expr::Call {
                recv: Some("item".into()),
                method: "price".into(),
                args: vec![Expr::Int(2, s())],
                span: s(),
            }),
            span: s(),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn referenced_names_include_call_receivers() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(Expr::Name("amount".into(), s())),
            right: Box::new(Expr::Call {
                recv: Some("item".into()),
                method: "price".into(),
                args: vec![],
                span: s(),
            }),
            span: s(),
        };
        let names = e.referenced_names();
        assert!(names.contains(&"amount".to_string()));
        assert!(names.contains(&"item".to_string()));
    }

    #[test]
    fn builtin_detection() {
        assert!(is_builtin("len"));
        assert!(is_builtin("range"));
        assert!(!is_builtin("update_stock"));
    }

    #[test]
    fn module_and_entity_lookup() {
        let module = Module {
            entities: vec![EntityDef {
                name: "User".into(),
                fields: vec![],
                methods: vec![MethodDef {
                    name: "__key__".into(),
                    params: vec![],
                    return_ty: Type::Str,
                    body: vec![],
                    span: s(),
                }],
                span: s(),
            }],
        };
        assert!(module.entity("User").is_some());
        assert!(module.entity("Item").is_none());
        assert!(module.entity("User").unwrap().method("__key__").is_some());
        assert!(module
            .entity("User")
            .unwrap()
            .method("__key__")
            .unwrap()
            .is_key());
    }

    #[test]
    fn target_display() {
        assert_eq!(Target::Name("x".into()).to_string(), "x");
        assert_eq!(
            Target::SelfField("balance".into()).to_string(),
            "self.balance"
        );
    }
}
