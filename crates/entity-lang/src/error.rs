//! Diagnostics produced by the lexer, parser, and type checker.

use crate::span::Span;
use std::fmt;

/// The phase of the front end that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation (including indentation handling).
    Lex,
    /// Syntax analysis.
    Parse,
    /// Static type checking.
    Type,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Type => write!(f, "type"),
        }
    }
}

/// A front-end diagnostic: which phase failed, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Phase that produced the error.
    pub phase: Phase,
    /// Location of the offending source text.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl LangError {
    /// Build a lexer error.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Lex,
            span,
            message: message.into(),
        }
    }

    /// Build a parser error.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Parse,
            span,
            message: message.into(),
        }
    }

    /// Build a type-checker error.
    pub fn ty(span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Type,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for LangError {}

/// Convenience alias for front-end results.
pub type LangResult<T> = Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    #[test]
    fn error_display_includes_phase_and_location() {
        let err = LangError::parse(Span::point(Pos::new(3, 5)), "unexpected token");
        let text = err.to_string();
        assert!(text.contains("parse error"));
        assert!(text.contains("3:5"));
        assert!(text.contains("unexpected token"));
    }

    #[test]
    fn constructors_set_phase() {
        assert_eq!(LangError::lex(Span::synthetic(), "x").phase, Phase::Lex);
        assert_eq!(LangError::ty(Span::synthetic(), "x").phase, Phase::Type);
    }
}
