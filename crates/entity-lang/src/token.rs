//! Token definitions for the entity surface language.
//!
//! The language is an indentation-sensitive, Python-like internal DSL (the
//! paper embeds it in Python; we reproduce it as a standalone surface
//! language with the same shape). The lexer therefore emits explicit
//! [`TokenKind::Indent`] / [`TokenKind::Dedent`] tokens, mirroring CPython's
//! tokenizer.

use crate::span::Span;
use std::fmt;

/// All token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An identifier such as `buy_item` or `Item`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (contents, without quotes).
    Str(String),

    // Keywords
    /// `entity` — introduces an entity class definition.
    Entity,
    /// `def` — introduces a method definition.
    Def,
    /// `return`
    Return,
    /// `if`
    If,
    /// `elif`
    Elif,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `pass`
    Pass,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `not`
    Not,
    /// `and`
    And,
    /// `or`
    Or,
    /// `True`
    True,
    /// `False`
    False,
    /// `None`
    NoneLit,
    /// `self`
    SelfKw,

    // Operators & punctuation
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,

    // Layout
    /// End of a logical line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "entity" => TokenKind::Entity,
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "pass" => TokenKind::Pass,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "not" => TokenKind::Not,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "True" => TokenKind::True,
            "False" => TokenKind::False,
            "None" => TokenKind::NoneLit,
            "self" => TokenKind::SelfKw,
            _ => return None,
        })
    }

    /// Short human-readable description used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Newline => "end of line".to_string(),
            TokenKind::Indent => "indent".to_string(),
            TokenKind::Dedent => "dedent".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Int(v) => return write!(f, "{v}"),
            TokenKind::Float(v) => return write!(f, "{v}"),
            TokenKind::Str(s) => return write!(f, "\"{s}\""),
            TokenKind::Entity => "entity",
            TokenKind::Def => "def",
            TokenKind::Return => "return",
            TokenKind::If => "if",
            TokenKind::Elif => "elif",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::In => "in",
            TokenKind::Pass => "pass",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::Not => "not",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::True => "True",
            TokenKind::False => "False",
            TokenKind::NoneLit => "None",
            TokenKind::SelfKw => "self",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::SlashSlash => "//",
            TokenKind::Percent => "%",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::Newline => "<newline>",
            TokenKind::Indent => "<indent>",
            TokenKind::Dedent => "<dedent>",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{text}")
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind (and payload) of the token.
    pub kind: TokenKind,
    /// Where in the source this token appeared.
    pub span: Span,
}

impl Token {
    /// Create a new token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognised() {
        assert_eq!(TokenKind::keyword("entity"), Some(TokenKind::Entity));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("True"), Some(TokenKind::True));
        assert_eq!(TokenKind::keyword("username"), None);
    }

    #[test]
    fn describe_quotes_punctuation() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(
            TokenKind::Ident("foo".to_string()).describe(),
            "identifier `foo`"
        );
    }

    #[test]
    fn display_roundtrips_simple_tokens() {
        assert_eq!(TokenKind::SlashSlash.to_string(), "//");
        assert_eq!(TokenKind::Str("hi".into()).to_string(), "\"hi\"");
    }
}
