//! Static type checker for entity programs.
//!
//! The paper's programming model *requires* static type hints on the
//! input/output of entity functions, because entity-typed parameters are how
//! the compiler detects remote calls (Section 2.2 "Limitations"). This module
//! enforces those rules and produces a [`ModuleTypes`] summary (field types,
//! method signatures, and per-method local variable types) that the
//! `stateful-entities` compiler consumes during analysis and splitting.

use crate::ast::{BinOp, CmpOp, EntityDef, Expr, MethodDef, Module, Stmt, Target, UnaryOp};
use crate::error::{LangError, LangResult};
use crate::span::Span;
use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Type information for a whole module, keyed by entity name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModuleTypes {
    /// Per-entity type information.
    pub entities: BTreeMap<String, EntityTypes>,
}

impl ModuleTypes {
    /// Look up an entity's type information.
    pub fn entity(&self, name: &str) -> Option<&EntityTypes> {
        self.entities.get(name)
    }
}

/// Type information for a single entity class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityTypes {
    /// Declared fields and their types.
    pub fields: BTreeMap<String, Type>,
    /// The field returned by `__key__` (used for partitioning).
    pub key_field: String,
    /// The type of the partition key (`int` or `str`).
    pub key_type: Type,
    /// Method signatures and local variable types.
    pub methods: BTreeMap<String, MethodTypes>,
}

/// Type information for a single method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodTypes {
    /// Parameter names and types, in declaration order (excluding `self`).
    pub params: Vec<(String, Type)>,
    /// Declared return type.
    pub return_ty: Type,
    /// Types of all local variables (parameters included).
    pub locals: BTreeMap<String, Type>,
}

impl MethodTypes {
    /// The names of parameters/locals that hold references to other entities.
    pub fn entity_locals(&self) -> Vec<(&str, &str)> {
        self.locals
            .iter()
            .filter_map(|(name, ty)| ty.entity_name().map(|e| (name.as_str(), e)))
            .collect()
    }
}

/// Type-check `module` and return the [`ModuleTypes`] summary.
pub fn check_module(module: &Module) -> LangResult<ModuleTypes> {
    let mut checker = Checker::new(module)?;
    checker.check_bodies(module)?;
    Ok(checker.result)
}

struct Checker {
    result: ModuleTypes,
}

impl Checker {
    /// Pass 1: collect entity names, field declarations, and method signatures.
    fn new(module: &Module) -> LangResult<Self> {
        let mut result = ModuleTypes::default();
        let mut names = BTreeSet::new();
        for entity in &module.entities {
            if !names.insert(entity.name.clone()) {
                return Err(LangError::ty(
                    entity.span,
                    format!("duplicate entity definition `{}`", entity.name),
                ));
            }
        }
        for entity in &module.entities {
            let info = Self::collect_entity(module, entity)?;
            result.entities.insert(entity.name.clone(), info);
        }
        Ok(Checker { result })
    }

    fn collect_entity(module: &Module, entity: &EntityDef) -> LangResult<EntityTypes> {
        let mut fields = BTreeMap::new();
        for field in &entity.fields {
            if fields
                .insert(field.name.clone(), field.ty.clone())
                .is_some()
            {
                return Err(LangError::ty(
                    field.span,
                    format!(
                        "duplicate field `{}` in entity `{}`",
                        field.name, entity.name
                    ),
                ));
            }
            if field.ty.is_entity() {
                return Err(LangError::ty(
                    field.span,
                    format!(
                        "field `{}` has entity type `{}`; entity state must be serializable \
                         and may not hold references to other entities",
                        field.name, field.ty
                    ),
                ));
            }
            Self::validate_named_type(module, &field.ty, field.span)?;
        }

        let mut methods = BTreeMap::new();
        for method in &entity.methods {
            if methods.contains_key(&method.name) {
                return Err(LangError::ty(
                    method.span,
                    format!(
                        "duplicate method `{}` in entity `{}`",
                        method.name, entity.name
                    ),
                ));
            }
            let mut seen_params = BTreeSet::new();
            for param in &method.params {
                if !seen_params.insert(param.name.clone()) {
                    return Err(LangError::ty(
                        param.span,
                        format!("duplicate parameter `{}`", param.name),
                    ));
                }
                Self::validate_named_type(module, &param.ty, param.span)?;
            }
            Self::validate_named_type(module, &method.return_ty, method.span)?;
            if method.return_ty.is_entity() {
                return Err(LangError::ty(
                    method.span,
                    format!(
                        "method `{}` returns entity type `{}`; returning entity references \
                         is not supported",
                        method.name, method.return_ty
                    ),
                ));
            }
            methods.insert(
                method.name.clone(),
                MethodTypes {
                    params: method
                        .params
                        .iter()
                        .map(|p| (p.name.clone(), p.ty.clone()))
                        .collect(),
                    return_ty: method.return_ty.clone(),
                    locals: BTreeMap::new(),
                },
            );
        }

        // Mandatory special methods.
        let init = entity.method("__init__").ok_or_else(|| {
            LangError::ty(
                entity.span,
                format!("entity `{}` must define `__init__`", entity.name),
            )
        })?;
        for param in &init.params {
            if param.ty.is_entity() {
                return Err(LangError::ty(
                    param.span,
                    "`__init__` parameters may not be entity references".to_string(),
                ));
            }
        }
        let key = entity.method("__key__").ok_or_else(|| {
            LangError::ty(
                entity.span,
                format!(
                    "entity `{}` must define a `__key__` method used for partitioning",
                    entity.name
                ),
            )
        })?;
        if !key.params.is_empty() {
            return Err(LangError::ty(
                key.span,
                "`__key__` must take no parameters besides `self`".to_string(),
            ));
        }
        let (key_field, key_type) = Self::extract_key_field(entity, key, &fields)?;

        // The key field must never be reassigned outside `__init__`
        // (the paper: "the key of a stateful entity cannot change").
        for method in &entity.methods {
            if method.is_init() {
                continue;
            }
            if Self::assigns_field(&method.body, &key_field) {
                return Err(LangError::ty(
                    method.span,
                    format!(
                        "method `{}` assigns key field `{}`; the key of a stateful entity \
                         cannot change during its lifetime",
                        method.name, key_field
                    ),
                ));
            }
        }

        Ok(EntityTypes {
            fields,
            key_field,
            key_type,
            methods,
        })
    }

    /// `__key__` must be a single `return self.<field>` of a keyable field.
    fn extract_key_field(
        entity: &EntityDef,
        key: &MethodDef,
        fields: &BTreeMap<String, Type>,
    ) -> LangResult<(String, Type)> {
        let ret = match key.body.as_slice() {
            [Stmt::Return {
                value: Some(expr), ..
            }] => expr,
            _ => {
                return Err(LangError::ty(
                    key.span,
                    "`__key__` must consist of a single `return self.<field>` statement"
                        .to_string(),
                ));
            }
        };
        match ret {
            Expr::SelfField(name, span) => {
                let ty = fields.get(name).ok_or_else(|| {
                    LangError::ty(
                        *span,
                        format!(
                            "`__key__` returns undeclared field `{}` of entity `{}`",
                            name, entity.name
                        ),
                    )
                })?;
                if !ty.is_keyable() {
                    return Err(LangError::ty(
                        *span,
                        format!(
                            "key field `{}` has type `{}`; partition keys must be `int` or `str`",
                            name, ty
                        ),
                    ));
                }
                if !key.return_ty.accepts(ty) && key.return_ty != Type::None {
                    return Err(LangError::ty(
                        *span,
                        format!(
                            "`__key__` is annotated `{}` but returns field of type `{}`",
                            key.return_ty, ty
                        ),
                    ));
                }
                Ok((name.clone(), ty.clone()))
            }
            other => Err(LangError::ty(
                other.span(),
                "`__key__` must return a field of the entity (`return self.<field>`)".to_string(),
            )),
        }
    }

    fn assigns_field(body: &[Stmt], field: &str) -> bool {
        body.iter().any(|stmt| match stmt {
            Stmt::Assign { target, .. } | Stmt::AugAssign { target, .. } => {
                matches!(target, Target::SelfField(f) if f == field)
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => Self::assigns_field(then_body, field) || Self::assigns_field(else_body, field),
            Stmt::While { body, .. } | Stmt::For { body, .. } => Self::assigns_field(body, field),
            _ => false,
        })
    }

    fn validate_named_type(module: &Module, ty: &Type, span: Span) -> LangResult<()> {
        match ty {
            Type::Entity(name) => {
                if module.entity(name).is_none() {
                    return Err(LangError::ty(
                        span,
                        format!("unknown type or entity `{name}`"),
                    ));
                }
                Ok(())
            }
            Type::List(inner) => Self::validate_named_type(module, inner, span),
            _ => Ok(()),
        }
    }

    /// Pass 2: check method bodies and record local-variable types.
    fn check_bodies(&mut self, module: &Module) -> LangResult<()> {
        for entity in &module.entities {
            for method in &entity.methods {
                let locals = self.check_method(entity, method)?;
                self.result
                    .entities
                    .get_mut(&entity.name)
                    .expect("entity collected in pass 1")
                    .methods
                    .get_mut(&method.name)
                    .expect("method collected in pass 1")
                    .locals = locals;
            }
        }
        Ok(())
    }

    fn check_method(
        &self,
        entity: &EntityDef,
        method: &MethodDef,
    ) -> LangResult<BTreeMap<String, Type>> {
        let mut ctx = MethodCtx {
            checker: self,
            entity,
            method,
            locals: BTreeMap::new(),
            loop_depth: 0,
        };
        for param in &method.params {
            ctx.locals.insert(param.name.clone(), param.ty.clone());
        }
        ctx.check_block(&method.body)?;
        if method.return_ty != Type::None
            && !method.is_init()
            && !Self::always_returns(&method.body)
        {
            return Err(LangError::ty(
                method.span,
                format!(
                    "method `{}` is annotated to return `{}` but not all paths return a value",
                    method.name, method.return_ty
                ),
            ));
        }
        Ok(ctx.locals)
    }

    /// Conservative "all paths return" analysis.
    fn always_returns(body: &[Stmt]) -> bool {
        body.iter().any(|stmt| match stmt {
            Stmt::Return { .. } => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                !else_body.is_empty()
                    && Self::always_returns(then_body)
                    && Self::always_returns(else_body)
            }
            _ => false,
        })
    }
}

struct MethodCtx<'a> {
    checker: &'a Checker,
    entity: &'a EntityDef,
    method: &'a MethodDef,
    locals: BTreeMap<String, Type>,
    loop_depth: u32,
}

impl MethodCtx<'_> {
    fn entity_types(&self, name: &str) -> Option<&EntityTypes> {
        self.checker.result.entities.get(name)
    }

    fn field_type(&self, name: &str, span: Span) -> LangResult<Type> {
        self.entity_types(&self.entity.name)
            .and_then(|e| e.fields.get(name).cloned())
            .ok_or_else(|| {
                LangError::ty(
                    span,
                    format!(
                        "entity `{}` has no declared field `{}`",
                        self.entity.name, name
                    ),
                )
            })
    }

    fn check_block(&mut self, body: &[Stmt]) -> LangResult<()> {
        for stmt in body {
            self.check_stmt(stmt)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> LangResult<()> {
        match stmt {
            Stmt::Assign {
                target,
                ty,
                value,
                span,
            } => {
                let value_ty = self.check_expr(value)?;
                let declared = ty.clone().unwrap_or_else(|| value_ty.clone());
                if !declared.accepts(&value_ty) {
                    return Err(LangError::ty(
                        *span,
                        format!(
                            "cannot assign value of type `{value_ty}` to `{target}` of type \
                             `{declared}`"
                        ),
                    ));
                }
                self.bind_target(target, declared, *span)
            }
            Stmt::AugAssign {
                target,
                op,
                value,
                span,
            } => {
                let current = self.target_type(target, *span)?;
                let value_ty = self.check_expr(value)?;
                let result = self.binary_result(*op, &current, &value_ty, *span)?;
                if !current.accepts(&result) {
                    return Err(LangError::ty(
                        *span,
                        format!(
                            "augmented assignment changes type of `{target}` from `{current}` \
                             to `{result}`"
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                self.check_expr(expr)?;
                Ok(())
            }
            Stmt::Return { value, span } => {
                let actual = match value {
                    Some(expr) => self.check_expr(expr)?,
                    None => Type::None,
                };
                let expected = &self.method.return_ty;
                if self.method.is_init() || self.method.is_key() {
                    return Ok(());
                }
                if !expected.accepts(&actual) {
                    return Err(LangError::ty(
                        *span,
                        format!(
                            "method `{}` returns `{actual}` but is annotated `{expected}`",
                            self.method.name
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let cond_ty = self.check_expr(cond)?;
                if cond_ty != Type::Bool {
                    return Err(LangError::ty(
                        *span,
                        format!("`if` condition must be `bool`, found `{cond_ty}`"),
                    ));
                }
                self.check_block(then_body)?;
                self.check_block(else_body)
            }
            Stmt::While { cond, body, span } => {
                let cond_ty = self.check_expr(cond)?;
                if cond_ty != Type::Bool {
                    return Err(LangError::ty(
                        *span,
                        format!("`while` condition must be `bool`, found `{cond_ty}`"),
                    ));
                }
                self.loop_depth += 1;
                let res = self.check_block(body);
                self.loop_depth -= 1;
                res
            }
            Stmt::For {
                var,
                iter,
                body,
                span,
            } => {
                let iter_ty = self.check_expr(iter)?;
                let elem_ty = match iter_ty {
                    Type::List(inner) => *inner,
                    other => {
                        return Err(LangError::ty(
                            *span,
                            format!("`for` iterates over lists, found `{other}`"),
                        ));
                    }
                };
                self.bind_local(var.clone(), elem_ty, *span)?;
                self.loop_depth += 1;
                let res = self.check_block(body);
                self.loop_depth -= 1;
                res
            }
            Stmt::Pass { .. } => Ok(()),
            Stmt::Break { span } | Stmt::Continue { span } => {
                if self.loop_depth == 0 {
                    return Err(LangError::ty(
                        *span,
                        "`break`/`continue` outside of a loop".to_string(),
                    ));
                }
                Ok(())
            }
        }
    }

    fn bind_target(&mut self, target: &Target, ty: Type, span: Span) -> LangResult<()> {
        match target {
            Target::Name(name) => self.bind_local(name.clone(), ty, span),
            Target::SelfField(field) => {
                if self.method.is_init() {
                    // `__init__` establishes the fields; they must be declared.
                    let declared = self.field_type(field, span)?;
                    if !declared.accepts(&ty) {
                        return Err(LangError::ty(
                            span,
                            format!(
                                "field `{field}` is declared `{declared}` but `__init__` \
                                 assigns `{ty}`"
                            ),
                        ));
                    }
                    Ok(())
                } else {
                    let declared = self.field_type(field, span)?;
                    if !declared.accepts(&ty) {
                        return Err(LangError::ty(
                            span,
                            format!("cannot assign `{ty}` to field `{field}` of type `{declared}`"),
                        ));
                    }
                    Ok(())
                }
            }
        }
    }

    fn bind_local(&mut self, name: String, ty: Type, span: Span) -> LangResult<()> {
        if let Some(existing) = self.locals.get(&name) {
            if !existing.accepts(&ty) && !ty.accepts(existing) {
                return Err(LangError::ty(
                    span,
                    format!("variable `{name}` was `{existing}` and cannot be re-bound to `{ty}`"),
                ));
            }
            Ok(())
        } else {
            self.locals.insert(name, ty);
            Ok(())
        }
    }

    fn target_type(&self, target: &Target, span: Span) -> LangResult<Type> {
        match target {
            Target::Name(name) => self.locals.get(name).cloned().ok_or_else(|| {
                LangError::ty(span, format!("assignment to undefined variable `{name}`"))
            }),
            Target::SelfField(field) => self.field_type(field, span),
        }
    }

    fn check_expr(&mut self, expr: &Expr) -> LangResult<Type> {
        match expr {
            Expr::Int(_, _) => Ok(Type::Int),
            Expr::Float(_, _) => Ok(Type::Float),
            Expr::Str(_, _) => Ok(Type::Str),
            Expr::Bool(_, _) => Ok(Type::Bool),
            Expr::NoneLit(_) => Ok(Type::None),
            Expr::Name(name, span) => {
                self.locals.get(name).cloned().ok_or_else(|| {
                    LangError::ty(*span, format!("use of undefined variable `{name}`"))
                })
            }
            Expr::SelfField(field, span) => self.field_type(field, *span),
            Expr::Call {
                recv,
                method,
                args,
                span,
            } => self.check_call(recv.as_deref(), method, args, *span),
            Expr::Builtin { name, args, span } => self.check_builtin(name, args, *span),
            Expr::Binary {
                op,
                left,
                right,
                span,
            } => {
                let lt = self.check_expr(left)?;
                let rt = self.check_expr(right)?;
                self.binary_result(*op, &lt, &rt, *span)
            }
            Expr::Compare {
                op,
                left,
                right,
                span,
            } => {
                let lt = self.check_expr(left)?;
                let rt = self.check_expr(right)?;
                let comparable = (lt.is_numeric() && rt.is_numeric())
                    || (lt == rt)
                    || (lt == Type::None || rt == Type::None);
                if !comparable {
                    return Err(LangError::ty(
                        *span,
                        format!("cannot compare `{lt}` with `{rt}` using `{op}`"),
                    ));
                }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                    && !(lt.is_numeric() && rt.is_numeric())
                    && lt != Type::Str
                {
                    return Err(LangError::ty(
                        *span,
                        format!("ordering comparison `{op}` requires numeric or string operands"),
                    ));
                }
                Ok(Type::Bool)
            }
            Expr::Logic {
                left, right, span, ..
            } => {
                let lt = self.check_expr(left)?;
                let rt = self.check_expr(right)?;
                if lt != Type::Bool || rt != Type::Bool {
                    return Err(LangError::ty(
                        *span,
                        format!("`and`/`or` require bool operands, found `{lt}` and `{rt}`"),
                    ));
                }
                Ok(Type::Bool)
            }
            Expr::Unary { op, operand, span } => {
                let ty = self.check_expr(operand)?;
                match op {
                    UnaryOp::Neg if ty.is_numeric() => Ok(ty),
                    UnaryOp::Neg => Err(LangError::ty(
                        *span,
                        format!("unary `-` requires a numeric operand, found `{ty}`"),
                    )),
                    UnaryOp::Not if ty == Type::Bool => Ok(Type::Bool),
                    UnaryOp::Not => Err(LangError::ty(
                        *span,
                        format!("`not` requires a bool operand, found `{ty}`"),
                    )),
                }
            }
            Expr::List(items, span) => {
                let mut elem = None;
                for item in items {
                    let ty = self.check_expr(item)?;
                    match &elem {
                        None => elem = Some(ty),
                        Some(existing) if existing.accepts(&ty) => {}
                        Some(existing) if ty.accepts(existing) => elem = Some(ty),
                        Some(existing) => {
                            return Err(LangError::ty(
                                *span,
                                format!("list mixes element types `{existing}` and `{ty}`"),
                            ));
                        }
                    }
                }
                Ok(Type::List(Box::new(elem.unwrap_or(Type::Int))))
            }
            Expr::Index { obj, index, span } => {
                let obj_ty = self.check_expr(obj)?;
                let idx_ty = self.check_expr(index)?;
                if idx_ty != Type::Int {
                    return Err(LangError::ty(
                        *span,
                        format!("index must be `int`, found `{idx_ty}`"),
                    ));
                }
                match obj_ty {
                    Type::List(inner) => Ok(*inner),
                    Type::Str => Ok(Type::Str),
                    other => Err(LangError::ty(
                        *span,
                        format!("cannot index into value of type `{other}`"),
                    )),
                }
            }
        }
    }

    fn check_call(
        &mut self,
        recv: Option<&str>,
        method: &str,
        args: &[Expr],
        span: Span,
    ) -> LangResult<Type> {
        let (target_entity, label) = match recv {
            None => (self.entity.name.clone(), "self".to_string()),
            Some(var) => {
                let ty = self.locals.get(var).cloned().ok_or_else(|| {
                    LangError::ty(span, format!("use of undefined variable `{var}`"))
                })?;
                match ty {
                    Type::Entity(name) => (name, var.to_string()),
                    other => {
                        return Err(LangError::ty(
                            span,
                            format!(
                                "cannot call method `{method}` on `{var}` of non-entity type \
                                 `{other}`"
                            ),
                        ));
                    }
                }
            }
        };
        let entity = self
            .entity_types(&target_entity)
            .ok_or_else(|| LangError::ty(span, format!("unknown entity `{target_entity}`")))?;
        let sig = entity.methods.get(method).ok_or_else(|| {
            LangError::ty(
                span,
                format!("entity `{target_entity}` has no method `{method}` (called via `{label}`)"),
            )
        })?;
        if method == "__init__" || method == "__key__" {
            return Err(LangError::ty(
                span,
                format!("`{method}` cannot be called explicitly"),
            ));
        }
        if args.len() != sig.params.len() {
            return Err(LangError::ty(
                span,
                format!(
                    "method `{target_entity}.{method}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let return_ty = sig.return_ty.clone();
        let params = sig.params.clone();
        for (arg, (pname, pty)) in args.iter().zip(params.iter()) {
            let arg_ty = self.check_expr(arg)?;
            if !pty.accepts(&arg_ty) {
                return Err(LangError::ty(
                    arg.span(),
                    format!(
                        "argument `{pname}` of `{target_entity}.{method}` expects `{pty}`, \
                         got `{arg_ty}`"
                    ),
                ));
            }
        }
        Ok(return_ty)
    }

    fn check_builtin(&mut self, name: &str, args: &[Expr], span: Span) -> LangResult<Type> {
        let arg_tys: Vec<Type> = args
            .iter()
            .map(|a| self.check_expr(a))
            .collect::<LangResult<_>>()?;
        let err = |msg: String| Err(LangError::ty(span, msg));
        match name {
            "len" => match arg_tys.as_slice() {
                [Type::List(_)] | [Type::Str] => Ok(Type::Int),
                _ => err("`len` expects a single list or str argument".to_string()),
            },
            "range" => match arg_tys.as_slice() {
                [Type::Int] | [Type::Int, Type::Int] => Ok(Type::List(Box::new(Type::Int))),
                _ => err("`range` expects one or two int arguments".to_string()),
            },
            "min" | "max" => match arg_tys.as_slice() {
                [a, b] if a.is_numeric() && b.is_numeric() => {
                    if *a == Type::Float || *b == Type::Float {
                        Ok(Type::Float)
                    } else {
                        Ok(Type::Int)
                    }
                }
                [Type::List(inner)] if inner.is_numeric() => Ok((**inner).clone()),
                _ => err(format!("`{name}` expects two numbers or a numeric list")),
            },
            "abs" => match arg_tys.as_slice() {
                [t] if t.is_numeric() => Ok(t.clone()),
                _ => err("`abs` expects a single numeric argument".to_string()),
            },
            "str" => match arg_tys.as_slice() {
                [_] => Ok(Type::Str),
                _ => err("`str` expects a single argument".to_string()),
            },
            "int" => match arg_tys.as_slice() {
                [Type::Int] | [Type::Float] | [Type::Bool] | [Type::Str] => Ok(Type::Int),
                _ => err("`int` expects a single int/float/bool/str argument".to_string()),
            },
            other => err(format!("unknown builtin `{other}`")),
        }
    }

    fn binary_result(&self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> LangResult<Type> {
        use Type::*;
        let result = match (op, lt, rt) {
            (BinOp::Add, Str, Str) => Some(Str),
            (BinOp::Add, List(a), List(b)) if a == b => Some(List(a.clone())),
            (BinOp::Div, a, b) if a.is_numeric() && b.is_numeric() => Some(Float),
            (BinOp::FloorDiv, Int, Int) => Some(Int),
            (BinOp::Mod, Int, Int) => Some(Int),
            (_, Int, Int) => Some(Int),
            (_, a, b) if a.is_numeric() && b.is_numeric() => Some(Float),
            _ => Option::None,
        };
        result.ok_or_else(|| {
            LangError::ty(
                span,
                format!("operator `{op}` is not defined for `{lt}` and `{rt}`"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::FIGURE1_SOURCE;
    use crate::parser::parse_module;

    fn check(src: &str) -> LangResult<ModuleTypes> {
        check_module(&parse_module(src).unwrap())
    }

    #[test]
    fn figure1_typechecks() {
        let types = check(FIGURE1_SOURCE).unwrap();
        let user = types.entity("User").unwrap();
        assert_eq!(user.key_field, "username");
        assert_eq!(user.key_type, Type::Str);
        let buy = &user.methods["buy_item"];
        assert_eq!(buy.return_ty, Type::Bool);
        assert_eq!(buy.locals["item"], Type::Entity("Item".into()));
        assert_eq!(buy.locals["total_price"], Type::Int);
        assert_eq!(
            buy.entity_locals(),
            vec![("item", "Item")],
            "entity-typed locals drive remote-call detection"
        );
    }

    #[test]
    fn missing_key_method_is_rejected() {
        let src = r#"
entity A:
    x: int

    def __init__(self):
        self.x = 0
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("__key__"));
    }

    #[test]
    fn missing_init_is_rejected() {
        let src = r#"
entity A:
    x: int

    def __key__(self) -> int:
        return self.x
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("__init__"));
    }

    #[test]
    fn key_field_must_be_keyable() {
        let src = r#"
entity A:
    x: float

    def __init__(self):
        self.x = 0.0

    def __key__(self) -> float:
        return self.x
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("partition keys"));
    }

    #[test]
    fn key_field_cannot_change() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def rename(self, new_name: str) -> None:
        self.name = new_name
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("cannot change"));
    }

    #[test]
    fn entity_typed_fields_are_rejected() {
        let src = r#"
entity B:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

entity A:
    name: str
    other: B

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("serializable"));
    }

    #[test]
    fn undefined_variable_use_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self) -> int:
        return y + 1
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("undefined variable"));
    }

    #[test]
    fn wrong_argument_type_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def g(self, n: int) -> int:
        return n

    def f(self) -> int:
        return self.g("hello")
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("expects `int`"));
    }

    #[test]
    fn wrong_return_type_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self) -> int:
        return "nope"
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("annotated"));
    }

    #[test]
    fn non_bool_condition_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self, n: int) -> int:
        if n:
            return 1
        return 0
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("must be `bool`"));
    }

    #[test]
    fn missing_return_on_some_path_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self, n: int) -> int:
        if n > 0:
            return 1
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("not all paths return"));
    }

    #[test]
    fn call_on_non_entity_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self, n: int) -> int:
        return n.g()
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("non-entity"));
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self) -> int:
        break
        return 1
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("outside of a loop"));
    }

    #[test]
    fn builtin_signatures() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self, xs: list[int]) -> int:
        n: int = len(xs) + len(self.name)
        m: int = max(1, n)
        k: int = abs(0 - m)
        s: str = str(k)
        total: int = 0
        for i in range(3):
            total += i
        return total + int(s)
"#;
        let types = check(src).unwrap();
        let f = &types.entity("A").unwrap().methods["f"];
        assert_eq!(f.locals["total"], Type::Int);
        assert_eq!(f.locals["i"], Type::Int);
        assert_eq!(f.locals["s"], Type::Str);
    }

    #[test]
    fn division_produces_float() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def f(self, a: int, b: int) -> float:
        return a / b
"#;
        check(src).unwrap();
    }

    #[test]
    fn duplicate_entities_rejected() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name
"#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("duplicate entity"));
    }
}
