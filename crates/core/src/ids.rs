//! Dense numeric identities for the control plane.
//!
//! PR 1 de-stringed field and local *access*; this module de-strings
//! *dispatch and addressing*. Two id types exist:
//!
//! * [`ClassId`] — the identity of an entity class. Class names are interned
//!   in a process-global, append-only table, so a `ClassId` is a `Copy`able
//!   `u32` that can be compared, hashed, and used as a dense index without
//!   ever touching the underlying string. The name remains recoverable (for
//!   `Display`, error messages, and serialization) via [`ClassId::name`].
//! * [`MethodId`] — the identity of a method *within* its class: dense,
//!   assigned in declaration order at compile time, and used to index the
//!   `Vec`-backed method table of an operator
//!   ([`crate::ir::OperatorSpec::method_by_id`]).
//!
//! Serialization is by *name*, not by number: numeric ids are only stable
//! within one process (the interner assigns them in first-seen order), so
//! anything that crosses a process boundary — IR JSON, binary snapshots —
//! writes the class name and re-interns on the way in. `MethodId`s, by
//! contrast, are dense in declaration order and therefore stable across
//! compiles of the same source; they serialize as plain integers.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The interned identity of an entity class (dataflow operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(u32);

struct ClassInterner {
    names: Vec<&'static str>,
    index: BTreeMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<ClassInterner> {
    static INTERNER: OnceLock<Mutex<ClassInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(ClassInterner {
            names: Vec::new(),
            index: BTreeMap::new(),
        })
    })
}

impl ClassId {
    /// Intern `name`, returning its stable (per-process) id. Interning the
    /// same name twice returns the same id. This takes a global lock and is
    /// meant for the ingress/compile boundary, never the per-hop path.
    pub fn intern(name: &str) -> ClassId {
        let mut table = interner().lock().expect("class interner poisoned");
        if let Some(&id) = table.index.get(name) {
            return ClassId(id);
        }
        // Class names are program identifiers: a small, bounded set per
        // process, so leaking them for `&'static str` access is fine.
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        let id = table.names.len() as u32;
        table.names.push(leaked);
        table.index.insert(leaked, id);
        ClassId(id)
    }

    /// The id of `name` if it was interned before; `None` otherwise.
    /// Unlike [`ClassId::intern`] this never grows the table, so lookups of
    /// unknown entities stay side-effect free.
    pub fn lookup(name: &str) -> Option<ClassId> {
        let table = interner().lock().expect("class interner poisoned");
        table.index.get(name).map(|&id| ClassId(id))
    }

    /// The class name this id was interned from.
    pub fn name(self) -> &'static str {
        let table = interner().lock().expect("class interner poisoned");
        table.names[self.0 as usize]
    }

    /// The raw index (dense per process, usable as a table index).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Serialize for ClassId {
    fn serialize(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for ClassId {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(name) => Ok(ClassId::intern(name)),
            other => Err(DeError::new(format!(
                "expected class name string, found {other:?}"
            ))),
        }
    }
}

/// The identity of a method within its entity class: a dense index assigned
/// in declaration order at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodId(pub u32);

impl MethodId {
    /// The raw index into the owning operator's method table.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as `usize` (for `Vec` indexing).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_distinct() {
        let a = ClassId::intern("__IdsTestAccount");
        let b = ClassId::intern("__IdsTestItem");
        assert_eq!(ClassId::intern("__IdsTestAccount"), a);
        assert_ne!(a, b);
        assert_eq!(a.name(), "__IdsTestAccount");
        assert_eq!(ClassId::lookup("__IdsTestItem"), Some(b));
        assert_eq!(ClassId::lookup("__IdsTestNeverInterned"), None);
    }

    #[test]
    fn class_id_serializes_as_its_name() {
        let id = ClassId::intern("__IdsTestSer");
        let content = id.serialize();
        assert_eq!(content, Content::Str("__IdsTestSer".to_string()));
        assert_eq!(ClassId::deserialize(&content).unwrap(), id);
    }

    #[test]
    fn method_id_roundtrips_as_integer() {
        let id = MethodId(7);
        assert_eq!(MethodId::deserialize(&id.serialize()).unwrap(), id);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "m7");
    }
}
