//! The compiler pipeline facade (Section 2.1 "Approach Overview").
//!
//! `source text → parse → type check → static analysis (pass 1 & 2) →
//! function splitting → dataflow IR`. The pipeline records per-stage timings;
//! the "System overhead" experiment of Section 4 uses them to show that
//! program transformation (function splitting, instrumentation) accounts for
//! well under 1 % of end-to-end request latency.

use crate::analysis::{analyze, AnalyzedProgram};
use crate::error::{CompileError, CompileResult};
use crate::ids::{ClassId, MethodId};
use crate::ir::{DataflowIR, MethodKind};
use crate::local::LocalRuntime;
use crate::verify::Lint;
use entity_lang::ast::Stmt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-stage compile statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Time spent lexing + parsing, in microseconds.
    pub parse_micros: u128,
    /// Time spent type checking, in microseconds.
    pub typecheck_micros: u128,
    /// Time spent on static analysis (field/signature extraction, call graph,
    /// limitation checks), in microseconds.
    pub analysis_micros: u128,
    /// Time spent splitting functions and building the IR, in microseconds.
    pub splitting_micros: u128,
    /// Time spent in the whole-program verifier, in microseconds.
    pub verify_micros: u128,
    /// Total pipeline time, in microseconds.
    pub total_micros: u128,
    /// Number of entity classes.
    pub entities: usize,
    /// Total number of methods.
    pub methods: usize,
    /// Number of methods that required splitting.
    pub composite_methods: usize,
    /// Total number of split blocks in the IR.
    pub blocks: usize,
    /// Total number of remote-call split points.
    pub split_points: usize,
}

/// A fully compiled entity program: analysis results, engine-independent IR,
/// and compile statistics.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The original source text.
    pub source: String,
    /// Static-analysis results (kept for tooling and the oracle interpreter).
    pub analysis: AnalyzedProgram,
    /// The stateful dataflow graph to deploy.
    pub ir: DataflowIR,
    /// Advisory findings from the verifier's lint pass.
    pub lints: Vec<Lint>,
    /// Pipeline timings and counters.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// The IR ready to hand to a runtime.
    pub fn ir(&self) -> &DataflowIR {
        &self.ir
    }

    /// Build an in-process [`LocalRuntime`] for this program (Section 3
    /// "Local"), with the original composite bodies attached so the oracle
    /// execution mode works.
    pub fn local_runtime(&self) -> LocalRuntime {
        // Invariant: `compile()` ran `ensure_verified` before constructing
        // this program, and the flag travels with the clone, so the verifier
        // gate in `LocalRuntime::new` cannot fire here.
        LocalRuntime::new(self.ir.clone())
            .expect("compile() emitted a verified IR")
            .with_original_bodies(self.original_bodies())
    }

    /// Original (unsplit) bodies of composite methods, keyed by
    /// `(ClassId, MethodId)` — the same ids the runtimes dispatch on.
    pub fn original_bodies(&self) -> BTreeMap<(ClassId, MethodId), Vec<Stmt>> {
        let mut out = BTreeMap::new();
        for entity in self.analysis.entities.values() {
            let Some(op) = self.ir.operator(&entity.name) else {
                continue;
            };
            for method in entity.methods.values() {
                if method.has_remote_calls {
                    if let Some(id) = op.method_id(&method.name) {
                        out.insert((op.class, id), method.body.clone());
                    }
                }
            }
        }
        out
    }
}

/// Knobs for [`compile_with`]. `Default` matches `compile()` exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Promote every warn-level lint to a hard [`CompileError::Lint`]. CI
    /// compiles the corpus with this set so advisory findings cannot
    /// accumulate silently; interactive callers leave it off and read the
    /// lints from [`CompiledProgram::lints`] instead.
    pub deny_lints: bool,
}

/// Run the full compiler pipeline on `source` with default options.
pub fn compile(source: &str) -> CompileResult<CompiledProgram> {
    compile_with(source, &CompileOptions::default())
}

/// Run the full compiler pipeline on `source` under explicit [`CompileOptions`].
pub fn compile_with(source: &str, options: &CompileOptions) -> CompileResult<CompiledProgram> {
    let t_start = Instant::now();

    let t = Instant::now();
    let module = entity_lang::parse_module(source)?;
    let parse_micros = t.elapsed().as_micros();

    let t = Instant::now();
    let types = entity_lang::check_module(&module)?;
    let typecheck_micros = t.elapsed().as_micros();

    let t = Instant::now();
    let analysis = analyze(&module, &types)?;
    let analysis_micros = t.elapsed().as_micros();

    let t = Instant::now();
    let mut ir = DataflowIR::from_analysis(&analysis)?;
    let splitting_micros = t.elapsed().as_micros();

    // The trust boundary: no CompiledProgram leaves the pipeline carrying an
    // IR the whole-program verifier has not vouched for. A failure here is a
    // compiler bug, surfaced as a typed error rather than an unsound IR.
    let t = Instant::now();
    let report = ir.ensure_verified()?;
    let verify_micros = t.elapsed().as_micros();

    if options.deny_lints {
        if let Some(lint) = report
            .lints
            .iter()
            .find(|l| l.level >= crate::verify::LintLevel::Warn)
        {
            return Err(CompileError::Lint(lint.clone()));
        }
    }

    let split_points = ir
        .operators
        .iter()
        .flat_map(|o| o.methods.iter())
        .map(|m| match &m.kind {
            MethodKind::Split(s) => s.split_points(),
            MethodKind::Simple { .. } => 0,
        })
        .sum();

    let stats = CompileStats {
        parse_micros,
        typecheck_micros,
        analysis_micros,
        splitting_micros,
        verify_micros,
        total_micros: t_start.elapsed().as_micros(),
        entities: analysis.entities.len(),
        methods: analysis.method_count(),
        composite_methods: analysis.composite_methods().len(),
        blocks: ir.total_blocks(),
        split_points,
    };

    Ok(CompiledProgram {
        source: source.to_string(),
        analysis,
        ir,
        lints: report.lints,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_lang::corpus;

    #[test]
    fn compile_figure1_produces_expected_counts() {
        let program = compile(corpus::FIGURE1_SOURCE).unwrap();
        assert_eq!(program.stats.entities, 2);
        assert_eq!(program.stats.methods, 10);
        assert_eq!(program.stats.composite_methods, 1);
        assert_eq!(program.stats.split_points, 2);
        assert!(program.stats.total_micros > 0);
        assert_eq!(program.original_bodies().len(), 1);
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(compile("entity :\n").is_err());
        let no_key = "entity A:\n    x: int\n\n    def __init__(self):\n        self.x = 0\n";
        assert!(compile(no_key).is_err());
    }

    #[test]
    fn all_corpus_programs_compile() {
        for (name, src) in corpus::all_programs() {
            let program = compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(program.stats.blocks > 0, "{name}");
        }
    }

    #[test]
    fn deny_lints_promotes_warn_findings_to_errors() {
        // A near-miss additive rewrite is a warn-level lint: advisory under
        // default options, a typed hard error under deny_lints.
        let src = r#"
entity C:
    name: str
    n: int

    def __init__(self, name: str):
        self.name = name
        self.n = 0

    def __key__(self) -> str:
        return self.name

    def add(self, k: int) -> int:
        self.n = self.n + k
        return 1
"#;
        let program = compile(src).expect("warn lints stay advisory by default");
        assert!(program
            .lints
            .iter()
            .any(|l| l.method.as_deref() == Some("add")));
        let opts = CompileOptions { deny_lints: true };
        let err = compile_with(src, &opts).expect_err("deny_lints must reject");
        match err {
            CompileError::Lint(l) => {
                assert_eq!(l.method.as_deref(), Some("add"));
                assert!(!l.span.is_synthetic());
            }
            other => panic!("expected CompileError::Lint, got {other}"),
        }
    }

    #[test]
    fn corpus_compiles_clean_under_deny_lints() {
        let opts = CompileOptions { deny_lints: true };
        for (name, src) in corpus::all_programs() {
            compile_with(src, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn stats_are_serializable() {
        let program = compile(corpus::ACCOUNT_SOURCE).unwrap();
        let json = serde_json::to_string(&program.stats).unwrap();
        assert!(json.contains("split_points"));
    }
}
