//! Slot resolution: lowering name-based method bodies to slot-indexed form.
//!
//! After analysis and function splitting, every method body still refers to
//! fields and locals by `String` name. This pass rewrites each body into a
//! parallel representation ([`RStmt`] / [`RExpr`] / [`RBlock`]) in which:
//!
//! * `self.field` accesses become [`RExpr::Field`]`(slot)` against the
//!   entity's [`FieldLayout`];
//! * local variables become [`RExpr::Local`]`(slot)` against the method's
//!   interned [`LocalTable`] (parameters occupy the first slots, in order);
//! * builtin calls are resolved to a [`BuiltinFn`] enum, so the interpreter
//!   never string-matches a builtin name at runtime.
//!
//! The original AST bodies are kept alongside (see [`crate::ir::MethodKind`])
//! for the oracle interpreter, pretty-printing, and the state-machine view;
//! the runtimes execute only the resolved form.

use crate::error::{CompileError, CompileResult};
use crate::ids::{ClassId, MethodId};
use crate::ir::MethodKind;
use crate::layout::{FieldLayout, LocalTable};
use crate::split::{FlatStmt, SplitMethod, Terminator};
use entity_lang::ast::{BinOp, BoolOp, CmpOp, Expr, Stmt, Target, UnaryOp};
use entity_lang::Type;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Compile-time method numbering: for every class, the map from method name
/// to its dense [`MethodId`] (declaration order). Built before any body is
/// resolved, so self-calls and remote calls lower to ids even when the callee
/// has not been compiled yet.
#[derive(Debug, Default)]
pub struct MethodTables {
    classes: BTreeMap<ClassId, BTreeMap<String, MethodId>>,
}

impl MethodTables {
    /// An empty table set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the method numbering of one class.
    pub fn insert_class(&mut self, class: ClassId, methods: BTreeMap<String, MethodId>) {
        self.classes.insert(class, methods);
    }

    /// Look up the id of `method` on `class`.
    pub fn method_id(&self, class: ClassId, method: &str) -> Option<MethodId> {
        self.classes.get(&class)?.get(method).copied()
    }
}

/// A builtin function, resolved at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuiltinFn {
    /// `len(x)`
    Len,
    /// `range(n)` / `range(a, b)`
    Range,
    /// `min(a, b)` / `min(xs)`
    Min,
    /// `max(a, b)` / `max(xs)`
    Max,
    /// `abs(x)`
    Abs,
    /// `str(x)`
    Str,
    /// `int(x)`
    Int,
}

impl BuiltinFn {
    /// Resolve a builtin by source name.
    pub fn from_name(name: &str) -> Option<BuiltinFn> {
        Some(match name {
            "len" => BuiltinFn::Len,
            "range" => BuiltinFn::Range,
            "min" => BuiltinFn::Min,
            "max" => BuiltinFn::Max,
            "abs" => BuiltinFn::Abs,
            "str" => BuiltinFn::Str,
            "int" => BuiltinFn::Int,
            _ => return None,
        })
    }

    /// The source-level name (for error messages).
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinFn::Len => "len",
            BuiltinFn::Range => "range",
            BuiltinFn::Min => "min",
            BuiltinFn::Max => "max",
            BuiltinFn::Abs => "abs",
            BuiltinFn::Str => "str",
            BuiltinFn::Int => "int",
        }
    }
}

/// A slot-resolved assignment target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RTarget {
    /// A method local, by slot.
    Local(u32),
    /// A field of the current entity, by slot.
    Field(u32),
}

/// A slot-resolved expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (shared payload; evaluating it is a refcount bump).
    Str(Arc<str>),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    None,
    /// Local variable read, by slot.
    Local(u32),
    /// `self.field` read, by slot.
    Field(u32),
    /// Inline call of a simple method on the same entity (`self.helper(...)`),
    /// dispatched by id.
    CallSelf {
        /// Callee method id (within the same class).
        method: MethodId,
        /// Argument expressions.
        args: Vec<RExpr>,
    },
    /// Builtin function call.
    Builtin {
        /// Resolved builtin.
        f: BuiltinFn,
        /// Argument expressions.
        args: Vec<RExpr>,
    },
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// Comparison.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// Short-circuiting `and` / `or`.
    Logic {
        /// Connective.
        op: BoolOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<RExpr>,
    },
    /// List literal.
    List(Vec<RExpr>),
    /// Indexing, `xs[i]`.
    Index {
        /// Indexed expression.
        obj: Box<RExpr>,
        /// Index expression.
        index: Box<RExpr>,
    },
}

/// A slot-resolved statement (simple-method bodies and `__init__`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RStmt {
    /// `target = value`.
    Assign {
        /// Target.
        target: RTarget,
        /// Right-hand side.
        value: RExpr,
    },
    /// `target op= value`.
    AugAssign {
        /// Target.
        target: RTarget,
        /// Operator.
        op: BinOp,
        /// Right-hand side.
        value: RExpr,
    },
    /// Expression evaluated for its effects.
    Expr(RExpr),
    /// `return` / `return expr`.
    Return(Option<RExpr>),
    /// `if cond: ... else: ...`.
    If {
        /// Condition.
        cond: RExpr,
        /// True branch.
        then_body: Vec<RStmt>,
        /// False branch.
        else_body: Vec<RStmt>,
    },
    /// `while cond: ...`.
    While {
        /// Condition.
        cond: RExpr,
        /// Body.
        body: Vec<RStmt>,
    },
    /// `for var in iterable: ...`.
    For {
        /// Loop-variable slot.
        var: u32,
        /// Iterable expression.
        iter: RExpr,
        /// Body.
        body: Vec<RStmt>,
    },
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// A slot-resolved straight-line statement inside a split block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RFlatStmt {
    /// `target = expr`.
    Assign {
        /// Target.
        target: RTarget,
        /// Right-hand side.
        expr: RExpr,
    },
    /// `target op= expr`.
    AugAssign {
        /// Target.
        target: RTarget,
        /// Operator.
        op: BinOp,
        /// Right-hand side.
        expr: RExpr,
    },
    /// Expression evaluated for its effects.
    Expr(RExpr),
}

/// How a slot-resolved block ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RTerminator {
    /// Continue with another block.
    Jump(usize),
    /// Conditional continuation.
    Branch {
        /// Condition.
        cond: RExpr,
        /// Block on true.
        then_block: usize,
        /// Block on false.
        else_block: usize,
    },
    /// The method completes.
    Return(Option<RExpr>),
    /// Invoke a remote entity method and suspend. The callee is fully
    /// resolved at compile time: class id (from the receiver's static type)
    /// plus method id within that class — no name travels at runtime.
    RemoteCall {
        /// Slot of the local holding the target entity reference.
        recv_slot: u32,
        /// Statically known class of the receiver.
        target_class: ClassId,
        /// Method id to invoke on the target class.
        method: MethodId,
        /// Argument expressions.
        args: Vec<RExpr>,
        /// Slot receiving the return value on resume.
        result_slot: u32,
        /// Block to resume at.
        resume_block: usize,
        /// Compile-time write-set bit for this call site: the invoked method
        /// (or a `self.*` helper it calls) may write the target entity's
        /// state. `false` means this hop provably only reads its target —
        /// what lets a runtime take per-hop read reservations.
        callee_writes: bool,
        /// Per-argument write mask for this call site: `true` at position
        /// `j` iff the chain rooted at the callee may write the entity
        /// passed as argument `j`. Non-entity arguments are `false`. This
        /// is the per-parameter refinement of `callee_writes` for
        /// forwarded references.
        callee_param_writes: Vec<bool>,
        /// Local slots still live when the continuation resumes (sorted,
        /// `result_slot` excluded — the resume writes it). A frame only
        /// needs to carry these; every other slot is provably dead on all
        /// paths from `resume_block`.
        live_after: Vec<u32>,
    },
}

/// One slot-resolved block of a split method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RBlock {
    /// Straight-line statements.
    pub stmts: Vec<RFlatStmt>,
    /// How the block ends.
    pub terminator: RTerminator,
}

/// The executable form of a method body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RMethodKind {
    /// Runs to completion in one operator invocation.
    Simple {
        /// Resolved body.
        body: Vec<RStmt>,
    },
    /// Runs block by block, suspending at remote calls.
    Split {
        /// Resolved blocks; block 0 is the entry.
        blocks: Vec<RBlock>,
    },
}

/// A method after slot resolution: the interned local table plus the
/// executable body. This is what the interpreter hot path consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedMethod {
    /// Interned locals; parameters occupy slots `0..params.len()`.
    pub locals: LocalTable,
    /// Executable body.
    pub kind: RMethodKind,
}

impl ResolvedMethod {
    /// Number of local slots a frame for this method needs.
    pub fn local_count(&self) -> usize {
        self.locals.len()
    }
}

/// Resolve one compiled method against its entity's field layout, the
/// program-wide method numbering (`tables`), and the write-set analysis
/// (`effects`, stamped onto remote-call sites); `class` is the owning entity.
pub fn resolve_method(
    tables: &MethodTables,
    class: ClassId,
    layout: &FieldLayout,
    params: &[(String, Type)],
    kind: &MethodKind,
    effects: &crate::effects::ProgramEffects,
) -> CompileResult<ResolvedMethod> {
    let mut r = Resolver {
        tables,
        class,
        layout,
        locals: LocalTable::new(),
        effects,
    };
    for (name, _) in params {
        r.locals.intern(name);
    }
    let kind = match kind {
        MethodKind::Simple { body } => RMethodKind::Simple {
            body: r.stmts(body)?,
        },
        MethodKind::Split(split) => {
            let mut blocks = r.split_blocks(split)?;
            compute_live_after(&mut blocks);
            RMethodKind::Split { blocks }
        }
    };
    Ok(ResolvedMethod {
        locals: r.locals,
        kind,
    })
}

struct Resolver<'a> {
    tables: &'a MethodTables,
    class: ClassId,
    layout: &'a FieldLayout,
    locals: LocalTable,
    effects: &'a crate::effects::ProgramEffects,
}

impl Resolver<'_> {
    fn field_slot(&self, name: &str, span: entity_lang::Span) -> CompileResult<u32> {
        self.layout
            .slot_of(name)
            .ok_or_else(|| CompileError::analysis(span, format!("undeclared field `self.{name}`")))
    }

    fn method_id(&self, class: ClassId, method: &str) -> CompileResult<MethodId> {
        self.tables.method_id(class, method).ok_or_else(|| {
            CompileError::analysis(
                entity_lang::Span::synthetic(),
                format!("unknown method `{}.{method}`", class.name()),
            )
        })
    }

    fn target(&mut self, target: &Target, span: entity_lang::Span) -> CompileResult<RTarget> {
        Ok(match target {
            Target::Name(name) => RTarget::Local(self.locals.intern(name)),
            Target::SelfField(field) => RTarget::Field(self.field_slot(field, span)?),
        })
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> CompileResult<Vec<RStmt>> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt) -> CompileResult<RStmt> {
        Ok(match stmt {
            Stmt::Assign {
                target,
                value,
                span,
                ..
            } => RStmt::Assign {
                // Resolve the value first so that reading an as-yet-unbound
                // local on the right-hand side still interns (and therefore
                // reports) the name in source order.
                value: self.expr(value)?,
                target: self.target(target, *span)?,
            },
            Stmt::AugAssign {
                target,
                op,
                value,
                span,
            } => RStmt::AugAssign {
                value: self.expr(value)?,
                target: self.target(target, *span)?,
                op: *op,
            },
            Stmt::ExprStmt { expr, .. } => RStmt::Expr(self.expr(expr)?),
            Stmt::Return { value, .. } => RStmt::Return(match value {
                Some(e) => Some(self.expr(e)?),
                None => None,
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => RStmt::If {
                cond: self.expr(cond)?,
                then_body: self.stmts(then_body)?,
                else_body: self.stmts(else_body)?,
            },
            Stmt::While { cond, body, .. } => RStmt::While {
                cond: self.expr(cond)?,
                body: self.stmts(body)?,
            },
            Stmt::For {
                var, iter, body, ..
            } => RStmt::For {
                iter: self.expr(iter)?,
                var: self.locals.intern(var),
                body: self.stmts(body)?,
            },
            Stmt::Pass { .. } => RStmt::Pass,
            Stmt::Break { .. } => RStmt::Break,
            Stmt::Continue { .. } => RStmt::Continue,
        })
    }

    fn exprs(&mut self, exprs: &[Expr]) -> CompileResult<Vec<RExpr>> {
        exprs.iter().map(|e| self.expr(e)).collect()
    }

    fn expr(&mut self, expr: &Expr) -> CompileResult<RExpr> {
        Ok(match expr {
            Expr::Int(v, _) => RExpr::Int(*v),
            Expr::Float(v, _) => RExpr::Float(*v),
            Expr::Str(s, _) => RExpr::Str(Arc::from(s.as_str())),
            Expr::Bool(b, _) => RExpr::Bool(*b),
            Expr::NoneLit(_) => RExpr::None,
            Expr::Name(name, _) => RExpr::Local(self.locals.intern(name)),
            Expr::SelfField(field, span) => RExpr::Field(self.field_slot(field, *span)?),
            Expr::Call {
                recv: None,
                method,
                args,
                ..
            } => RExpr::CallSelf {
                method: self.method_id(self.class, method)?,
                args: self.exprs(args)?,
            },
            Expr::Call {
                recv: Some(var),
                method,
                span,
                ..
            } => {
                return Err(CompileError::analysis(
                    *span,
                    format!(
                        "internal error: remote call `{var}.{method}()` survived splitting \
                         and cannot be slot-resolved"
                    ),
                ));
            }
            Expr::Builtin { name, args, span } => RExpr::Builtin {
                f: BuiltinFn::from_name(name).ok_or_else(|| {
                    CompileError::analysis(*span, format!("unknown builtin `{name}`"))
                })?,
                args: self.exprs(args)?,
            },
            Expr::Binary {
                op, left, right, ..
            } => RExpr::Binary {
                op: *op,
                left: Box::new(self.expr(left)?),
                right: Box::new(self.expr(right)?),
            },
            Expr::Compare {
                op, left, right, ..
            } => RExpr::Compare {
                op: *op,
                left: Box::new(self.expr(left)?),
                right: Box::new(self.expr(right)?),
            },
            Expr::Logic {
                op, left, right, ..
            } => RExpr::Logic {
                op: *op,
                left: Box::new(self.expr(left)?),
                right: Box::new(self.expr(right)?),
            },
            Expr::Unary { op, operand, .. } => RExpr::Unary {
                op: *op,
                operand: Box::new(self.expr(operand)?),
            },
            Expr::List(items, _) => RExpr::List(self.exprs(items)?),
            Expr::Index { obj, index, .. } => RExpr::Index {
                obj: Box::new(self.expr(obj)?),
                index: Box::new(self.expr(index)?),
            },
        })
    }

    fn flat_stmt(&mut self, stmt: &FlatStmt) -> CompileResult<RFlatStmt> {
        let span = entity_lang::Span::synthetic();
        Ok(match stmt {
            FlatStmt::Assign { target, expr } => RFlatStmt::Assign {
                expr: self.expr(expr)?,
                target: self.target(target, span)?,
            },
            FlatStmt::AugAssign { target, op, expr } => RFlatStmt::AugAssign {
                expr: self.expr(expr)?,
                target: self.target(target, span)?,
                op: *op,
            },
            FlatStmt::Expr { expr } => RFlatStmt::Expr(self.expr(expr)?),
        })
    }

    fn split_blocks(&mut self, split: &SplitMethod) -> CompileResult<Vec<RBlock>> {
        split
            .blocks
            .iter()
            .map(|block| {
                let stmts = block
                    .stmts
                    .iter()
                    .map(|s| self.flat_stmt(s))
                    .collect::<CompileResult<Vec<_>>>()?;
                let terminator = match &block.terminator {
                    Terminator::Jump(next) => RTerminator::Jump(*next),
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    } => RTerminator::Branch {
                        cond: self.expr(cond)?,
                        then_block: *then_block,
                        else_block: *else_block,
                    },
                    Terminator::Return(expr) => RTerminator::Return(match expr {
                        Some(e) => Some(self.expr(e)?),
                        None => None,
                    }),
                    Terminator::RemoteCall {
                        recv_var,
                        target_entity,
                        method,
                        args,
                        result_var,
                        resume_block,
                    } => {
                        let target_class = ClassId::intern(target_entity);
                        let callee = self.effects.of(target_entity, method);
                        RTerminator::RemoteCall {
                            recv_slot: self.locals.intern(recv_var),
                            target_class,
                            method: self.method_id(target_class, method)?,
                            callee_param_writes: (0..args.len())
                                .map(|j| callee.writes_param(j))
                                .collect(),
                            args: self.exprs(args)?,
                            result_slot: self.locals.intern(result_var),
                            resume_block: *resume_block,
                            callee_writes: callee.writes_self,
                            // Filled by the liveness pass once all blocks
                            // of the method exist.
                            live_after: Vec::new(),
                        }
                    }
                };
                Ok(RBlock { stmts, terminator })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Frame liveness at split points
// ---------------------------------------------------------------------------

/// Add every local slot `expr` reads to `out`.
fn expr_local_uses(expr: &RExpr, out: &mut std::collections::BTreeSet<u32>) {
    match expr {
        RExpr::Local(slot) => {
            out.insert(*slot);
        }
        RExpr::Int(_)
        | RExpr::Float(_)
        | RExpr::Str(_)
        | RExpr::Bool(_)
        | RExpr::None
        | RExpr::Field(_) => {}
        RExpr::CallSelf { args, .. } | RExpr::Builtin { args, .. } | RExpr::List(args) => {
            for a in args {
                expr_local_uses(a, out);
            }
        }
        RExpr::Binary { left, right, .. }
        | RExpr::Compare { left, right, .. }
        | RExpr::Logic { left, right, .. } => {
            expr_local_uses(left, out);
            expr_local_uses(right, out);
        }
        RExpr::Unary { operand, .. } => expr_local_uses(operand, out),
        RExpr::Index { obj, index, .. } => {
            expr_local_uses(obj, out);
            expr_local_uses(index, out);
        }
    }
}

/// Backward liveness over a split method's block CFG, then stamp each
/// [`RTerminator::RemoteCall`]'s `live_after` with the slots live on entry
/// to its resume block (minus the result slot, which the resume defines).
///
/// Loops (`Jump`/`Branch` back-edges) make the CFG cyclic, so the transfer
/// runs to a fixpoint; live sets only grow, so the over-approximation is
/// sound: a slot outside `live_after` is never read on any path from the
/// resume point.
fn compute_live_after(blocks: &mut [RBlock]) {
    use std::collections::BTreeSet;
    let n = blocks.len();
    let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        // Reverse order converges fast on the mostly-forward CFG the
        // splitter emits.
        for b in (0..n).rev() {
            // Live-out of the block, from its terminator.
            let mut live: BTreeSet<u32> = match &blocks[b].terminator {
                RTerminator::Jump(next) => live_in[*next].clone(),
                RTerminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let mut s: BTreeSet<u32> = live_in[*then_block]
                        .union(&live_in[*else_block])
                        .copied()
                        .collect();
                    expr_local_uses(cond, &mut s);
                    s
                }
                RTerminator::Return(expr) => {
                    let mut s = BTreeSet::new();
                    if let Some(e) = expr {
                        expr_local_uses(e, &mut s);
                    }
                    s
                }
                RTerminator::RemoteCall {
                    recv_slot,
                    args,
                    result_slot,
                    resume_block,
                    ..
                } => {
                    // Along the resume edge the result slot is freshly
                    // defined, so it is not live *before* the call.
                    let mut s: BTreeSet<u32> = live_in[*resume_block].clone();
                    s.remove(result_slot);
                    s.insert(*recv_slot);
                    for a in args {
                        expr_local_uses(a, &mut s);
                    }
                    s
                }
            };
            // Straight-line statements, backwards.
            for stmt in blocks[b].stmts.iter().rev() {
                match stmt {
                    RFlatStmt::Assign { target, expr } => {
                        if let RTarget::Local(slot) = target {
                            live.remove(slot);
                        }
                        expr_local_uses(expr, &mut live);
                    }
                    RFlatStmt::AugAssign { target, expr, .. } => {
                        // `x op= e` both reads and writes x.
                        if let RTarget::Local(slot) = target {
                            live.insert(*slot);
                        }
                        expr_local_uses(expr, &mut live);
                    }
                    RFlatStmt::Expr(expr) => expr_local_uses(expr, &mut live),
                }
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for block in blocks.iter_mut() {
        if let RTerminator::RemoteCall {
            result_slot,
            resume_block,
            live_after,
            ..
        } = &mut block.terminator
        {
            *live_after = live_in[*resume_block]
                .iter()
                .copied()
                .filter(|slot| slot != result_slot)
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::ir::DataflowIR;
    use entity_lang::{corpus, frontend};

    fn ir_for(src: &str) -> DataflowIR {
        let (module, types) = frontend(src).unwrap();
        DataflowIR::from_analysis(&analyze(&module, &types).unwrap()).unwrap()
    }

    #[test]
    fn params_occupy_leading_slots() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user = ir.operator("User").unwrap();
        let buy = user.method("buy_item").unwrap();
        assert_eq!(buy.resolved.locals.slot_of("amount"), Some(0));
        assert_eq!(buy.resolved.locals.slot_of("item"), Some(1));
        assert!(buy.resolved.local_count() >= 3, "call results interned too");
    }

    #[test]
    fn field_reads_resolve_to_layout_slots() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let item = ir.operator("Item").unwrap();
        let get_price = item.method("get_price").unwrap();
        let body = match &get_price.resolved.kind {
            RMethodKind::Simple { body } => body,
            other => panic!("expected simple, got {other:?}"),
        };
        let price_slot = item.layout.slot_of("price").unwrap();
        assert_eq!(body.len(), 1);
        assert_eq!(body[0], RStmt::Return(Some(RExpr::Field(price_slot))));
    }

    #[test]
    fn split_methods_resolve_remote_call_slots() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user = ir.operator("User").unwrap();
        let buy = user.method("buy_item").unwrap();
        let blocks = match &buy.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        let item_slot = buy.resolved.locals.slot_of("item").unwrap();
        let item = ir.operator("Item").unwrap();
        match &blocks[0].terminator {
            RTerminator::RemoteCall {
                recv_slot,
                target_class,
                method,
                resume_block,
                ..
            } => {
                assert_eq!(*recv_slot, item_slot);
                assert_eq!(*target_class, item.class);
                assert_eq!(*method, item.method_id("get_price").unwrap());
                assert_eq!(*resume_block, 1);
            }
            other => panic!("expected remote call, got {other:?}"),
        }
    }

    #[test]
    fn remote_call_sites_carry_callee_write_bits() {
        // User.buy_item hops Item.get_price (pure read) then
        // Item.update_stock (a writer): the per-site bits must differ.
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user = ir.operator("User").unwrap();
        let buy = user.method("buy_item").unwrap();
        let blocks = match &buy.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        let item = ir.operator("Item").unwrap();
        let mut seen = std::collections::BTreeMap::new();
        for block in blocks {
            if let RTerminator::RemoteCall {
                method,
                callee_writes,
                ..
            } = &block.terminator
            {
                seen.insert(item.method_name(*method).to_string(), *callee_writes);
            }
        }
        assert_eq!(seen.get("get_price"), Some(&false), "get_price only reads");
        assert_eq!(
            seen.get("update_stock"),
            Some(&true),
            "update_stock writes its item"
        );
    }

    #[test]
    fn remote_call_sites_carry_per_argument_masks() {
        // Account.transfer_audited forwards no references as *arguments*
        // (credit takes an int), so every per-arg bit is false even though
        // credit writes its target.
        let ir = ir_for(corpus::ACCOUNT_SOURCE);
        let account = ir.operator("Account").unwrap();
        let audited = account.method("transfer_audited").unwrap();
        let blocks = match &audited.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        for block in blocks {
            if let RTerminator::RemoteCall {
                args,
                callee_param_writes,
                ..
            } = &block.terminator
            {
                assert_eq!(callee_param_writes.len(), args.len());
                assert!(
                    callee_param_writes.iter().all(|w| !w),
                    "scalar arguments are never written"
                );
            }
        }

        // TPC-C payment forwards no refs either, but a synthetic forwarder
        // does: route a writable reference through a middleman.
        let src = r#"
entity Sink:
    name: str
    count: int

    def __init__(self, name: str):
        self.name = name
        self.count = 0

    def __key__(self) -> str:
        return self.name

    def hit(self) -> int:
        self.count += 1
        return self.count

entity Middle:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def forward(self, sink: Sink) -> int:
        v: int = sink.hit()
        return v

entity Front:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def go(self, mid: Middle, sink: Sink) -> int:
        v: int = mid.forward(sink)
        return v
"#;
        let ir = ir_for(src);
        let front = ir.operator("Front").unwrap();
        let go = front.method("go").unwrap();
        let blocks = match &go.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        let call = blocks
            .iter()
            .find_map(|b| match &b.terminator {
                RTerminator::RemoteCall {
                    callee_writes,
                    callee_param_writes,
                    ..
                } => Some((*callee_writes, callee_param_writes.clone())),
                _ => None,
            })
            .expect("go has a remote call");
        assert!(!call.0, "forward itself never writes its own state");
        assert_eq!(
            call.1,
            vec![true],
            "the sink reference forwarded through `forward` is written"
        );
    }

    #[test]
    fn live_after_keeps_only_needed_slots() {
        // Account.transfer suspends at `to.credit(amount)`; the resume body
        // is `self.balance -= amount; return True`, so only `amount`
        // survives the hop — `to`, `enough`, and the result slot do not.
        let ir = ir_for(corpus::ACCOUNT_SOURCE);
        let account = ir.operator("Account").unwrap();
        let transfer = account.method("transfer").unwrap();
        let blocks = match &transfer.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        let locals = &transfer.resolved.locals;
        let amount = locals.slot_of("amount").unwrap();
        let to = locals.slot_of("to").unwrap();
        let (live, result_slot) = blocks
            .iter()
            .find_map(|b| match &b.terminator {
                RTerminator::RemoteCall {
                    live_after,
                    result_slot,
                    ..
                } => Some((live_after.clone(), *result_slot)),
                _ => None,
            })
            .expect("transfer has a remote call");
        assert!(live.contains(&amount), "resume reads `amount`");
        assert!(!live.contains(&to), "`to` is dead after the hop");
        assert!(
            !live.contains(&result_slot),
            "result slot is defined by resume"
        );
    }

    #[test]
    fn live_after_differs_per_call_site() {
        // buy_item: after get_price, `amount` and `item` are still needed
        // (the second hop targets item); after update_stock, only
        // `total_price` is.
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user = ir.operator("User").unwrap();
        let buy = user.method("buy_item").unwrap();
        let blocks = match &buy.resolved.kind {
            RMethodKind::Split { blocks } => blocks,
            other => panic!("expected split, got {other:?}"),
        };
        let item_op = ir.operator("Item").unwrap();
        let locals = &buy.resolved.locals;
        let amount = locals.slot_of("amount").unwrap();
        let item = locals.slot_of("item").unwrap();
        let total_price = locals.slot_of("total_price").unwrap();
        let mut by_name = std::collections::BTreeMap::new();
        for block in blocks {
            if let RTerminator::RemoteCall {
                method, live_after, ..
            } = &block.terminator
            {
                by_name.insert(item_op.method_name(*method).to_string(), live_after.clone());
            }
        }
        let after_price = &by_name["get_price"];
        assert!(after_price.contains(&amount) && after_price.contains(&item));
        let after_stock = &by_name["update_stock"];
        assert!(after_stock.contains(&total_price));
        assert!(
            !after_stock.contains(&item) && !after_stock.contains(&amount),
            "item/amount are dead after the last hop: {after_stock:?}"
        );
    }

    #[test]
    fn builtins_resolve_to_enum() {
        assert_eq!(BuiltinFn::from_name("len"), Some(BuiltinFn::Len));
        assert_eq!(BuiltinFn::from_name("range"), Some(BuiltinFn::Range));
        assert_eq!(BuiltinFn::from_name("nope"), None);
        assert_eq!(BuiltinFn::Range.name(), "range");
    }

    #[test]
    fn every_corpus_program_resolves() {
        for (name, src) in corpus::all_programs() {
            let ir = ir_for(src);
            for op in ir.operators.iter() {
                for method in op.methods.iter() {
                    assert!(
                        method.resolved.local_count() >= method.params.len(),
                        "{name}: {} locals under-interned",
                        method.name
                    );
                }
            }
        }
    }
}
