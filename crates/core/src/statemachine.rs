//! Execution-graph ("state machine") view of split methods (Section 2.5).
//!
//! For every split function the compiler maintains an execution graph that
//! tracks the execution stage of a given invocation. At runtime the graph is
//! carried inside the function-calling event (see [`crate::event`]); this
//! module provides the *static* description used in the IR, documentation
//! dumps, and the overhead experiment.

use crate::split::{SplitMethod, Terminator};
use serde::{Deserialize, Serialize};

/// One state of the execution graph (one split block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDesc {
    /// State id (block id).
    pub id: usize,
    /// Label, e.g. `buy_item_0`.
    pub label: String,
    /// Number of straight-line statements executed in this state.
    pub statements: usize,
    /// Outgoing transitions.
    pub transitions: Vec<Transition>,
}

/// A transition between execution-graph states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Transition {
    /// Unconditional continuation within the same invocation.
    Next {
        /// Target state.
        to: usize,
    },
    /// Conditional continuation.
    Conditional {
        /// State when the condition holds.
        then_to: usize,
        /// State when it does not.
        else_to: usize,
    },
    /// Suspend: invoke a remote entity method, resume at `resume` when the
    /// response event comes back.
    Invoke {
        /// Target entity class.
        entity: String,
        /// Target method.
        method: String,
        /// Resume state.
        resume: usize,
    },
    /// The invocation completes and the return value leaves the operator.
    Terminal,
}

/// The execution graph of one split method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachine {
    /// Owning entity.
    pub entity: String,
    /// Method name.
    pub method: String,
    /// States, indexed by id.
    pub states: Vec<StateDesc>,
}

impl StateMachine {
    /// Build the execution graph from a split method.
    pub fn from_split(split: &SplitMethod) -> Self {
        let states = split
            .blocks
            .iter()
            .map(|block| {
                let transitions = match &block.terminator {
                    Terminator::Jump(to) => vec![Transition::Next { to: *to }],
                    Terminator::Branch {
                        then_block,
                        else_block,
                        ..
                    } => vec![Transition::Conditional {
                        then_to: *then_block,
                        else_to: *else_block,
                    }],
                    Terminator::Return(_) => vec![Transition::Terminal],
                    Terminator::RemoteCall {
                        target_entity,
                        method,
                        resume_block,
                        ..
                    } => vec![Transition::Invoke {
                        entity: target_entity.clone(),
                        method: method.clone(),
                        resume: *resume_block,
                    }],
                };
                StateDesc {
                    id: block.id,
                    label: block.label.clone(),
                    statements: block.stmts.len(),
                    transitions,
                }
            })
            .collect();
        StateMachine {
            entity: split.entity.clone(),
            method: split.method.clone(),
            states,
        }
    }

    /// Number of suspend states (remote invocations).
    pub fn invoke_states(&self) -> usize {
        self.states
            .iter()
            .filter(|s| {
                s.transitions
                    .iter()
                    .any(|t| matches!(t, Transition::Invoke { .. }))
            })
            .count()
    }

    /// True if the graph contains a back edge (a loop).
    pub fn has_loop(&self) -> bool {
        self.states.iter().any(|s| {
            s.transitions.iter().any(|t| match t {
                Transition::Next { to } => *to <= s.id,
                Transition::Conditional { then_to, else_to } => {
                    *then_to <= s.id || *else_to <= s.id
                }
                Transition::Invoke { resume, .. } => *resume <= s.id,
                Transition::Terminal => false,
            })
        })
    }

    /// Render as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}_{}\" {{\n", self.entity, self.method);
        for state in &self.states {
            for t in &state.transitions {
                match t {
                    Transition::Next { to } => {
                        out.push_str(&format!("  {} -> {};\n", state.id, to));
                    }
                    Transition::Conditional { then_to, else_to } => {
                        out.push_str(&format!(
                            "  {} -> {} [label=\"true\"];\n  {} -> {} [label=\"false\"];\n",
                            state.id, then_to, state.id, else_to
                        ));
                    }
                    Transition::Invoke {
                        entity,
                        method,
                        resume,
                    } => {
                        out.push_str(&format!(
                            "  {} -> {} [label=\"{}.{}\" style=dashed];\n",
                            state.id, resume, entity, method
                        ));
                    }
                    Transition::Terminal => {
                        out.push_str(&format!("  {} [shape=doublecircle];\n", state.id));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::split::split_method_of;
    use entity_lang::{corpus, frontend};

    fn machine(src: &str, entity: &str, method: &str) -> StateMachine {
        let (module, types) = frontend(src).unwrap();
        let program = analyze(&module, &types).unwrap();
        let m = program
            .entity(entity)
            .unwrap()
            .method(method)
            .unwrap()
            .clone();
        StateMachine::from_split(&split_method_of(&program, entity, &m).unwrap())
    }

    #[test]
    fn buy_item_machine_has_two_invoke_states_and_no_loop() {
        let sm = machine(corpus::FIGURE1_SOURCE, "User", "buy_item");
        assert_eq!(sm.invoke_states(), 2);
        assert!(!sm.has_loop());
        assert_eq!(
            sm.states.len(),
            sm.states.iter().map(|s| s.id).max().unwrap() + 1
        );
    }

    #[test]
    fn checkout_total_machine_has_loop() {
        let sm = machine(corpus::CART_SOURCE, "Cart", "checkout_total");
        assert!(sm.has_loop());
        assert_eq!(sm.invoke_states(), 1);
    }

    #[test]
    fn dot_render_mentions_remote_target() {
        let sm = machine(corpus::FIGURE1_SOURCE, "User", "buy_item");
        let dot = sm.to_dot();
        assert!(dot.contains("Item.get_price"));
        assert!(dot.contains("doublecircle"));
    }
}
