//! Runtime event model shared by all execution engines.
//!
//! In the paper, an invocation of a split function carries its *state machine*
//! (execution graph) inside the event; as the event flows through the system
//! the graph is traversed and intermediate results are stored in it
//! (Section 2.5). [`CallStack`] is exactly that carried structure: a stack of
//! suspended [`Frame`]s, one per composite method waiting for a remote call to
//! return.
//!
//! Everything here is **id-addressed** (PR 2): a [`MethodCall`] names its
//! callee by [`crate::ids::MethodId`] and its target by the
//! `ClassId`-based [`EntityAddr`], and a [`Frame`] records the suspended
//! method the same way. Ingress boundaries
//! ([`crate::ir::DataflowIR::resolve_call`]) translate client-facing names
//! into these ids exactly once; no event ever carries, clones, or compares a
//! method or class name while flowing through a runtime.

use crate::ids::MethodId;
use crate::value::{EntityAddr, EntityState, Locals, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a root invocation (assigned at the ingress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// A method invocation request: which entity instance, which method (by its
/// dense per-class [`MethodId`]), with which (already evaluated) arguments.
///
/// Method *names* never travel in events: ingress boundaries resolve them
/// once (see [`crate::ir::DataflowIR::resolve_call`]) and every subsequent
/// hop dispatches by `u32` index into the operator's method table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodCall {
    /// Target entity instance.
    pub target: EntityAddr,
    /// Method id within the target's class.
    pub method: MethodId,
    /// Evaluated arguments.
    pub args: Vec<Value>,
}

impl MethodCall {
    /// Create a call from already-resolved ids.
    pub fn new(target: EntityAddr, method: MethodId, args: Vec<Value>) -> Self {
        MethodCall {
            target,
            method,
            args,
        }
    }
}

impl fmt::Display for MethodCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}(..{} args)",
            self.target,
            self.method,
            self.args.len()
        )
    }
}

/// One suspended invocation of a split method: where it lives, which block to
/// resume, which variable receives the remote call's result, and the values of
/// all local variables at the suspension point (the "intermediate results"
/// stored in the execution graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Operator + key where the suspended method runs.
    pub addr: EntityAddr,
    /// Suspended method id (within `addr`'s class).
    pub method: MethodId,
    /// Block to resume at.
    pub resume_block: usize,
    /// Local slot that receives the remote call's return value.
    pub result_slot: u32,
    /// Saved local variables (dense slot vector; see
    /// [`crate::layout::LocalTable`] for the slot→name mapping).
    pub locals: Locals,
}

/// The execution graph carried inside events: a stack of suspended frames.
/// The bottom frame is the root invocation; the top frame is the most nested
/// pending caller.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallStack {
    /// Suspended frames, bottom first.
    pub frames: Vec<Frame>,
}

impl CallStack {
    /// An empty stack (a root invocation with no pending callers).
    pub fn root() -> Self {
        CallStack { frames: Vec::new() }
    }

    /// Push a newly suspended frame.
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Pop the most recently suspended frame.
    pub fn pop(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// Number of pending frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if no caller is waiting (the next return goes to the client).
    pub fn is_root(&self) -> bool {
        self.frames.is_empty()
    }

    /// Approximate serialized size (bytes) — reported by the overhead bench.
    /// A frame header is fixed-width now that methods travel as ids.
    pub fn approx_size(&self) -> usize {
        self.frames
            .iter()
            .map(|f| 32 + f.locals.approx_size())
            .sum()
    }
}

/// Payload of an event routed through the dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Create a new entity instance with an already materialised state.
    Create {
        /// Where the new instance lives.
        addr: EntityAddr,
        /// Its initial state (produced by running `__init__`).
        state: EntityState,
    },
    /// Invoke a method (root call from a client or function-to-function call).
    Invoke {
        /// The call to perform.
        call: MethodCall,
        /// Pending callers waiting for this call's result.
        stack: CallStack,
    },
    /// A remote call returned; resume the top frame of `stack` with `value`.
    Resume {
        /// Return value of the completed call.
        value: Value,
        /// Pending callers; the top frame is the one to resume.
        stack: CallStack,
    },
    /// Final response delivered to the external client through the egress.
    Response {
        /// The root call's return value.
        value: Value,
    },
}

/// An event flowing through a dataflow runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Root invocation this event belongs to.
    pub call_id: CallId,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Create an event.
    pub fn new(call_id: CallId, kind: EventKind) -> Self {
        Event { call_id, kind }
    }

    /// The entity address this event must be routed to, if any
    /// (`Response` events route to the egress instead).
    pub fn routing_addr(&self) -> Option<&EntityAddr> {
        match &self.kind {
            EventKind::Create { addr, .. } => Some(addr),
            EventKind::Invoke { call, .. } => Some(&call.target),
            EventKind::Resume { stack, .. } => stack.frames.last().map(|f| &f.addr),
            EventKind::Response { .. } => None,
        }
    }

    /// True if this event terminates a root invocation.
    pub fn is_response(&self) -> bool {
        matches!(self.kind, EventKind::Response { .. })
    }
}

/// What an operator asks the runtime to do after executing as far as it can.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// The method finished with this return value.
    Return(Value),
    /// The method suspended: issue `call` and resume `frame` with its result.
    Call {
        /// The remote invocation to issue.
        call: MethodCall,
        /// The suspended caller frame to push onto the stack.
        frame: Frame,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Key;

    fn addr(e: &str, k: &str) -> EntityAddr {
        EntityAddr::new(e, Key::Str(k.into()))
    }

    #[test]
    fn stack_push_pop_depth() {
        let mut stack = CallStack::root();
        assert!(stack.is_root());
        stack.push(Frame {
            addr: addr("User", "alice"),
            method: MethodId(2),
            resume_block: 1,
            result_slot: 0,
            locals: Locals::default(),
        });
        assert_eq!(stack.depth(), 1);
        assert!(!stack.is_root());
        let frame = stack.pop().unwrap();
        assert_eq!(frame.resume_block, 1);
        assert!(stack.is_root());
    }

    #[test]
    fn routing_addr_per_event_kind() {
        let invoke = Event::new(
            CallId(1),
            EventKind::Invoke {
                call: MethodCall::new(addr("Item", "apple"), MethodId(0), vec![]),
                stack: CallStack::root(),
            },
        );
        assert_eq!(invoke.routing_addr().unwrap().entity_name(), "Item");

        let mut stack = CallStack::root();
        stack.push(Frame {
            addr: addr("User", "alice"),
            method: MethodId(2),
            resume_block: 1,
            result_slot: 0,
            locals: Locals::default(),
        });
        let resume = Event::new(
            CallId(1),
            EventKind::Resume {
                value: Value::Int(5),
                stack,
            },
        );
        assert_eq!(resume.routing_addr().unwrap().entity_name(), "User");

        let response = Event::new(CallId(1), EventKind::Response { value: Value::None });
        assert!(response.routing_addr().is_none());
        assert!(response.is_response());
    }

    #[test]
    fn stack_size_grows_with_locals() {
        let mut small = CallStack::root();
        small.push(Frame {
            addr: addr("A", "k"),
            method: MethodId(0),
            resume_block: 0,
            result_slot: 0,
            locals: Locals::default(),
        });
        let mut big = small.clone();
        big.frames[0]
            .locals
            .set(0, Value::Str("x".repeat(1000).into()));
        assert!(big.approx_size() > small.approx_size() + 900);
    }
}
