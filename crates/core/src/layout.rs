//! Compile-time name→slot resolution tables.
//!
//! The paper's prototype keeps entity state as a Python object dictionary;
//! the seed reproduction mirrored that with a `BTreeMap<String, Value>` and
//! paid a string-keyed tree lookup (plus `String` clones on writes) for every
//! field and local access. This module introduces the dense layouts that let
//! the interpreter index by `u32` slot instead:
//!
//! * [`FieldLayout`] — one per entity class: the declared fields in
//!   declaration order, each assigned a stable slot. Shared by every instance
//!   of the class via `Arc`, so per-entity state is just a `Vec<Value>`.
//! * [`LocalTable`] — one per compiled method: every local name the method can
//!   touch (parameters, assigned variables, loop variables, and the synthetic
//!   variables introduced by function splitting), interned during compilation.
//!
//! Both tables keep the original names, so error messages, debug views, and
//! snapshots remain human-readable; only the hot path switches to slots.

use entity_lang::Type;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The fixed field layout of one entity class: `slot → (name, type)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FieldLayout {
    fields: Vec<(String, Type)>,
    index: BTreeMap<String, u32>,
}

impl FieldLayout {
    /// Build a layout from fields in declaration order.
    pub fn new(fields: Vec<(String, Type)>) -> Self {
        let index = fields
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), i as u32))
            .collect();
        FieldLayout { fields, index }
    }

    /// An empty layout (ad-hoc states built by tests grow it via [`push`]).
    ///
    /// [`push`]: FieldLayout::push
    pub fn empty() -> Self {
        Self::default()
    }

    /// The slot of a field, if declared.
    pub fn slot_of(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name stored at `slot`.
    pub fn name_of(&self, slot: u32) -> &str {
        &self.fields[slot as usize].0
    }

    /// The declared type stored at `slot`.
    pub fn type_of(&self, slot: u32) -> &Type {
        &self.fields[slot as usize].1
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the layout has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate fields in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Type)> {
        self.fields.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Append a field (used when tests build ad-hoc states); returns its slot.
    pub fn push(&mut self, name: String, ty: Type) -> u32 {
        let slot = self.fields.len() as u32;
        self.index.insert(name.clone(), slot);
        self.fields.push((name, ty));
        slot
    }
}

/// The interned local-variable table of one compiled method: `slot → name`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl LocalTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slot of `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(slot) = self.index.get(name) {
            return *slot;
        }
        let slot = self.names.len() as u32;
        self.index.insert(name.to_string(), slot);
        self.names.push(name.to_string());
        slot
    }

    /// Slot of `name`, if interned.
    pub fn slot_of(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name interned at `slot`.
    pub fn name_of(&self, slot: u32) -> &str {
        &self.names[slot as usize]
    }

    /// Number of interned locals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no locals are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_layout_assigns_declaration_order_slots() {
        let layout = FieldLayout::new(vec![
            ("item_id".into(), Type::Str),
            ("stock".into(), Type::Int),
            ("price".into(), Type::Int),
        ]);
        assert_eq!(layout.slot_of("item_id"), Some(0));
        assert_eq!(layout.slot_of("price"), Some(2));
        assert_eq!(layout.slot_of("nope"), None);
        assert_eq!(layout.name_of(1), "stock");
        assert_eq!(layout.type_of(1), &Type::Int);
        assert_eq!(layout.len(), 3);
    }

    #[test]
    fn field_layout_push_grows() {
        let mut layout = FieldLayout::empty();
        assert!(layout.is_empty());
        assert_eq!(layout.push("a".into(), Type::Int), 0);
        assert_eq!(layout.push("b".into(), Type::Str), 1);
        assert_eq!(layout.slot_of("b"), Some(1));
    }

    #[test]
    fn local_table_interns_stably() {
        let mut table = LocalTable::new();
        let a = table.intern("amount");
        let b = table.intern("item");
        assert_eq!(table.intern("amount"), a);
        assert_ne!(a, b);
        assert_eq!(table.name_of(a), "amount");
        assert_eq!(table.slot_of("item"), Some(b));
        assert_eq!(table.len(), 2);
    }
}
