//! Interpreter for compiled entity methods.
//!
//! The paper's prototype reconstructs the Python object from operator state
//! and executes the method body; we do the equivalent by interpreting the
//! compiled method over the [`Value`] model against the entity's
//! [`EntityState`]. Two execution paths exist:
//!
//! * [`exec_simple`] — runs a *simple* method (no remote calls) to completion
//!   in a single operator invocation;
//! * [`start`] / [`resume`] — run a *split* method block by block, returning
//!   [`StepOutcome::Call`] whenever execution reaches a remote-call split
//!   point so the runtime can ship an `Invoke` event through the dataflow.
//!
//! The hot path interprets the **slot-resolved** form produced by
//! [`crate::resolve`]: entity fields and method locals are dense `u32` slots
//! into `Vec<Value>` storage ([`EntityState`] / [`Locals`]), so no field or
//! local access performs a string comparison or clones a `String` key. Names
//! survive only in the compile-time tables ([`crate::layout`]) and are
//! consulted exclusively on error paths.
//!
//! A second, name-based AST interpreter for flat statements is kept at the
//! bottom of this module as the semantic *oracle* used by
//! [`crate::local::LocalRuntime::call_direct`] equivalence tests — it is the
//! pre-slot-resolution execution semantics, retained on purpose.

use crate::error::{RuntimeError, RuntimeResult};
use crate::event::{Frame, MethodCall, StepOutcome};
use crate::ids::MethodId;
use crate::ir::{CompiledMethod, DataflowIR, MethodKind, OperatorSpec};
use crate::resolve::{
    BuiltinFn, RBlock, RExpr, RFlatStmt, RMethodKind, RStmt, RTarget, RTerminator, ResolvedMethod,
};
use crate::split::FlatStmt;
use crate::value::{EntityAddr, EntityState, Key, Locals, Value};
use entity_lang::ast::{Expr, Stmt, Target};
use std::collections::BTreeMap;

/// Upper bound on interpreted steps per invocation; guards against `while`
/// loops that never terminate.
const MAX_STEPS: usize = 1_000_000;

/// Execution options for the split-method paths ([`start_opts`] /
/// [`resume_opts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOpts {
    /// Drop dead local slots from a frame when suspending at a remote call,
    /// per the compile-time liveness at each split point
    /// ([`RTerminator::RemoteCall::live_after`]). Shrinks the cross-shard
    /// continuation payload; off = ship every slot (the pre-liveness
    /// behavior, kept as an ablation).
    pub prune_dead_locals: bool,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            prune_dead_locals: true,
        }
    }
}

/// Control-flow signal produced while interpreting statement lists.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// Instantiate an entity: pre-initialise fields with type defaults, run
/// `__init__` with `args`, and extract the partition key.
pub fn instantiate(
    ir: &DataflowIR,
    entity: &str,
    args: &[Value],
) -> RuntimeResult<(Key, EntityState)> {
    let op = operator(ir, entity)?;
    let init = op
        .method("__init__")
        .ok_or_else(|| RuntimeError::new(format!("entity `{entity}` has no __init__")))?;
    let body = match &init.resolved.kind {
        RMethodKind::Simple { body } => body,
        RMethodKind::Split { .. } => {
            return Err(RuntimeError::new("__init__ cannot be a split method"));
        }
    };
    let mut state = EntityState::with_layout(op.layout.clone());
    let mut locals = bind_params(init, args)?;
    let mut steps = 0usize;
    exec_rstmts(
        ir,
        op,
        &mut state,
        &mut locals,
        &init.resolved,
        body,
        &mut steps,
    )?;
    let key = state.slot(op.key_slot).as_key().map_err(|_| {
        RuntimeError::new(format!(
            "__init__ of `{entity}` did not assign a keyable value to key field `{}`",
            op.key_field
        ))
    })?;
    Ok((key, state))
}

/// Execute a simple (non-split) method to completion, resolving `method` by
/// name first (ingress/test shim; the hot path uses [`exec_simple_id`]).
pub fn exec_simple(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    method: &str,
    args: &[Value],
) -> RuntimeResult<Value> {
    let id = op
        .method_id(method)
        .ok_or_else(|| RuntimeError::new(format!("`{}` has no method `{method}`", op.entity)))?;
    exec_simple_id(ir, op, state, id, args)
}

/// Execute a simple (non-split) method to completion, dispatching by id.
pub fn exec_simple_id(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    method: MethodId,
    args: &[Value],
) -> RuntimeResult<Value> {
    let compiled = op
        .method_by_id(method)
        .ok_or_else(|| RuntimeError::new(format!("`{}` has no method {method}", op.entity)))?;
    let body = match &compiled.resolved.kind {
        RMethodKind::Simple { body } => body,
        RMethodKind::Split { .. } => {
            return Err(RuntimeError::new(format!(
                "method `{}` performs remote calls and cannot run as a simple method",
                compiled.name
            )));
        }
    };
    let mut locals = bind_params(compiled, args)?;
    let mut steps = 0usize;
    match exec_rstmts(
        ir,
        op,
        state,
        &mut locals,
        &compiled.resolved,
        body,
        &mut steps,
    )? {
        Flow::Return(v) => Ok(v),
        _ => Ok(Value::None),
    }
}

/// Begin executing a method on an entity instance. Simple methods run to
/// completion; split methods run until the first remote call or return.
/// Dispatch is fully id-based: `addr.class` routes to the operator and
/// `method` indexes its method table.
pub fn start(
    ir: &DataflowIR,
    addr: &EntityAddr,
    state: &mut EntityState,
    method: MethodId,
    args: &[Value],
) -> RuntimeResult<StepOutcome> {
    start_opts(ir, addr, state, method, args, ExecOpts::default())
}

/// [`start`] with explicit execution options (liveness-pruning ablation).
pub fn start_opts(
    ir: &DataflowIR,
    addr: &EntityAddr,
    state: &mut EntityState,
    method: MethodId,
    args: &[Value],
    opts: ExecOpts,
) -> RuntimeResult<StepOutcome> {
    let op = operator_by_id(ir, addr)?;
    let compiled = op
        .method_by_id(method)
        .ok_or_else(|| RuntimeError::new(format!("`{}` has no method {method}", op.entity)))?;
    match &compiled.resolved.kind {
        RMethodKind::Simple { .. } => {
            let value = exec_simple_id(ir, op, state, method, args)?;
            Ok(StepOutcome::Return(value))
        }
        RMethodKind::Split { blocks } => {
            let locals = bind_params(compiled, args)?;
            run_blocks(ir, op, addr, state, compiled, blocks, locals, 0, opts)
        }
    }
}

/// Resume a suspended split-method frame with the remote call's return value.
pub fn resume(
    ir: &DataflowIR,
    addr: &EntityAddr,
    state: &mut EntityState,
    frame: Frame,
    value: Value,
) -> RuntimeResult<StepOutcome> {
    resume_opts(ir, addr, state, frame, value, ExecOpts::default())
}

/// [`resume`] with explicit execution options (liveness-pruning ablation).
pub fn resume_opts(
    ir: &DataflowIR,
    addr: &EntityAddr,
    state: &mut EntityState,
    frame: Frame,
    value: Value,
    opts: ExecOpts,
) -> RuntimeResult<StepOutcome> {
    let op = operator_by_id(ir, addr)?;
    let compiled = op.method_by_id(frame.method).ok_or_else(|| {
        RuntimeError::new(format!("`{}` has no method {}", op.entity, frame.method))
    })?;
    // Frames are created only at RemoteCall suspension points, which occur
    // exclusively inside split methods (verify[kind-agreement] pins each
    // method's resolved kind); a simple-method frame is a caller protocol
    // violation, not a state a gated IR can produce.
    let blocks = match &compiled.resolved.kind {
        RMethodKind::Split { blocks } => blocks,
        RMethodKind::Simple { .. } => {
            debug_assert!(false, "resume on simple method `{}`", compiled.name);
            return Err(RuntimeError::new(format!(
                "cannot resume simple method `{}`",
                compiled.name
            )));
        }
    };
    let mut locals = frame.locals;
    locals.ensure_len(compiled.resolved.local_count());
    locals.set(frame.result_slot, value);
    run_blocks(
        ir,
        op,
        addr,
        state,
        compiled,
        blocks,
        locals,
        frame.resume_block,
        opts,
    )
}

fn operator<'a>(ir: &'a DataflowIR, entity: &str) -> RuntimeResult<&'a OperatorSpec> {
    ir.operator(entity)
        .ok_or_else(|| RuntimeError::new(format!("unknown entity/operator `{entity}`")))
}

#[inline]
fn operator_by_id<'a>(ir: &'a DataflowIR, addr: &EntityAddr) -> RuntimeResult<&'a OperatorSpec> {
    ir.operator_by_id(addr.class).ok_or_else(|| {
        RuntimeError::new(format!("unknown entity/operator `{}`", addr.entity_name()))
    })
}

fn bind_params(compiled: &CompiledMethod, args: &[Value]) -> RuntimeResult<Locals> {
    if compiled.params.len() != args.len() {
        return Err(RuntimeError::new(format!(
            "method `{}` expects {} argument(s), got {}",
            compiled.name,
            compiled.params.len(),
            args.len()
        )));
    }
    // Parameters occupy the leading local slots, in declaration order.
    Ok(Locals::from_args(compiled.resolved.local_count(), args))
}

/// Run split blocks starting at `block_id` until the method returns or
/// suspends at a remote call.
#[allow(clippy::too_many_arguments)]
fn run_blocks(
    ir: &DataflowIR,
    op: &OperatorSpec,
    addr: &EntityAddr,
    state: &mut EntityState,
    compiled: &CompiledMethod,
    blocks: &[RBlock],
    mut locals: Locals,
    mut block_id: usize,
    opts: ExecOpts,
) -> RuntimeResult<StepOutcome> {
    let rm = &compiled.resolved;
    let mut steps = 0usize;
    loop {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(RuntimeError::new(format!(
                "method `{}` exceeded {MAX_STEPS} blocks; possible infinite loop",
                compiled.name
            )));
        }
        // verify[block-target] proved every Jump/Branch/resume target of this
        // method in-bounds, and verify[kind-agreement] that split methods have
        // at least one block, so entry block 0 and every successor reached
        // here exist; frames carry only resume targets lifted from those
        // verified terminators. The old per-iteration `.get()` + error
        // formatting is provably dead on a gated IR.
        debug_assert!(
            block_id < blocks.len(),
            "block id {block_id} out of range in `{}` (verify[block-target] violated)",
            compiled.name
        );
        let block = &blocks[block_id];
        for stmt in &block.stmts {
            exec_rflat_stmt(ir, op, state, &mut locals, rm, stmt, &mut steps)?;
        }
        match &block.terminator {
            RTerminator::Jump(next) => block_id = *next,
            RTerminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                let c = eval_rexpr(ir, op, state, &mut locals, rm, cond, &mut steps)?.as_bool()?;
                block_id = if c { *then_block } else { *else_block };
            }
            RTerminator::Return(expr) => {
                let value = match expr {
                    Some(e) => eval_rexpr(ir, op, state, &mut locals, rm, e, &mut steps)?,
                    None => Value::None,
                };
                return Ok(StepOutcome::Return(value));
            }
            RTerminator::RemoteCall {
                recv_slot,
                target_class,
                method,
                args,
                result_slot,
                resume_block,
                live_after,
                ..
            } => {
                let target = locals
                    .get(*recv_slot)
                    .ok_or_else(|| {
                        RuntimeError::new(format!(
                            "undefined entity reference `{}`",
                            rm.locals.name_of(*recv_slot)
                        ))
                    })?
                    .as_entity_ref()?
                    .clone();
                // The method id was resolved against the receiver's *static*
                // class; a reference of another class (possible only with
                // hand-built values) would mis-index its method table.
                if target.class != *target_class {
                    return Err(RuntimeError::new(format!(
                        "remote call expects an entity of class `{}`, \
                         but the reference points to `{}`",
                        target_class.name(),
                        target.entity_name()
                    )));
                }
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(eval_rexpr(ir, op, state, &mut locals, rm, arg, &mut steps)?);
                }
                if opts.prune_dead_locals {
                    // Ship only the slots some resume path still reads; a
                    // wrongly dropped slot fails loudly as an undefined
                    // variable on resume.
                    locals.retain_slots(live_after);
                }
                let frame = Frame {
                    addr: addr.clone(),
                    method: compiled.id,
                    resume_block: *resume_block,
                    result_slot: *result_slot,
                    locals,
                };
                return Ok(StepOutcome::Call {
                    call: MethodCall::new(target, *method, arg_values),
                    frame,
                });
            }
        }
    }
}

fn exec_rflat_stmt(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut Locals,
    rm: &ResolvedMethod,
    stmt: &RFlatStmt,
    steps: &mut usize,
) -> RuntimeResult<()> {
    match stmt {
        RFlatStmt::Assign { target, expr } => {
            let value = eval_rexpr(ir, op, state, locals, rm, expr, steps)?;
            assign(state, locals, *target, value);
            Ok(())
        }
        RFlatStmt::AugAssign {
            target,
            op: bin,
            expr,
        } => {
            let rhs = eval_rexpr(ir, op, state, locals, rm, expr, steps)?;
            let current = read_target(state, locals, rm, *target)?;
            let value = Value::binary(*bin, &current, &rhs)?;
            assign(state, locals, *target, value);
            Ok(())
        }
        RFlatStmt::Expr(expr) => {
            eval_rexpr(ir, op, state, locals, rm, expr, steps)?;
            Ok(())
        }
    }
}

/// Interpret a resolved statement list — used for simple methods and
/// `__init__`.
fn exec_rstmts(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut Locals,
    rm: &ResolvedMethod,
    stmts: &[RStmt],
    steps: &mut usize,
) -> RuntimeResult<Flow> {
    for stmt in stmts {
        *steps += 1;
        if *steps > MAX_STEPS {
            return Err(RuntimeError::new(
                "statement budget exceeded; possible infinite loop",
            ));
        }
        match stmt {
            RStmt::Assign { target, value } => {
                let v = eval_rexpr(ir, op, state, locals, rm, value, steps)?;
                assign(state, locals, *target, v);
            }
            RStmt::AugAssign {
                target,
                op: bin,
                value,
            } => {
                let rhs = eval_rexpr(ir, op, state, locals, rm, value, steps)?;
                let current = read_target(state, locals, rm, *target)?;
                let v = Value::binary(*bin, &current, &rhs)?;
                assign(state, locals, *target, v);
            }
            RStmt::Expr(expr) => {
                eval_rexpr(ir, op, state, locals, rm, expr, steps)?;
            }
            RStmt::Return(value) => {
                let v = match value {
                    Some(e) => eval_rexpr(ir, op, state, locals, rm, e, steps)?,
                    None => Value::None,
                };
                return Ok(Flow::Return(v));
            }
            RStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = eval_rexpr(ir, op, state, locals, rm, cond, steps)?.as_bool()?;
                let body = if c { then_body } else { else_body };
                match exec_rstmts(ir, op, state, locals, rm, body, steps)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            RStmt::While { cond, body } => loop {
                *steps += 1;
                if *steps > MAX_STEPS {
                    return Err(RuntimeError::new("while loop exceeded step budget"));
                }
                let c = eval_rexpr(ir, op, state, locals, rm, cond, steps)?.as_bool()?;
                if !c {
                    break;
                }
                match exec_rstmts(ir, op, state, locals, rm, body, steps)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
            },
            RStmt::For { var, iter, body } => {
                let iterable = eval_rexpr(ir, op, state, locals, rm, iter, steps)?;
                let items = iterable.as_list()?.to_vec();
                for item in items {
                    locals.set(*var, item);
                    match exec_rstmts(ir, op, state, locals, rm, body, steps)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                    }
                }
            }
            RStmt::Pass => {}
            RStmt::Break => return Ok(Flow::Break),
            RStmt::Continue => return Ok(Flow::Continue),
        }
    }
    Ok(Flow::Normal)
}

#[inline]
fn assign(state: &mut EntityState, locals: &mut Locals, target: RTarget, value: Value) {
    match target {
        RTarget::Local(slot) => locals.set(slot, value),
        RTarget::Field(slot) => state.set_slot(slot, value),
    }
}

#[inline]
fn read_target(
    state: &EntityState,
    locals: &Locals,
    rm: &ResolvedMethod,
    target: RTarget,
) -> RuntimeResult<Value> {
    match target {
        RTarget::Local(slot) => locals.get(slot).cloned().ok_or_else(|| {
            RuntimeError::new(format!("undefined variable `{}`", rm.locals.name_of(slot)))
        }),
        RTarget::Field(slot) => Ok(state.slot(slot).clone()),
    }
}

/// Evaluate a slot-resolved expression. Remote calls were lifted out by the
/// splitting pass and rejected during resolution, so none can appear here.
fn eval_rexpr(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut Locals,
    rm: &ResolvedMethod,
    expr: &RExpr,
    steps: &mut usize,
) -> RuntimeResult<Value> {
    *steps += 1;
    if *steps > MAX_STEPS {
        return Err(RuntimeError::new("expression budget exceeded"));
    }
    match expr {
        RExpr::Int(v) => Ok(Value::Int(*v)),
        RExpr::Float(v) => Ok(Value::Float(*v)),
        RExpr::Str(s) => Ok(Value::Str(s.clone())),
        RExpr::Bool(b) => Ok(Value::Bool(*b)),
        RExpr::None => Ok(Value::None),
        RExpr::Local(slot) => locals.get(*slot).cloned().ok_or_else(|| {
            RuntimeError::new(format!("undefined variable `{}`", rm.locals.name_of(*slot)))
        }),
        RExpr::Field(slot) => Ok(state.slot(*slot).clone()),
        RExpr::CallSelf { method, args } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for arg in args {
                arg_values.push(eval_rexpr(ir, op, state, locals, rm, arg, steps)?);
            }
            // verify[self-call-target] proved `method` exists on this
            // operator, is simple, and matches the arity of `args`, so the
            // defensive lookups inside exec_simple_id cannot fail from here.
            exec_simple_id(ir, op, state, *method, &arg_values)
        }
        RExpr::Builtin { f, args } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for arg in args {
                arg_values.push(eval_rexpr(ir, op, state, locals, rm, arg, steps)?);
            }
            eval_builtin_fn(*f, &arg_values)
        }
        RExpr::Binary {
            op: bin,
            left,
            right,
        } => {
            let l = eval_rexpr(ir, op, state, locals, rm, left, steps)?;
            let r = eval_rexpr(ir, op, state, locals, rm, right, steps)?;
            Value::binary(*bin, &l, &r)
        }
        RExpr::Compare {
            op: cmp,
            left,
            right,
        } => {
            let l = eval_rexpr(ir, op, state, locals, rm, left, steps)?;
            let r = eval_rexpr(ir, op, state, locals, rm, right, steps)?;
            Value::compare(*cmp, &l, &r)
        }
        RExpr::Logic {
            op: lop,
            left,
            right,
        } => {
            let l = eval_rexpr(ir, op, state, locals, rm, left, steps)?.as_bool()?;
            let result = match lop {
                entity_lang::ast::BoolOp::And => {
                    if !l {
                        false
                    } else {
                        eval_rexpr(ir, op, state, locals, rm, right, steps)?.as_bool()?
                    }
                }
                entity_lang::ast::BoolOp::Or => {
                    if l {
                        true
                    } else {
                        eval_rexpr(ir, op, state, locals, rm, right, steps)?.as_bool()?
                    }
                }
            };
            Ok(Value::Bool(result))
        }
        RExpr::Unary { op: uop, operand } => {
            let v = eval_rexpr(ir, op, state, locals, rm, operand, steps)?;
            Value::unary(*uop, &v)
        }
        RExpr::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval_rexpr(ir, op, state, locals, rm, item, steps)?);
            }
            Ok(Value::List(out))
        }
        RExpr::Index { obj, index } => {
            let o = eval_rexpr(ir, op, state, locals, rm, obj, steps)?;
            let i = eval_rexpr(ir, op, state, locals, rm, index, steps)?.as_int()?;
            index_value(o, i)
        }
    }
}

fn index_value(obj: Value, i: i64) -> RuntimeResult<Value> {
    match obj {
        Value::List(items) => items
            .get(usize::try_from(i).unwrap_or(usize::MAX))
            .cloned()
            .ok_or_else(|| {
                RuntimeError::new(format!(
                    "list index {i} out of range ({} items)",
                    items.len()
                ))
            }),
        Value::Str(s) => s
            .chars()
            .nth(usize::try_from(i).unwrap_or(usize::MAX))
            .map(|c| Value::Str(c.to_string().into()))
            .ok_or_else(|| RuntimeError::new(format!("string index {i} out of range"))),
        other => Err(RuntimeError::new(format!("cannot index into {other}"))),
    }
}

/// Evaluate a compile-time-resolved builtin.
fn eval_builtin_fn(f: BuiltinFn, args: &[Value]) -> RuntimeResult<Value> {
    match (f, args) {
        (BuiltinFn::Len, [Value::List(items)]) => Ok(Value::Int(items.len() as i64)),
        (BuiltinFn::Len, [Value::Str(s)]) => Ok(Value::Int(s.chars().count() as i64)),
        (BuiltinFn::Range, [Value::Int(n)]) => Ok(Value::List((0..*n).map(Value::Int).collect())),
        (BuiltinFn::Range, [Value::Int(a), Value::Int(b)]) => {
            Ok(Value::List((*a..*b).map(Value::Int).collect()))
        }
        (BuiltinFn::Min, [a, b]) if a.is_numeric() && b.is_numeric() => pick(a, b, true),
        (BuiltinFn::Max, [a, b]) if a.is_numeric() && b.is_numeric() => pick(a, b, false),
        (BuiltinFn::Min, [Value::List(items)]) if !items.is_empty() => fold_pick(items, true),
        (BuiltinFn::Max, [Value::List(items)]) if !items.is_empty() => fold_pick(items, false),
        (BuiltinFn::Abs, [Value::Int(v)]) => Ok(Value::Int(v.abs())),
        (BuiltinFn::Abs, [Value::Float(v)]) => Ok(Value::Float(v.abs())),
        (BuiltinFn::Str, [v]) => Ok(Value::Str(display_for_str(v).into())),
        (BuiltinFn::Int, [Value::Int(v)]) => Ok(Value::Int(*v)),
        (BuiltinFn::Int, [Value::Float(v)]) => Ok(Value::Int(*v as i64)),
        (BuiltinFn::Int, [Value::Bool(b)]) => Ok(Value::Int(i64::from(*b))),
        (BuiltinFn::Int, [Value::Str(s)]) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| RuntimeError::new(format!("cannot convert \"{s}\" to int"))),
        _ => Err(RuntimeError::new(format!(
            "builtin `{}` called with unsupported arguments",
            f.name()
        ))),
    }
}

fn display_for_str(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

fn pick(a: &Value, b: &Value, smaller: bool) -> RuntimeResult<Value> {
    let less = a.as_float()? <= b.as_float()?;
    Ok(if less == smaller {
        a.clone()
    } else {
        b.clone()
    })
}

fn fold_pick(items: &[Value], smaller: bool) -> RuntimeResult<Value> {
    let mut best = items[0].clone();
    for item in &items[1..] {
        best = pick(&best, item, smaller)?;
    }
    Ok(best)
}

// ---------------------------------------------------------------------------
// Name-based oracle interpreter (pre-slot-resolution semantics).
// ---------------------------------------------------------------------------

/// Internal helper for the oracle execution mode in `local.rs`: execute one
/// *unresolved* flat statement against the given state and name-keyed locals.
/// This is deliberately the seed's string-keyed semantics — the equivalence
/// tests compare the slot-resolved hot path against it.
pub(crate) fn eval_flat_for_oracle(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    stmt: &FlatStmt,
) -> RuntimeResult<()> {
    let mut steps = 0usize;
    match stmt {
        FlatStmt::Assign { target, expr } => {
            let value = eval_expr_oracle(ir, op, state, locals, expr, &mut steps)?;
            assign_oracle(state, locals, target, value);
            Ok(())
        }
        FlatStmt::AugAssign {
            target,
            op: bin,
            expr,
        } => {
            let rhs = eval_expr_oracle(ir, op, state, locals, expr, &mut steps)?;
            let current = read_target_oracle(state, locals, target)?;
            let value = Value::binary(*bin, &current, &rhs)?;
            assign_oracle(state, locals, target, value);
            Ok(())
        }
        FlatStmt::Expr { expr } => {
            eval_expr_oracle(ir, op, state, locals, expr, &mut steps)?;
            Ok(())
        }
    }
}

fn assign_oracle(
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    target: &Target,
    value: Value,
) {
    match target {
        Target::Name(name) => {
            locals.insert(name.clone(), value);
        }
        Target::SelfField(field) => {
            state.insert(field.clone(), value);
        }
    }
}

fn read_target_oracle(
    state: &EntityState,
    locals: &BTreeMap<String, Value>,
    target: &Target,
) -> RuntimeResult<Value> {
    match target {
        Target::Name(name) => locals
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined variable `{name}`"))),
        Target::SelfField(field) => state
            .get(field)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined field `{field}`"))),
    }
}

/// Execute a simple method by interpreting its *original AST body* with
/// name-keyed locals — the oracle never touches the slot-resolved form, so
/// equivalence tests genuinely compare two independent implementations.
pub(crate) fn exec_simple_oracle(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    method: &str,
    args: &[Value],
) -> RuntimeResult<Value> {
    let compiled = op
        .method(method)
        .ok_or_else(|| RuntimeError::new(format!("`{}` has no method `{method}`", op.entity)))?;
    let body = match &compiled.kind {
        MethodKind::Simple { body } => body,
        MethodKind::Split(_) => {
            return Err(RuntimeError::new(format!(
                "method `{method}` performs remote calls and cannot run as a simple method"
            )));
        }
    };
    if compiled.params.len() != args.len() {
        return Err(RuntimeError::new(format!(
            "method `{method}` expects {} argument(s), got {}",
            compiled.params.len(),
            args.len()
        )));
    }
    let mut locals: BTreeMap<String, Value> = compiled
        .params
        .iter()
        .zip(args.iter())
        .map(|((name, _), value)| (name.clone(), value.clone()))
        .collect();
    let mut steps = 0usize;
    match exec_stmts_oracle(ir, op, state, &mut locals, body, &mut steps)? {
        Flow::Return(v) => Ok(v),
        _ => Ok(Value::None),
    }
}

/// Interpret an original (unsplit) statement list with name-keyed locals.
fn exec_stmts_oracle(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    stmts: &[Stmt],
    steps: &mut usize,
) -> RuntimeResult<Flow> {
    for stmt in stmts {
        *steps += 1;
        if *steps > MAX_STEPS {
            return Err(RuntimeError::new(
                "statement budget exceeded; possible infinite loop",
            ));
        }
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let v = eval_expr_oracle(ir, op, state, locals, value, steps)?;
                assign_oracle(state, locals, target, v);
            }
            Stmt::AugAssign {
                target,
                op: bin,
                value,
                ..
            } => {
                let rhs = eval_expr_oracle(ir, op, state, locals, value, steps)?;
                let current = read_target_oracle(state, locals, target)?;
                let v = Value::binary(*bin, &current, &rhs)?;
                assign_oracle(state, locals, target, v);
            }
            Stmt::ExprStmt { expr, .. } => {
                eval_expr_oracle(ir, op, state, locals, expr, steps)?;
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => eval_expr_oracle(ir, op, state, locals, e, steps)?,
                    None => Value::None,
                };
                return Ok(Flow::Return(v));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = eval_expr_oracle(ir, op, state, locals, cond, steps)?.as_bool()?;
                let body = if c { then_body } else { else_body };
                match exec_stmts_oracle(ir, op, state, locals, body, steps)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            Stmt::While { cond, body, .. } => loop {
                *steps += 1;
                if *steps > MAX_STEPS {
                    return Err(RuntimeError::new("while loop exceeded step budget"));
                }
                let c = eval_expr_oracle(ir, op, state, locals, cond, steps)?.as_bool()?;
                if !c {
                    break;
                }
                match exec_stmts_oracle(ir, op, state, locals, body, steps)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
            },
            Stmt::For {
                var, iter, body, ..
            } => {
                let iterable = eval_expr_oracle(ir, op, state, locals, iter, steps)?;
                let items = iterable.as_list()?.to_vec();
                for item in items {
                    locals.insert(var.clone(), item);
                    match exec_stmts_oracle(ir, op, state, locals, body, steps)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                    }
                }
            }
            Stmt::Pass { .. } => {}
            Stmt::Break { .. } => return Ok(Flow::Break),
            Stmt::Continue { .. } => return Ok(Flow::Continue),
        }
    }
    Ok(Flow::Normal)
}

/// Evaluate an unresolved expression against name-keyed locals (oracle path).
pub(crate) fn eval_expr_oracle(
    ir: &DataflowIR,
    op: &OperatorSpec,
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    expr: &Expr,
    steps: &mut usize,
) -> RuntimeResult<Value> {
    *steps += 1;
    if *steps > MAX_STEPS {
        return Err(RuntimeError::new("expression budget exceeded"));
    }
    match expr {
        Expr::Int(v, _) => Ok(Value::Int(*v)),
        Expr::Float(v, _) => Ok(Value::Float(*v)),
        Expr::Str(s, _) => Ok(Value::Str(s.as_str().into())),
        Expr::Bool(b, _) => Ok(Value::Bool(*b)),
        Expr::NoneLit(_) => Ok(Value::None),
        Expr::Name(name, _) => locals
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined variable `{name}`"))),
        Expr::SelfField(field, _) => state
            .get(field)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined field `{field}`"))),
        Expr::Call {
            recv: None,
            method,
            args,
            ..
        } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for arg in args {
                arg_values.push(eval_expr_oracle(ir, op, state, locals, arg, steps)?);
            }
            exec_simple_oracle(ir, op, state, method, &arg_values)
        }
        Expr::Call {
            recv: Some(var),
            method,
            ..
        } => Err(RuntimeError::new(format!(
            "unexpected remote call `{var}.{method}()` in interpreted expression; \
             composite methods must be split before execution"
        ))),
        Expr::Builtin { name, args, .. } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for arg in args {
                arg_values.push(eval_expr_oracle(ir, op, state, locals, arg, steps)?);
            }
            eval_builtin(name, &arg_values)
        }
        Expr::Binary {
            op: bin,
            left,
            right,
            ..
        } => {
            let l = eval_expr_oracle(ir, op, state, locals, left, steps)?;
            let r = eval_expr_oracle(ir, op, state, locals, right, steps)?;
            Value::binary(*bin, &l, &r)
        }
        Expr::Compare {
            op: cmp,
            left,
            right,
            ..
        } => {
            let l = eval_expr_oracle(ir, op, state, locals, left, steps)?;
            let r = eval_expr_oracle(ir, op, state, locals, right, steps)?;
            Value::compare(*cmp, &l, &r)
        }
        Expr::Logic {
            op: lop,
            left,
            right,
            ..
        } => {
            let l = eval_expr_oracle(ir, op, state, locals, left, steps)?.as_bool()?;
            let result = match lop {
                entity_lang::ast::BoolOp::And => {
                    if !l {
                        false
                    } else {
                        eval_expr_oracle(ir, op, state, locals, right, steps)?.as_bool()?
                    }
                }
                entity_lang::ast::BoolOp::Or => {
                    if l {
                        true
                    } else {
                        eval_expr_oracle(ir, op, state, locals, right, steps)?.as_bool()?
                    }
                }
            };
            Ok(Value::Bool(result))
        }
        Expr::Unary {
            op: uop, operand, ..
        } => {
            let v = eval_expr_oracle(ir, op, state, locals, operand, steps)?;
            Value::unary(*uop, &v)
        }
        Expr::List(items, _) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval_expr_oracle(ir, op, state, locals, item, steps)?);
            }
            Ok(Value::List(out))
        }
        Expr::Index { obj, index, .. } => {
            let o = eval_expr_oracle(ir, op, state, locals, obj, steps)?;
            let i = eval_expr_oracle(ir, op, state, locals, index, steps)?.as_int()?;
            index_value(o, i)
        }
    }
}

/// Evaluate a builtin by source name (oracle path; the hot path dispatches on
/// [`BuiltinFn`] instead).
fn eval_builtin(name: &str, args: &[Value]) -> RuntimeResult<Value> {
    match BuiltinFn::from_name(name) {
        Some(f) => eval_builtin_fn(f, args),
        None => Err(RuntimeError::new(format!(
            "builtin `{name}` called with unsupported arguments"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::ir::DataflowIR;
    use entity_lang::{corpus, frontend};

    fn ir_for(src: &str) -> DataflowIR {
        let (module, types) = frontend(src).unwrap();
        DataflowIR::from_analysis(&analyze(&module, &types).unwrap()).unwrap()
    }

    fn mid(ir: &DataflowIR, entity: &str, method: &str) -> MethodId {
        ir.operator(entity).unwrap().method_id(method).unwrap()
    }

    #[test]
    fn instantiate_runs_init_and_extracts_key() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let (key, state) = instantiate(&ir, "Item", &["apple".into(), Value::Int(5)]).unwrap();
        assert_eq!(key, Key::Str("apple".into()));
        assert_eq!(state["price"], Value::Int(5));
        assert_eq!(state["stock"], Value::Int(0));
    }

    #[test]
    fn instantiate_with_wrong_arity_fails() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        assert!(instantiate(&ir, "Item", &["apple".into()]).is_err());
        assert!(instantiate(&ir, "Nope", &[]).is_err());
    }

    #[test]
    fn exec_simple_mutates_state_and_returns() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let op = ir.operator("User").unwrap();
        let (_, mut state) = instantiate(&ir, "User", &["alice".into()]).unwrap();
        let out = exec_simple(&ir, op, &mut state, "deposit", &[Value::Int(50)]).unwrap();
        assert_eq!(out, Value::Int(50));
        assert_eq!(state["balance"], Value::Int(50));
        let out = exec_simple(&ir, op, &mut state, "deposit", &[Value::Int(25)]).unwrap();
        assert_eq!(out, Value::Int(75));
    }

    #[test]
    fn start_on_simple_method_returns_directly() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let addr = EntityAddr::new("Item", Key::Str("apple".into()));
        let (_, mut state) = instantiate(&ir, "Item", &["apple".into(), Value::Int(3)]).unwrap();
        let out = start(&ir, &addr, &mut state, mid(&ir, "Item", "get_price"), &[]).unwrap();
        assert_eq!(out, StepOutcome::Return(Value::Int(3)));
    }

    #[test]
    fn split_method_suspends_at_remote_call_and_resumes() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user_addr = EntityAddr::new("User", Key::Str("alice".into()));
        let (_, mut user_state) = instantiate(&ir, "User", &["alice".into()]).unwrap();
        user_state.insert("balance".into(), Value::Int(100));

        // Start buy_item(2, item=apple): should suspend at Item.get_price.
        let item_ref = Value::entity_ref("Item", Key::Str("apple".into()));
        let out = start(
            &ir,
            &user_addr,
            &mut user_state,
            mid(&ir, "User", "buy_item"),
            &[Value::Int(2), item_ref],
        )
        .unwrap();
        let (call, frame) = match out {
            StepOutcome::Call { call, frame } => (call, frame),
            other => panic!("expected suspension, got {other:?}"),
        };
        assert_eq!(call.method, mid(&ir, "Item", "get_price"));
        assert_eq!(call.target.entity_name(), "Item");

        // Pretend the remote call returned 10: resume. It should suspend again
        // at update_stock(-2) because 100 >= 20.
        let out = resume(&ir, &user_addr, &mut user_state, frame, Value::Int(10)).unwrap();
        let (call, frame) = match out {
            StepOutcome::Call { call, frame } => (call, frame),
            other => panic!("expected second suspension, got {other:?}"),
        };
        assert_eq!(call.method, mid(&ir, "Item", "update_stock"));
        assert_eq!(call.args, vec![Value::Int(-2)]);

        // The stock update succeeds: the purchase completes and balance drops.
        let out = resume(&ir, &user_addr, &mut user_state, frame, Value::Bool(true)).unwrap();
        assert_eq!(out, StepOutcome::Return(Value::Bool(true)));
        assert_eq!(user_state["balance"], Value::Int(80));
    }

    #[test]
    fn split_method_early_return_when_balance_too_low() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let user_addr = EntityAddr::new("User", Key::Str("bob".into()));
        let (_, mut user_state) = instantiate(&ir, "User", &["bob".into()]).unwrap();
        // balance is 0: after learning the price the method returns False
        // without a second remote call.
        let item_ref = Value::entity_ref("Item", Key::Str("apple".into()));
        let out = start(
            &ir,
            &user_addr,
            &mut user_state,
            mid(&ir, "User", "buy_item"),
            &[Value::Int(1), item_ref],
        )
        .unwrap();
        let frame = match out {
            StepOutcome::Call { frame, .. } => frame,
            other => panic!("{other:?}"),
        };
        let out = resume(&ir, &user_addr, &mut user_state, frame, Value::Int(10)).unwrap();
        assert_eq!(out, StepOutcome::Return(Value::Bool(false)));
        assert_eq!(user_state["balance"], Value::Int(0));
    }

    #[test]
    fn builtins_evaluate() {
        assert_eq!(
            eval_builtin("len", &[Value::List(vec![Value::Int(1), Value::Int(2)])]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_builtin("range", &[Value::Int(3)]).unwrap(),
            Value::List(vec![Value::Int(0), Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            eval_builtin("min", &[Value::Int(4), Value::Int(2)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_builtin("max", &[Value::Int(4), Value::Float(2.5)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_builtin("abs", &[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_builtin("str", &[Value::Int(42)]).unwrap(),
            Value::Str("42".into())
        );
        assert_eq!(
            eval_builtin("int", &[Value::Str(" 7 ".into())]).unwrap(),
            Value::Int(7)
        );
        assert!(eval_builtin("int", &[Value::Str("x".into())]).is_err());
    }

    #[test]
    fn loops_and_conditionals_in_simple_methods() {
        let src = r#"
entity Calc:
    name: str
    acc: int

    def __init__(self, name: str):
        self.name = name
        self.acc = 0

    def __key__(self) -> str:
        return self.name

    def sum_to(self, n: int) -> int:
        total: int = 0
        for i in range(n + 1):
            total += i
        return total

    def collatz_steps(self, n: int) -> int:
        count: int = 0
        x: int = n
        while x != 1:
            if x % 2 == 0:
                x = x // 2
            else:
                x = 3 * x + 1
            count += 1
        return count

    def first_even(self, xs: list[int]) -> int:
        for x in xs:
            if x % 2 == 0:
                return x
        return -1
"#;
        let ir = ir_for(src);
        let op = ir.operator("Calc").unwrap();
        let (_, mut state) = instantiate(&ir, "Calc", &["c".into()]).unwrap();
        assert_eq!(
            exec_simple(&ir, op, &mut state, "sum_to", &[Value::Int(10)]).unwrap(),
            Value::Int(55)
        );
        assert_eq!(
            exec_simple(&ir, op, &mut state, "collatz_steps", &[Value::Int(6)]).unwrap(),
            Value::Int(8)
        );
        assert_eq!(
            exec_simple(
                &ir,
                op,
                &mut state,
                "first_even",
                &[Value::List(vec![
                    Value::Int(3),
                    Value::Int(5),
                    Value::Int(8)
                ])]
            )
            .unwrap(),
            Value::Int(8)
        );
    }

    #[test]
    fn infinite_loop_is_cut_off() {
        let src = r#"
entity Bad:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def spin(self) -> int:
        x: int = 0
        while True:
            x += 1
        return x
"#;
        let ir = ir_for(src);
        let op = ir.operator("Bad").unwrap();
        let (_, mut state) = instantiate(&ir, "Bad", &["b".into()]).unwrap();
        let err = exec_simple(&ir, op, &mut state, "spin", &[]).unwrap_err();
        assert!(err.message.contains("budget"), "{err}");
    }

    #[test]
    fn reading_unassigned_local_reports_its_name() {
        // `x` is only assigned inside the never-taken branch; reading it after
        // the branch must fail with the original variable name even though the
        // interpreter only tracks slots.
        let src = r#"
entity Edge:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def oops(self, flag: bool) -> int:
        if flag:
            x: int = 1
        return x
"#;
        let ir = ir_for(src);
        let op = ir.operator("Edge").unwrap();
        let (_, mut state) = instantiate(&ir, "Edge", &["e".into()]).unwrap();
        let err = exec_simple(&ir, op, &mut state, "oops", &[Value::Bool(false)]).unwrap_err();
        assert!(err.message.contains("`x`"), "{err}");
    }
}
