//! Errors produced by the stateful-entities compiler pipeline and runtimes.

use crate::verify::{Lint, VerifyError};
use entity_lang::{LangError, Span};
use std::fmt;

/// An error raised while compiling an entity program into the dataflow IR.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The front end (lexer/parser/type checker) rejected the program.
    Frontend(LangError),
    /// A programming-model limitation was violated (Section 2.2 of the paper).
    Analysis {
        /// Location of the offending construct.
        span: Span,
        /// Human-readable description.
        message: String,
    },
    /// The whole-program verifier rejected the compiled IR. Always a compiler
    /// bug (the pipeline should only emit IRs that verify), surfaced as a
    /// typed error so it can never ship to a runtime.
    Verify(VerifyError),
    /// A warn-level lint promoted to an error because the caller compiled
    /// with [`CompileOptions::deny_lints`](crate::CompileOptions). Carries
    /// the first offending finding; the full set is in the verify report.
    Lint(Lint),
}

impl CompileError {
    /// Build an analysis error.
    pub fn analysis(span: Span, message: impl Into<String>) -> Self {
        CompileError::Analysis {
            span,
            message: message.into(),
        }
    }

    /// The error message without location prefix.
    pub fn message(&self) -> &str {
        match self {
            CompileError::Frontend(e) => &e.message,
            CompileError::Analysis { message, .. } => message,
            CompileError::Verify(e) => &e.message,
            CompileError::Lint(l) => &l.message,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "{e}"),
            CompileError::Analysis { span, message } => {
                write!(f, "analysis error at {span}: {message}")
            }
            CompileError::Verify(e) => write!(f, "{e}"),
            CompileError::Lint(l) => write!(f, "denied lint: {l}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Frontend(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

/// Convenience alias for compiler results.
pub type CompileResult<T> = Result<T, CompileError>;

/// An error raised while executing compiled entity code.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Human-readable description.
    pub message: String,
}

impl RuntimeError {
    /// Build a runtime error.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// Convenience alias for runtime results.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use entity_lang::Span;

    #[test]
    fn display_formats() {
        let e = CompileError::analysis(Span::synthetic(), "recursion is not supported");
        assert!(e.to_string().contains("recursion"));
        assert_eq!(e.message(), "recursion is not supported");
        let r = RuntimeError::new("missing entity");
        assert!(r.to_string().contains("missing entity"));
    }

    #[test]
    fn frontend_errors_convert() {
        let lang = LangError::parse(Span::synthetic(), "bad token");
        let e: CompileError = lang.into();
        assert!(matches!(e, CompileError::Frontend(_)));
        assert_eq!(e.message(), "bad token");
    }
}
