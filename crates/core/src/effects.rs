//! Compile-time write-set analysis (PR 4).
//!
//! The sharded runtime's deterministic batching only needs to *order* two
//! calls when at least one of them writes a key they share — two reads of the
//! same hot entity commute and can commit in one batch. Until this pass,
//! every footprint key was conservatively treated as read-modify-write, so a
//! hot-key read storm serialized one call per batch.
//!
//! This pass computes, per method, whether executing it **may write entity
//! state**, split into two bits:
//!
//! * [`MethodEffects::writes_self`] — the method may mutate the state of the
//!   entity it runs on: it assigns (or aug-assigns) a `self.field` directly,
//!   or it calls a `self.*` helper that does (local calls execute inline on
//!   the same instance, so their writes are the caller's writes).
//! * [`MethodEffects::writes_ref_args`] — the call *chain* rooted at this
//!   method may write some entity reached through an entity **reference**
//!   (the method performs a remote call whose callee writes its own state or
//!   in turn forwards references to writers).
//!
//! Both bits are propagated through the static call graph to a fixpoint
//! (the front end rejects recursion, so the graph is acyclic and the
//! fixpoint is reached in at most `depth` rounds).
//!
//! ## Why two bits are enough for a sound footprint
//!
//! A root call's static footprint is its target address plus every entity
//! reference among its arguments (see the sharded runtime's footprint scan).
//! The type checker forbids entity-typed *fields*, so every reference the
//! chain can ever touch originates in those root values — the same induction
//! that makes the footprint itself sound. Classifying the **target** key as
//! written iff `writes_self`, and **every argument reference** as written iff
//! `writes_ref_args`, therefore over-approximates the true write set: a key
//! classified read-only is provably never written by the chain. (The
//! approximation is per-method, not per-argument — one writable reference
//! argument marks all of them. Precise per-parameter tracking is a possible
//! refinement; see ROADMAP.)
//!
//! The bits surface on the resolved IR: [`crate::ir::CompiledMethod`] carries
//! both, and every lowered remote-call site
//! ([`crate::resolve::RTerminator::RemoteCall`]) carries `callee_writes` —
//! whether the invoked method may write its target entity — so a runtime can
//! also reason per hop, not only per root call.

use crate::analysis::AnalyzedProgram;
use crate::callgraph::CallKind;
use entity_lang::ast::{Stmt, Target};
use std::collections::BTreeMap;

/// The write effects of one method, after callgraph propagation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodEffects {
    /// The method (or a `self.*` helper it calls) may write a field of the
    /// entity it executes on.
    pub writes_self: bool,
    /// The call chain rooted at this method may write an entity reached
    /// through an entity reference (argument-derived, per the reference
    /// soundness argument).
    pub writes_ref_args: bool,
}

impl MethodEffects {
    /// True if the whole chain is read-only: neither the target nor any
    /// referenced entity can be written.
    pub fn is_read_only(&self) -> bool {
        !self.writes_self && !self.writes_ref_args
    }
}

/// Write effects for every method of a program, keyed by
/// `(entity name, method name)`.
#[derive(Debug, Clone, Default)]
pub struct ProgramEffects {
    methods: BTreeMap<(String, String), MethodEffects>,
}

impl ProgramEffects {
    /// The effects of `entity.method`. Unknown methods (which the front end
    /// would have rejected) are conservatively treated as writing everything.
    pub fn of(&self, entity: &str, method: &str) -> MethodEffects {
        self.methods
            .get(&(entity.to_string(), method.to_string()))
            .copied()
            .unwrap_or(MethodEffects {
                writes_self: true,
                writes_ref_args: true,
            })
    }

    /// Number of analyzed methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True if no methods were analyzed.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Does the body contain a direct write to `self.*`?
fn writes_self_directly(body: &[Stmt]) -> bool {
    let mut found = false;
    crate::callgraph::walk_stmts(body, &mut |stmt| match stmt {
        Stmt::Assign {
            target: Target::SelfField(_),
            ..
        }
        | Stmt::AugAssign {
            target: Target::SelfField(_),
            ..
        } => found = true,
        _ => {}
    });
    found
}

/// Compute the write effects of every method: seed each with its direct
/// `self.field` writes, then propagate over the call graph until stable.
///
/// Propagation rules, per edge `caller → callee`:
///
/// * **local** (`self.helper(...)`): the callee runs inline on the caller's
///   instance, so `caller.writes_self |= callee.writes_self`; references the
///   caller forwards keep flowing, so
///   `caller.writes_ref_args |= callee.writes_ref_args`.
/// * **remote** (`ref.method(...)`): the receiver is an entity reference, so
///   if the callee writes its own state the caller's reference set is
///   written (`caller.writes_ref_args |= callee.writes_self`); references
///   forwarded as arguments may be written downstream
///   (`caller.writes_ref_args |= callee.writes_ref_args`).
pub fn analyze_effects(program: &AnalyzedProgram) -> ProgramEffects {
    let mut methods: BTreeMap<(String, String), MethodEffects> = BTreeMap::new();
    for entity in program.entities.values() {
        for method in entity.methods.values() {
            methods.insert(
                (entity.name.clone(), method.name.clone()),
                MethodEffects {
                    writes_self: writes_self_directly(&method.body),
                    writes_ref_args: false,
                },
            );
        }
    }

    // Fixpoint over the (acyclic — recursion is rejected) call graph.
    loop {
        let mut changed = false;
        for edge in &program.call_graph.edges {
            let callee_key = (edge.callee.entity.clone(), edge.callee.method.clone());
            let callee = match methods.get(&callee_key) {
                Some(e) => *e,
                // A dangling edge means the front end already failed; stay
                // conservative rather than panic.
                None => MethodEffects {
                    writes_self: true,
                    writes_ref_args: true,
                },
            };
            let caller_key = (edge.caller.entity.clone(), edge.caller.method.clone());
            let Some(caller) = methods.get_mut(&caller_key) else {
                continue;
            };
            let before = *caller;
            match edge.kind {
                CallKind::Local => {
                    caller.writes_self |= callee.writes_self;
                    caller.writes_ref_args |= callee.writes_ref_args;
                }
                CallKind::Remote => {
                    caller.writes_ref_args |= callee.writes_self || callee.writes_ref_args;
                }
            }
            changed |= *caller != before;
        }
        if !changed {
            break;
        }
    }
    ProgramEffects { methods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn effects_for(src: &str) -> ProgramEffects {
        let (module, types) = frontend(src).unwrap();
        analyze_effects(&analyze(&module, &types).unwrap())
    }

    #[test]
    fn account_reads_are_read_only_and_writers_write() {
        let eff = effects_for(corpus::ACCOUNT_SOURCE);
        assert!(eff.of("Account", "read").is_read_only());
        assert!(eff.of("Account", "read_payload").is_read_only());
        assert!(eff.of("Account", "update").writes_self);
        assert!(!eff.of("Account", "update").writes_ref_args);
        assert!(eff.of("Account", "credit").writes_self);
        assert!(eff.of("Account", "debit").writes_self);
        // transfer writes its own balance AND remote-calls credit (a writer)
        // on the `to` reference.
        let transfer = eff.of("Account", "transfer");
        assert!(transfer.writes_self);
        assert!(transfer.writes_ref_args);
        // __init__ assigns every field.
        assert!(eff.of("Account", "__init__").writes_self);
        // __key__ only reads.
        assert!(eff.of("Account", "__key__").is_read_only());
    }

    #[test]
    fn figure1_buy_item_writes_through_references() {
        let eff = effects_for(corpus::FIGURE1_SOURCE);
        // get_price is a pure read on Item; get_balance a pure read on User.
        assert!(eff.of("Item", "get_price").is_read_only());
        assert!(eff.of("User", "get_balance").is_read_only());
        assert!(eff.of("Item", "update_stock").writes_self);
        // buy_item debits the user (writes self) and calls
        // Item.update_stock on its argument reference (writes refs).
        let buy = eff.of("User", "buy_item");
        assert!(buy.writes_self);
        assert!(buy.writes_ref_args);
    }

    #[test]
    fn remote_call_to_pure_reader_does_not_mark_refs_written() {
        // A composite method whose only remote call targets a read-only
        // callee must keep writes_ref_args = false — that is exactly the
        // case that lets a fan-out read commit alongside other readers.
        let src = r#"
entity Probe:
    name: str
    value: int

    def __init__(self, name: str, value: int):
        self.name = name
        self.value = value

    def __key__(self) -> str:
        return self.name

    def peek(self) -> int:
        return self.value

entity Mirror:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def reflect(self, other: Probe) -> int:
        v: int = other.peek()
        return v
"#;
        let eff = effects_for(src);
        let reflect = eff.of("Mirror", "reflect");
        assert!(!reflect.writes_self, "reflect never assigns self.*");
        assert!(
            !reflect.writes_ref_args,
            "peek is read-only, so the reference set stays read-only"
        );
        assert!(reflect.is_read_only());
    }

    #[test]
    fn local_helper_writes_propagate_to_caller() {
        let src = r#"
entity Counter:
    name: str
    value: int

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def __key__(self) -> str:
        return self.name

    def bump(self) -> int:
        self.value += 1
        return self.value

    def touch(self) -> int:
        v: int = self.bump()
        return v

    def peek(self) -> int:
        return self.value
"#;
        let eff = effects_for(src);
        assert!(eff.of("Counter", "bump").writes_self);
        assert!(
            eff.of("Counter", "touch").writes_self,
            "a local call to a writer is a write on the same instance"
        );
        assert!(eff.of("Counter", "peek").is_read_only());
    }

    #[test]
    fn unknown_methods_default_to_conservative() {
        let eff = ProgramEffects::default();
        assert!(eff.is_empty());
        let unknown = eff.of("Ghost", "spook");
        assert!(unknown.writes_self && unknown.writes_ref_args);
    }

    #[test]
    fn every_corpus_program_analyzes_with_some_read_only_methods() {
        for (name, src) in corpus::all_programs() {
            let eff = effects_for(src);
            assert!(!eff.is_empty(), "{name}: no methods analyzed");
            // Every program in the corpus has at least __key__, which is
            // read-only by construction (__key__ may not perform remote
            // calls and returns a field).
            let any_read_only = eff.methods.values().any(|e| e.is_read_only());
            assert!(
                any_read_only,
                "{name}: expected at least one read-only method"
            );
        }
    }
}
