//! Compile-time effect analysis: the per-parameter write lattice and
//! commutative commit classes.
//!
//! The sharded runtime's deterministic batching only needs to *order* two
//! calls when they touch a shared key in incompatible ways. The coarser the
//! compile-time effect summary, the more false conflicts the commit rule
//! sees, and the more batches a workload burns. This pass computes, per
//! method, a three-part effect summary:
//!
//! 1. [`MethodEffects::writes_self`] — the method (or a `self.*` helper it
//!    calls inline) may mutate the state of the entity it runs on.
//! 2. [`MethodEffects::param_writes`] — **per formal parameter**: may the
//!    call chain rooted at this method write the entity bound to that
//!    parameter? Non-entity parameters are always `false`. This replaces the
//!    former single `writes_ref_args` bit, which smeared one writable
//!    reference over every reference argument — `transfer_audited(amount,
//!    to, log)` now keeps the audit log's key in the read set even though
//!    `to` is written.
//! 3. [`MethodEffects::commutative`] — the method's self-writes form a
//!    commutative read-modify-write class (additive counter updates), so two
//!    such calls on the same key may commit in one batch like a read-read
//!    pair.
//!
//! All three are propagated over the (acyclic — the front end rejects
//! recursion) call structure to a fixpoint.
//!
//! ## The access lattice
//!
//! Downstream, each footprint key is classified into one of three access
//! kinds, ordered `Read < CommWrite < Write`:
//!
//! * `Read` — the chain provably never writes the key. Compatible with other
//!   reads.
//! * `CommWrite` — the key is the root target of a *commutative* writer.
//!   Compatible with other commutative writes of the same key, incompatible
//!   with reads (a concurrent read would observe an order-dependent
//!   intermediate) and with exclusive writes.
//! * `Write` — exclusive read-modify-write; incompatible with everything.
//!
//! Joins only move up the lattice, so every classification here is an
//! over-approximation: a key reported `Read` is provably never written, a
//! key reported `CommWrite` is only ever written additively by the calls
//! admitted alongside it.
//!
//! ## Soundness, per kind
//!
//! **Per-parameter writes.** A root call's static footprint is its target
//! address plus every entity reference among its arguments. The type checker
//! forbids entity-typed *fields*, so every reference a chain can ever touch
//! originates in the root call's target or argument values — there is no way
//! to conjure a new entity reference mid-chain. A write to a non-target
//! entity can therefore only happen at a remote call site, and the receiver
//! (or forwarded argument) of that site is, transitively, an alias of some
//! formal parameter of the root method. The analysis walks each body with a
//! conservative may-alias map from locals to formal-parameter indices
//! (assignment unions the aliases of every name the right-hand side
//! mentions; a call result conservatively aliases the union of its receiver
//! and argument aliases; loops run the transfer to a local fixpoint), and
//! marks parameter `i` written whenever a remote call may write an entity
//! that aliases `i`. Aliasing is only ever over-approximated, so
//! `param_writes[i] == false` proves the chain never writes the entity bound
//! to parameter `i`. Local (`self.*`) callees are *simple* methods (the
//! analysis pass enforces this), and a simple method performs no remote
//! calls, so inline callees can never write a reference argument — their
//! contribution is folded in anyway for defense in depth.
//!
//! **Frame liveness** (computed in [`crate::resolve`], documented here
//! because it shares the soundness frame): a continuation frame only needs
//! the local slots that some instruction on a path from its resume block
//! still reads. Backward liveness over the split-block CFG over-approximates
//! that set (joins are unions), so dropping a dead slot can never change the
//! value of any executed expression. Dropped slots are reset to the
//! *unassigned* state, so a liveness bug would surface as a loud
//! "undefined variable" error, never as silent wrong data.
//!
//! **Commutativity.** A method is tagged `commutative` only if it is simple
//! (no remote calls, hence single-event, applied atomically at its owning
//! shard), it writes its own state, and *every* self-field write in its body
//! is an additive update `self.f += e` / `self.f -= e` whose amount `e` is
//! state-independent (no `self.*` read, no call result, no local tainted by
//! either) and whose execution is not control-dependent on entity state (no
//! enclosing `if`/`while`/`for` condition that reads a field or tainted
//! local, and no state-dependent early exit anywhere in the body). Blind
//! assignments (`self.f = e`) and guarded writes (`debit`'s balance check)
//! disqualify. Under these conditions the final state after any
//! permutation of a group of commutative calls on the same key is
//! identical: each call applies a fixed set of deltas determined by its
//! arguments alone.
//!
//! Bit-for-bit equivalence with the sequential oracle does **not** lean on
//! that algebraic argument alone (which would be shaky for float fields,
//! where `+` is not associative in IEEE semantics). The runtime pins the
//! *application order*: commutative calls admitted into one batch are
//! dispatched to the owning shard over a single FIFO channel in batch
//! sequence, and the worker applies them in arrival order — which equals
//! submission order, which equals the oracle's execution order. The
//! commutativity tag is what makes admitting them *together* safe
//! (no reader or exclusive writer of the key is in the batch to observe an
//! intermediate state); FIFO pinning is what makes the result — including
//! order-dependent *return values* like `credit`'s post-update balance —
//! exactly the oracle's. Multi-hop (split) methods stay exclusive because
//! their later hops travel shard-to-shard via mailboxes and may interleave
//! out of batch order.
//!
//! The summary surfaces on the resolved IR: [`crate::ir::CompiledMethod`]
//! carries `writes_self`, `param_effects`, and `commutative`, and every
//! lowered remote-call site ([`crate::resolve::RTerminator::RemoteCall`])
//! carries `callee_writes` plus a per-argument `callee_param_writes` mask,
//! so a runtime can reason per hop, not only per root call.

use crate::analysis::{AnalyzedMethod, AnalyzedProgram};
use entity_lang::ast::{BinOp, Expr, Stmt, Target};
use std::collections::{BTreeMap, BTreeSet};

/// The effect summary of one method, after fixpoint propagation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodEffects {
    /// The method (or a `self.*` helper it calls) may write a field of the
    /// entity it executes on.
    pub writes_self: bool,
    /// Every self-write is a commutative additive update (see module docs);
    /// implies `writes_self` and a simple (single-event) method.
    pub commutative: bool,
    /// Per formal parameter (declaration order, `self` excluded): may the
    /// chain rooted here write the entity bound to that parameter?
    pub param_writes: Vec<bool>,
    /// True for the conservative summary of an unknown method: every
    /// parameter (of any arity) is treated as written.
    conservative: bool,
}

impl MethodEffects {
    /// The conservative summary used for methods the analysis never saw
    /// (which the front end would have rejected): writes everything.
    pub fn unknown() -> MethodEffects {
        MethodEffects {
            writes_self: true,
            commutative: false,
            param_writes: Vec::new(),
            conservative: true,
        }
    }

    /// May the chain write the entity bound to parameter `i`? Out-of-range
    /// indices (an arity mismatch the front end rejects) answer `true`.
    pub fn writes_param(&self, i: usize) -> bool {
        self.conservative || self.param_writes.get(i).copied().unwrap_or(true)
    }

    /// May the chain write *some* entity reached through a reference
    /// argument? (The old one-bit summary, derived.)
    pub fn writes_ref_args(&self) -> bool {
        self.conservative || self.param_writes.iter().any(|&w| w)
    }

    /// True if the whole chain is read-only: neither the target nor any
    /// referenced entity can be written.
    pub fn is_read_only(&self) -> bool {
        !self.writes_self && !self.writes_ref_args()
    }
}

/// Effect summaries for every method of a program, keyed by
/// `(entity name, method name)`.
#[derive(Debug, Clone, Default)]
pub struct ProgramEffects {
    methods: BTreeMap<(String, String), MethodEffects>,
}

impl ProgramEffects {
    /// The effects of `entity.method`. Unknown methods (which the front end
    /// would have rejected) are conservatively treated as writing everything.
    pub fn of(&self, entity: &str, method: &str) -> MethodEffects {
        self.methods
            .get(&(entity.to_string(), method.to_string()))
            .cloned()
            .unwrap_or_else(MethodEffects::unknown)
    }

    /// Number of analyzed methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True if no methods were analyzed.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Does the body contain a direct write to `self.*`?
fn writes_self_directly(body: &[Stmt]) -> bool {
    let mut found = false;
    crate::callgraph::walk_stmts(body, &mut |stmt| match stmt {
        Stmt::Assign {
            target: Target::SelfField(_),
            ..
        }
        | Stmt::AugAssign {
            target: Target::SelfField(_),
            ..
        } => found = true,
        _ => {}
    });
    found
}

/// The parameter indices an expression may alias: the union of the alias
/// sets of every local name it mentions (call receivers included — a call
/// result conservatively aliases everything the call could see).
fn expr_aliases(expr: &Expr, aliases: &BTreeMap<String, BTreeSet<usize>>) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    expr.for_each_name(&mut |name| {
        if let Some(set) = aliases.get(name) {
            out.extend(set.iter().copied());
        }
    });
    out
}

/// Conservative may-alias map for one method: local name → set of formal
/// parameter indices its value may alias. Runs the assignment transfer to a
/// local fixpoint so aliases survive loop-carried flows.
fn alias_map(method: &AnalyzedMethod) -> BTreeMap<String, BTreeSet<usize>> {
    let mut aliases: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (i, (name, _)) in method.params.iter().enumerate() {
        aliases.entry(name.clone()).or_default().insert(i);
    }
    loop {
        let mut pending: Vec<(String, BTreeSet<usize>)> = Vec::new();
        // Only queue a transfer whose result would actually grow the target's
        // set — keeps steady-state rounds allocation-free.
        let grow = |pending: &mut Vec<(String, BTreeSet<usize>)>,
                    aliases: &BTreeMap<String, BTreeSet<usize>>,
                    name: &str,
                    set: BTreeSet<usize>| {
            if set.is_empty() {
                return;
            }
            match aliases.get(name) {
                Some(known) if set.is_subset(known) => {}
                _ => pending.push((name.to_string(), set)),
            }
        };
        crate::callgraph::walk_stmts(&method.body, &mut |stmt| match stmt {
            Stmt::Assign {
                target: Target::Name(name),
                value,
                ..
            }
            | Stmt::AugAssign {
                target: Target::Name(name),
                value,
                ..
            } => {
                let set = expr_aliases(value, &aliases);
                grow(&mut pending, &aliases, name, set);
            }
            Stmt::For { var, iter, .. } => {
                let set = expr_aliases(iter, &aliases);
                grow(&mut pending, &aliases, var, set);
            }
            _ => {}
        });
        let mut changed = false;
        for (name, set) in pending {
            let entry = aliases.entry(name).or_default();
            for p in set {
                changed |= entry.insert(p);
            }
        }
        if !changed {
            break;
        }
    }
    aliases
}

/// One call site, pre-resolved against the caller's alias map.
struct CallEvent {
    /// `(entity, method)` of the callee.
    callee: (String, String),
    /// `self.helper(...)` (inline on the caller's instance) vs remote.
    local: bool,
    /// Parameter aliases of the receiver reference (empty for local calls).
    recv_aliases: BTreeSet<usize>,
    /// Parameter aliases of each argument expression.
    arg_aliases: Vec<BTreeSet<usize>>,
}

/// Everything the global fixpoint needs about one method, computed once.
struct MethodInfo {
    key: (String, String),
    arity: usize,
    direct_self_write: bool,
    /// Syntactic commutative-RMW pattern holds (pending helper check).
    commutative_candidate: bool,
    calls: Vec<CallEvent>,
}

fn build_info(entity: &str, method: &AnalyzedMethod) -> MethodInfo {
    let aliases = alias_map(method);
    let mut calls = Vec::new();
    crate::callgraph::walk_exprs(&method.body, &mut |expr| {
        if let Expr::Call {
            recv,
            method: name,
            args,
            ..
        } = expr
        {
            let (callee_entity, local, recv_aliases) = match recv {
                None => (entity.to_string(), true, BTreeSet::new()),
                Some(var) => match method.locals.get(var).and_then(|t| t.entity_name()) {
                    Some(e) => (
                        e.to_string(),
                        false,
                        aliases.get(var).cloned().unwrap_or_default(),
                    ),
                    // Calls on non-entity receivers don't exist in the
                    // language; if the front end let one through, skip it
                    // (it cannot write entity state).
                    None => return,
                },
            };
            calls.push(CallEvent {
                callee: (callee_entity, name.clone()),
                local,
                recv_aliases,
                arg_aliases: args.iter().map(|a| expr_aliases(a, &aliases)).collect(),
            });
        }
    });
    MethodInfo {
        key: (entity.to_string(), method.name.clone()),
        arity: method.params.len(),
        direct_self_write: writes_self_directly(&method.body),
        commutative_candidate: commutative_candidate(method),
        calls,
    }
}

/// Locals whose value may depend on entity state: assigned (directly or
/// transitively) from a `self.*` read or any call result. Fixpoint.
fn tainted_locals(body: &[Stmt]) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut pending: Vec<String> = Vec::new();
        crate::callgraph::walk_stmts(body, &mut |stmt| match stmt {
            Stmt::Assign {
                target: Target::Name(name),
                value,
                ..
            }
            | Stmt::AugAssign {
                target: Target::Name(name),
                value,
                ..
            } if !tainted.contains(name) && expr_reads_state(value, &tainted) => {
                pending.push(name.clone());
            }
            Stmt::For { var, iter, .. }
                if !tainted.contains(var) && expr_reads_state(iter, &tainted) =>
            {
                pending.push(var.clone());
            }
            _ => {}
        });
        let mut changed = false;
        for name in pending {
            changed |= tainted.insert(name);
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// May this expression's value depend on entity state? `self.*` reads, any
/// call (helper results read state), and tainted locals all count.
fn expr_reads_state(expr: &Expr, tainted: &BTreeSet<String>) -> bool {
    let mut found = false;
    expr.walk(&mut |e| match e {
        Expr::SelfField(..) | Expr::Call { .. } => found = true,
        Expr::Name(n, _) if tainted.contains(n) => found = true,
        _ => {}
    });
    found
}

/// Syntactic commutative-RMW check (see module docs): every self-field
/// write is `self.f += e` / `self.f -= e` with a state-independent amount,
/// not control-dependent on entity state, no blind field assigns, no
/// state-dependent early exits.
fn commutative_candidate(method: &AnalyzedMethod) -> bool {
    if method.has_remote_calls || !writes_self_directly(&method.body) {
        return false;
    }
    let tainted = tainted_locals(&method.body);
    commutative_stmts(&method.body, false, &tainted)
}

fn commutative_stmts(stmts: &[Stmt], state_dep: bool, tainted: &BTreeSet<String>) -> bool {
    stmts.iter().all(|stmt| match stmt {
        // A blind field assignment clobbers: never commutative.
        Stmt::Assign {
            target: Target::SelfField(_),
            ..
        } => false,
        Stmt::AugAssign {
            target: Target::SelfField(_),
            op,
            value,
            ..
        } => {
            matches!(op, BinOp::Add | BinOp::Sub) && !state_dep && !expr_reads_state(value, tainted)
        }
        // A state-dependent early exit makes every later write guarded.
        Stmt::Return { .. } | Stmt::Break { .. } | Stmt::Continue { .. } => !state_dep,
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let dep = state_dep || expr_reads_state(cond, tainted);
            commutative_stmts(then_body, dep, tainted) && commutative_stmts(else_body, dep, tainted)
        }
        Stmt::While { cond, body, .. } => {
            let dep = state_dep || expr_reads_state(cond, tainted);
            commutative_stmts(body, dep, tainted)
        }
        Stmt::For { iter, body, .. } => {
            let dep = state_dep || expr_reads_state(iter, tainted);
            commutative_stmts(body, dep, tainted)
        }
        Stmt::Assign { .. }
        | Stmt::AugAssign { .. }
        | Stmt::ExprStmt { .. }
        | Stmt::Pass { .. } => true,
    })
}

/// Compute the effect summary of every method: seed each with its direct
/// `self.field` writes, then propagate per-call-site to a global fixpoint.
///
/// Propagation rules, per call site in `caller`:
///
/// * **local** (`self.helper(args)`): the callee runs inline on the caller's
///   instance, so `caller.writes_self |= callee.writes_self`; any parameter
///   the callee may write flows back to whatever the matching argument
///   aliases (vacuous today — local callees are simple and simple methods
///   never write references — but kept for defense in depth).
/// * **remote** (`ref.m(args)`): if the callee writes its own state, every
///   parameter the receiver may alias is written; if the callee writes its
///   `j`-th parameter, every parameter argument `j` may alias is written.
///
/// The call structure is acyclic (recursion is rejected), so the fixpoint is
/// reached in at most call-depth rounds. A final pass resolves
/// [`MethodEffects::commutative`]: the syntactic candidate bit holds, the
/// method writes self, and no inline helper it calls writes self without
/// itself being a commutative candidate.
pub fn analyze_effects(program: &AnalyzedProgram) -> ProgramEffects {
    let mut infos: Vec<MethodInfo> = Vec::new();
    for entity in program.entities.values() {
        for method in entity.methods.values() {
            infos.push(build_info(&entity.name, method));
        }
    }

    let mut methods: BTreeMap<(String, String), MethodEffects> = infos
        .iter()
        .map(|info| {
            (
                info.key.clone(),
                MethodEffects {
                    writes_self: info.direct_self_write,
                    commutative: false,
                    param_writes: vec![false; info.arity],
                    conservative: false,
                },
            )
        })
        .collect();

    loop {
        let mut changed = false;
        for info in &infos {
            let mut eff = methods[&info.key].clone();
            for call in &info.calls {
                let callee = methods
                    .get(&call.callee)
                    .cloned()
                    .unwrap_or_else(MethodEffects::unknown);
                if call.local {
                    eff.writes_self |= callee.writes_self;
                } else if callee.writes_self {
                    for &p in &call.recv_aliases {
                        eff.param_writes[p] = true;
                    }
                }
                for (j, arg) in call.arg_aliases.iter().enumerate() {
                    if callee.writes_param(j) {
                        for &p in arg {
                            eff.param_writes[p] = true;
                        }
                    }
                }
            }
            if eff != methods[&info.key] {
                methods.insert(info.key.clone(), eff);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Resolve commutativity: the syntactic pattern must hold AND every
    // inline helper that writes self must itself be a commutative candidate
    // (a non-commutative helper write makes the caller's write set
    // non-commutative too).
    let candidates: BTreeMap<&(String, String), bool> = infos
        .iter()
        .map(|i| (&i.key, i.commutative_candidate))
        .collect();
    for info in &infos {
        let eff = &methods[&info.key];
        if !info.commutative_candidate {
            continue;
        }
        let helpers_ok = info.calls.iter().filter(|c| c.local).all(|c| {
            let writes = methods
                .get(&c.callee)
                .map(|e| e.writes_self)
                .unwrap_or(true);
            !writes || candidates.get(&c.callee).copied().unwrap_or(false)
        });
        if helpers_ok && eff.writes_self && !eff.writes_ref_args() {
            // `info.key` was taken from `methods` when `infos` was built.
            methods.get_mut(&info.key).unwrap().commutative = true;
        }
    }

    ProgramEffects { methods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn effects_for(src: &str) -> ProgramEffects {
        let (module, types) = frontend(src).unwrap();
        analyze_effects(&analyze(&module, &types).unwrap())
    }

    #[test]
    fn account_reads_are_read_only_and_writers_write() {
        let eff = effects_for(corpus::ACCOUNT_SOURCE);
        assert!(eff.of("Account", "read").is_read_only());
        assert!(eff.of("Account", "read_payload").is_read_only());
        assert!(eff.of("Account", "update").writes_self);
        assert!(!eff.of("Account", "update").writes_ref_args());
        assert!(eff.of("Account", "credit").writes_self);
        assert!(eff.of("Account", "debit").writes_self);
        // transfer writes its own balance AND remote-calls credit (a writer)
        // on the `to` reference.
        let transfer = eff.of("Account", "transfer");
        assert!(transfer.writes_self);
        assert!(transfer.writes_ref_args());
        // __init__ assigns every field.
        assert!(eff.of("Account", "__init__").writes_self);
        // __key__ only reads.
        assert!(eff.of("Account", "__key__").is_read_only());
    }

    #[test]
    fn transfer_param_writes_are_per_parameter() {
        let eff = effects_for(corpus::ACCOUNT_SOURCE);
        // transfer(amount: int, to: Account): amount is scalar, `to` is
        // credited.
        let transfer = eff.of("Account", "transfer");
        assert_eq!(transfer.param_writes, vec![false, true]);
        // transfer_audited(amount: int, to: Account, log: Account): the log
        // is only read — exactly the precision the one-bit summary lost.
        let audited = eff.of("Account", "transfer_audited");
        assert!(audited.writes_self);
        assert_eq!(audited.param_writes, vec![false, true, false]);
        assert!(
            !audited.writes_param(2),
            "audit log key must stay read-only"
        );
        assert!(audited.writes_param(1));
    }

    #[test]
    fn figure1_buy_item_writes_through_references() {
        let eff = effects_for(corpus::FIGURE1_SOURCE);
        // get_price is a pure read on Item; get_balance a pure read on User.
        assert!(eff.of("Item", "get_price").is_read_only());
        assert!(eff.of("User", "get_balance").is_read_only());
        assert!(eff.of("Item", "update_stock").writes_self);
        // buy_item debits the user (writes self) and calls
        // Item.update_stock on its argument reference (writes refs).
        let buy = eff.of("User", "buy_item");
        assert!(buy.writes_self);
        assert!(buy.writes_ref_args());
        // buy_item(amount: int, item: Item): only the item reference is
        // written.
        assert!(!buy.writes_param(0));
        assert!(buy.writes_param(1));
        assert_eq!(buy.param_writes, vec![false, true]);
    }

    #[test]
    fn remote_call_to_pure_reader_does_not_mark_refs_written() {
        // A composite method whose only remote call targets a read-only
        // callee must keep writes_ref_args = false — that is exactly the
        // case that lets a fan-out read commit alongside other readers.
        let src = r#"
entity Probe:
    name: str
    value: int

    def __init__(self, name: str, value: int):
        self.name = name
        self.value = value

    def __key__(self) -> str:
        return self.name

    def peek(self) -> int:
        return self.value

entity Mirror:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def reflect(self, other: Probe) -> int:
        v: int = other.peek()
        return v
"#;
        let eff = effects_for(src);
        let reflect = eff.of("Mirror", "reflect");
        assert!(!reflect.writes_self, "reflect never assigns self.*");
        assert!(
            !reflect.writes_ref_args(),
            "peek is read-only, so the reference set stays read-only"
        );
        assert!(reflect.is_read_only());
        assert_eq!(reflect.param_writes, vec![false]);
    }

    #[test]
    fn aliased_references_are_tracked_conservatively() {
        // `alias = other` then writing through `alias` must mark the
        // original parameter written.
        let src = r#"
entity Cell:
    name: str
    value: int

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, amount: int) -> int:
        self.value += amount
        return self.value

    def poke(self, other: Cell, witness: Cell) -> int:
        alias: Cell = other
        v: int = alias.bump(1)
        w: int = witness.name_len()
        return v + w

    def name_len(self) -> int:
        return len(self.name)
"#;
        let eff = effects_for(src);
        let poke = eff.of("Cell", "poke");
        assert_eq!(
            poke.param_writes,
            vec![true, false],
            "write through alias marks `other`; `witness` stays read-only"
        );
    }

    #[test]
    fn local_helper_writes_propagate_to_caller() {
        let src = r#"
entity Counter:
    name: str
    value: int

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def __key__(self) -> str:
        return self.name

    def bump(self) -> int:
        self.value += 1
        return self.value

    def touch(self) -> int:
        v: int = self.bump()
        return v

    def peek(self) -> int:
        return self.value
"#;
        let eff = effects_for(src);
        assert!(eff.of("Counter", "bump").writes_self);
        assert!(
            eff.of("Counter", "touch").writes_self,
            "a local call to a writer is a write on the same instance"
        );
        assert!(eff.of("Counter", "peek").is_read_only());
        // bump is a textbook commutative counter.
        assert!(eff.of("Counter", "bump").commutative);
        assert!(!eff.of("Counter", "peek").commutative);
    }

    #[test]
    fn commutative_classes_match_corpus_expectations() {
        let eff = effects_for(corpus::ACCOUNT_SOURCE);
        // credit: `self.balance += amount; return self.balance` — additive,
        // unguarded, state-independent amount.
        assert!(eff.of("Account", "credit").commutative);
        // update: blind assignment — clobbers, never commutative.
        assert!(!eff.of("Account", "update").commutative);
        // debit: the write is guarded by a balance check.
        assert!(!eff.of("Account", "debit").commutative);
        // transfer: composite (remote calls) — never commutative.
        assert!(!eff.of("Account", "transfer").commutative);
        // reads don't write at all.
        assert!(!eff.of("Account", "read").commutative);

        let fig1 = effects_for(corpus::FIGURE1_SOURCE);
        assert!(fig1.of("Item", "restock").commutative);
        assert!(fig1.of("User", "deposit").commutative);
        // update_stock's write is guarded by a stock check.
        assert!(!fig1.of("Item", "update_stock").commutative);

        let tpcc = effects_for(corpus::TPCC_LITE_SOURCE);
        assert!(tpcc.of("Warehouse", "add_ytd").commutative);
        assert!(tpcc.of("District", "add_ytd").commutative);
    }

    #[test]
    fn state_dependent_early_exit_disqualifies_commutativity() {
        let src = r#"
entity Gate:
    name: str
    closed: bool
    count: int

    def __init__(self, name: str):
        self.name = name
        self.closed = False
        self.count = 0

    def __key__(self) -> str:
        return self.name

    def enter(self) -> int:
        if self.closed:
            return 0
        self.count += 1
        return 1

    def tally(self, n: int) -> int:
        if n > 0:
            self.count += n
        return self.count
"#;
        let eff = effects_for(src);
        // The increment in `enter` is control-dependent on `self.closed`
        // through an early return, even though it is not nested in the if.
        assert!(!eff.of("Gate", "enter").commutative);
        // A guard on a *parameter* is fine: the applied delta is fixed by
        // the arguments alone.
        assert!(eff.of("Gate", "tally").commutative);
    }

    #[test]
    fn unknown_methods_default_to_conservative() {
        let eff = ProgramEffects::default();
        assert!(eff.is_empty());
        let unknown = eff.of("Ghost", "spook");
        assert!(unknown.writes_self && unknown.writes_ref_args());
        assert!(unknown.writes_param(0) && unknown.writes_param(7));
        assert!(!unknown.commutative);
    }

    #[test]
    fn every_corpus_program_analyzes_with_some_read_only_methods() {
        for (name, src) in corpus::all_programs() {
            let eff = effects_for(src);
            assert!(!eff.is_empty(), "{name}: no methods analyzed");
            // Every program in the corpus has at least __key__, which is
            // read-only by construction (__key__ may not perform remote
            // calls and returns a field).
            let any_read_only = eff.methods.values().any(|e| e.is_read_only());
            assert!(
                any_read_only,
                "{name}: expected at least one read-only method"
            );
        }
    }
}
