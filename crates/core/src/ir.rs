//! The intermediate representation (Section 2.5): a stateful dataflow graph.
//!
//! Each entity class becomes a dataflow operator enriched with the methods it
//! can run, their input/return types, their (possibly split) bodies, and the
//! per-method execution graphs. The IR is independent of the target execution
//! engine: the local runtime, StateFlow, and the StateFun-style baseline all
//! execute the same [`DataflowIR`].
//!
//! ## Id-based addressing (PR 2)
//!
//! Compilation *numbers* the control plane: every entity class gets an
//! interned [`ClassId`] and every method a dense per-class [`MethodId`]
//! (declaration order, so numbering is stable across compiles of the same
//! source). Operators and their method tables are `Vec`s indexed by those
//! ids — routing an invocation is `class_index[class] → operators[pos]`
//! followed by `methods[method]`, two array probes with no string touched.
//! Name-keyed maps survive only as ingress shims ([`DataflowIR::operator`],
//! [`OperatorSpec::method_id`], [`DataflowIR::resolve_call`]) so the public
//! API still speaks `create("Account", …)` / `call("deposit", …)`.

use crate::analysis::AnalyzedProgram;
use crate::callgraph::CallGraph;
use crate::error::{CompileResult, RuntimeError, RuntimeResult};
use crate::event::MethodCall;
use crate::ids::{ClassId, MethodId};
use crate::layout::FieldLayout;
use crate::resolve::{resolve_method, MethodTables, ResolvedMethod};
use crate::split::{split_method_of, SplitMethod};
use crate::statemachine::StateMachine;
use crate::value::{EntityAddr, Key, Value};
use entity_lang::ast::Stmt;
use entity_lang::Type;
use serde::{de_field, Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a method executes on an operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodKind {
    /// No remote calls: the body executes in a single operator invocation.
    Simple {
        /// Original statement list.
        body: Vec<Stmt>,
    },
    /// Contains remote calls: executes as a sequence of split blocks.
    Split(SplitMethod),
}

/// A compiled method attached to an operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMethod {
    /// Dense id of this method within its class (declaration order).
    pub id: MethodId,
    /// Method name (ingress resolution, error messages, debug views).
    pub name: String,
    /// Parameters (name, type), excluding `self`.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub return_ty: Type,
    /// Name-based body (oracle interpreter, pretty-printing, state machines).
    pub kind: MethodKind,
    /// Slot-resolved executable body — what the runtimes interpret.
    pub resolved: ResolvedMethod,
    /// Compile-time write-set bit: the method (or a `self.*` helper it
    /// calls) may write the state of the entity it runs on. `false` means
    /// the target key of a call to this method is provably read-only.
    pub writes_self: bool,
    /// Compile-time write-set bit: the call chain rooted here may write an
    /// entity reached through an entity-reference argument. `false` means
    /// every reference in the call's footprint is provably read-only.
    /// (Derived: `param_effects.iter().any(|w| *w)`.)
    pub writes_ref_args: bool,
    /// Per formal parameter (declaration order, `self` excluded): may the
    /// call chain rooted here write the entity bound to that parameter?
    /// Always `false` for non-entity parameters. This is the precise form
    /// of `writes_ref_args`: argument `j`'s reference keys are writable iff
    /// `param_effects[j]`.
    pub param_effects: Vec<bool>,
    /// The method's self-writes form a commutative additive class (see
    /// `core::effects`): simple, writes self, every field write an
    /// unguarded state-independent `+=`/`-=`. Commuting writers of the
    /// same key may commit in one batch.
    pub commutative: bool,
    /// Source location of the `def` header. Serialized with the IR so that
    /// verifier and lint diagnostics raised against a *deserialized* artifact
    /// still point at the original entity program.
    pub span: entity_lang::Span,
}

impl CompiledMethod {
    /// True if this method was split.
    pub fn is_split(&self) -> bool {
        matches!(self.kind, MethodKind::Split(_))
    }

    /// True if a call to this method can write no entity state at all —
    /// neither its target nor anything reachable through its references.
    pub fn is_read_only(&self) -> bool {
        !self.writes_self && !self.writes_ref_args
    }
}

/// A dataflow operator: one per entity class, partitioned by the entity key.
///
/// Methods live in a `Vec` indexed by their dense [`MethodId`]; the
/// name-keyed `method_index` exists only for the ingress boundary (clients
/// speak names, the dataflow speaks ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Entity class name.
    pub entity: String,
    /// Interned class id (what events and state keys carry).
    pub class: ClassId,
    /// Field types of the entity state.
    pub fields: BTreeMap<String, Type>,
    /// Dense field layout (declaration order), shared by every instance's
    /// [`crate::value::EntityState`].
    pub layout: Arc<FieldLayout>,
    /// The field used as partition key.
    pub key_field: String,
    /// Slot of the key field within [`OperatorSpec::layout`].
    pub key_slot: u32,
    /// Partition key type.
    pub key_type: Type,
    /// Compiled methods, indexed by [`MethodId`] (declaration order,
    /// including `__init__` and `__key__`).
    pub methods: Vec<CompiledMethod>,
    /// Ingress-only name→id resolution table.
    pub method_index: BTreeMap<String, MethodId>,
    /// Source location of the entity definition header (operator-level
    /// diagnostics on compiled or deserialized IRs).
    pub span: entity_lang::Span,
}

impl OperatorSpec {
    /// Look up a compiled method by name (ingress/debug shim).
    pub fn method(&self, name: &str) -> Option<&CompiledMethod> {
        self.method_index
            .get(name)
            .map(|id| &self.methods[id.index()])
    }

    /// Look up a compiled method by id (hot path: a bounds-checked `Vec`
    /// index, no string in sight).
    #[inline]
    pub fn method_by_id(&self, id: MethodId) -> Option<&CompiledMethod> {
        self.methods.get(id.index())
    }

    /// Resolve a method name to its dense id (ingress shim).
    pub fn method_id(&self, name: &str) -> Option<MethodId> {
        self.method_index.get(name).copied()
    }

    /// The name of a method id (error messages).
    pub fn method_name(&self, id: MethodId) -> &str {
        self.methods
            .get(id.index())
            .map(|m| m.name.as_str())
            .unwrap_or("<unknown method>")
    }

    /// `__init__` parameter list.
    pub fn init_params(&self) -> &[(String, Type)] {
        self.method("__init__")
            .map(|m| m.params.as_slice())
            .unwrap_or(&[])
    }
}

/// A directed operator-level edge: `from` invokes methods of `to`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataflowEdge {
    /// Calling operator.
    pub from: String,
    /// Called operator.
    pub to: String,
}

/// The engine-independent stateful dataflow graph.
///
/// Operators live in a `Vec` (declaration order); `class_index` maps the
/// process-global [`ClassId`] space onto positions in that `Vec`, so routing
/// an event to its operator is two array probes — no ordered-map walk, no
/// string comparison. The index is rebuilt on deserialization (numeric class
/// ids are only stable within a process; the wire format carries names).
#[derive(Debug, Clone)]
pub struct DataflowIR {
    /// Operators in entity declaration order.
    pub operators: Vec<OperatorSpec>,
    /// Dense `ClassId → operator position` table (`u32::MAX` = not ours).
    class_index: Vec<u32>,
    /// Operator-level edges induced by remote calls.
    pub edges: Vec<DataflowEdge>,
    /// The full method-level call graph.
    pub call_graph: CallGraph,
    /// Execution graphs of all split methods (documentation/inspection view).
    pub state_machines: Vec<StateMachine>,
    /// Has [`crate::verify::verify`] vouched for this exact value?
    /// Process-local (never serialized); cleared on construction, set by
    /// [`DataflowIR::ensure_verified`] and by deserialization (which always
    /// verifies before handing the IR out). Runtime constructors gate on it.
    verified: bool,
}

// `verified` is a process-local cache of a property of the other fields, so
// equality ignores it (and `class_index`, which is derived): a verified IR
// and its freshly-deserialized twin are the same IR.
impl PartialEq for DataflowIR {
    fn eq(&self, other: &Self) -> bool {
        self.operators == other.operators
            && self.edges == other.edges
            && self.call_graph == other.call_graph
            && self.state_machines == other.state_machines
    }
}

const NO_OPERATOR: u32 = u32::MAX;

fn build_class_index(operators: &[OperatorSpec]) -> Vec<u32> {
    let max = operators
        .iter()
        .map(|op| op.class.as_u32() as usize + 1)
        .max()
        .unwrap_or(0);
    let mut index = vec![NO_OPERATOR; max];
    for (pos, op) in operators.iter().enumerate() {
        index[op.class.as_u32() as usize] = pos as u32;
    }
    index
}

impl DataflowIR {
    /// Build the IR from the analysis result, splitting composite methods.
    ///
    /// Construction is two-phase: first every class and method is *numbered*
    /// (so callee ids exist before any body is lowered), then bodies are
    /// slot- and id-resolved against the full numbering.
    pub fn from_analysis(program: &AnalyzedProgram) -> CompileResult<Self> {
        // Phase 1: number every class and method.
        let mut tables = MethodTables::new();
        for entity_name in &program.entity_order {
            let class = ClassId::intern(entity_name);
            let entity = &program.entities[entity_name];
            let numbering: BTreeMap<String, MethodId> = entity
                .method_order
                .iter()
                .enumerate()
                .map(|(i, name)| (name.clone(), MethodId(i as u32)))
                .collect();
            tables.insert_class(class, numbering);
        }

        // Write-set analysis: per-method "writes self?" bits, propagated
        // through the call graph, consumed below when lowering remote-call
        // sites and recorded on every compiled method.
        let effects = crate::effects::analyze_effects(program);

        // Phase 2: compile bodies against the complete numbering.
        let mut operators = Vec::with_capacity(program.entity_order.len());
        let mut state_machines = Vec::new();
        for entity_name in &program.entity_order {
            let class = ClassId::intern(entity_name);
            let entity = &program.entities[entity_name];
            // Slots follow field declaration order, so layouts are stable
            // across compiles of the same source (snapshots survive restarts).
            let layout = Arc::new(FieldLayout::new(
                entity
                    .field_order
                    .iter()
                    .map(|name| (name.clone(), entity.fields[name].clone()))
                    .collect(),
            ));
            let key_slot = layout.slot_of(&entity.key_field).ok_or_else(|| {
                crate::error::CompileError::analysis(
                    entity_lang::Span::synthetic(),
                    format!(
                        "key field `{}` of `{entity_name}` is not a declared field",
                        entity.key_field
                    ),
                )
            })?;
            let mut methods = Vec::with_capacity(entity.method_order.len());
            let mut method_index = BTreeMap::new();
            for (i, method_name) in entity.method_order.iter().enumerate() {
                let id = MethodId(i as u32);
                let method = &entity.methods[method_name];
                let kind = if method.has_remote_calls {
                    let split = split_method_of(program, entity_name, method)?;
                    state_machines.push(StateMachine::from_split(&split));
                    MethodKind::Split(split)
                } else {
                    MethodKind::Simple {
                        body: method.body.clone(),
                    }
                };
                let resolved =
                    resolve_method(&tables, class, &layout, &method.params, &kind, &effects)?;
                let method_effects = effects.of(entity_name, method_name);
                method_index.insert(method_name.clone(), id);
                methods.push(CompiledMethod {
                    id,
                    name: method_name.clone(),
                    params: method.params.clone(),
                    return_ty: method.return_ty.clone(),
                    kind,
                    resolved,
                    writes_self: method_effects.writes_self,
                    writes_ref_args: method_effects.writes_ref_args(),
                    commutative: method_effects.commutative,
                    param_effects: method_effects.param_writes,
                    span: method.span,
                });
            }
            operators.push(OperatorSpec {
                entity: entity_name.clone(),
                class,
                fields: entity.fields.clone(),
                layout,
                key_field: entity.key_field.clone(),
                key_slot,
                key_type: entity.key_type.clone(),
                methods,
                method_index,
                span: entity.span,
            });
        }
        let edges = program
            .call_graph
            .operator_edges()
            .into_iter()
            .map(|(from, to)| DataflowEdge { from, to })
            .collect();
        let class_index = build_class_index(&operators);
        Ok(DataflowIR {
            operators,
            class_index,
            edges,
            call_graph: program.call_graph.clone(),
            state_machines,
            verified: false,
        })
    }

    /// Has [`crate::verify::verify`] passed on this value at least once?
    ///
    /// `compile()` and deserialization both leave this `true`; it only reads
    /// `false` for an IR assembled by hand (tests, mutation harnesses).
    /// Mutating the public fields does *not* clear it — it is a provenance
    /// bit, which is exactly why [`DataflowIR::ensure_verified`] does not
    /// trust it as a cache.
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    /// Run the whole-program verifier ([`crate::verify::verify`]) and mark
    /// this IR as verified on success.
    ///
    /// Always re-runs the analysis, even on an already-flagged IR: the
    /// public fields are freely mutable, so the flag alone cannot prove the
    /// *current* value is sound. Verification costs microseconds per corpus
    /// program (see `benches/verify_cost.rs`) and every caller is a one-time
    /// constructor, so certainty is cheaper than a stale-cache bug.
    pub fn ensure_verified(
        &mut self,
    ) -> Result<crate::verify::VerifyReport, crate::verify::VerifyError> {
        let report = crate::verify::verify(self)?;
        self.verified = true;
        Ok(report)
    }

    /// Look up an operator by entity name (ingress/debug shim). A linear
    /// scan over the handful of operators — cheaper than taking the global
    /// interner lock, and never on the per-hop path.
    pub fn operator(&self, entity: &str) -> Option<&OperatorSpec> {
        self.operators.iter().find(|op| op.entity == entity)
    }

    /// Look up an operator by class id (hot path: two array probes).
    #[inline]
    pub fn operator_by_id(&self, class: ClassId) -> Option<&OperatorSpec> {
        let pos = *self.class_index.get(class.as_u32() as usize)?;
        if pos == NO_OPERATOR {
            return None;
        }
        self.operators.get(pos as usize)
    }

    /// The class id of an entity name, if this IR has an operator for it.
    pub fn class_id(&self, entity: &str) -> Option<ClassId> {
        self.operator(entity).map(|op| op.class)
    }

    /// Resolve a string-addressed invocation into an id-addressed
    /// [`MethodCall`] — the ingress boundary between the public name-based
    /// API and the id-dispatched dataflow.
    pub fn resolve_call(
        &self,
        entity: &str,
        key: Key,
        method: &str,
        args: Vec<Value>,
    ) -> RuntimeResult<MethodCall> {
        let op = self
            .operator(entity)
            .ok_or_else(|| RuntimeError::new(format!("unknown entity/operator `{entity}`")))?;
        let method_id = op
            .method_id(method)
            .ok_or_else(|| RuntimeError::new(format!("`{entity}` has no method `{method}`")))?;
        Ok(MethodCall::new(
            EntityAddr::from_ids(op.class, key),
            method_id,
            args,
        ))
    }

    /// Total number of split blocks across all operators.
    pub fn total_blocks(&self) -> usize {
        self.operators
            .iter()
            .flat_map(|o| o.methods.iter())
            .map(|m| match &m.kind {
                MethodKind::Split(s) => s.blocks.len(),
                MethodKind::Simple { .. } => 1,
            })
            .sum()
    }

    /// Serialize the IR to pretty-printed JSON (the portable artifact that a
    /// deployment tool would hand to a target dataflow engine).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("IR serialization cannot fail")
    }

    /// Parse an IR back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Parse an IR from raw bytes (UTF-8 JSON). Hostile input — non-UTF-8,
    /// malformed JSON, or a structurally plausible document that fails
    /// verification — comes back as a typed error, never a panic.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Render the operator-level dataflow (ingress → operators → egress) as DOT.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph dataflow {\n  rankdir=LR;\n  ingress [shape=cds];\n  egress [shape=cds];\n",
        );
        for name in self.operators.iter().map(|op| &op.entity) {
            out.push_str(&format!("  \"{name}\" [shape=box];\n"));
            out.push_str(&format!(
                "  ingress -> \"{name}\";\n  \"{name}\" -> egress;\n"
            ));
        }
        for edge in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [style=bold];\n",
                edge.from, edge.to
            ));
        }
        out.push_str("}\n");
        out
    }
}

// `class_index` holds process-local numeric ids, so it must not cross a
// process boundary: serialization writes the four portable fields and
// deserialization rebuilds the index from the re-interned operator classes.
impl Serialize for DataflowIR {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            (
                Content::Str("operators".to_string()),
                self.operators.serialize(),
            ),
            (Content::Str("edges".to_string()), self.edges.serialize()),
            (
                Content::Str("call_graph".to_string()),
                self.call_graph.serialize(),
            ),
            (
                Content::Str("state_machines".to_string()),
                self.state_machines.serialize(),
            ),
        ])
    }
}

impl Deserialize for DataflowIR {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let fields = content.as_fields()?;
        let operators: Vec<OperatorSpec> = de_field(fields, "operators")?;
        let class_index = build_class_index(&operators);
        let mut ir = DataflowIR {
            operators,
            class_index,
            edges: de_field(fields, "edges")?,
            call_graph: de_field(fields, "call_graph")?,
            state_machines: de_field(fields, "state_machines")?,
            verified: false,
        };
        // The wire is untrusted: field decode only proves the bytes spell a
        // structurally plausible IR, not that slot/method/class indices are
        // in bounds or effect masks sound. Verify before anything — including
        // our own `class_index` consumers — trusts the value.
        ir.ensure_verified()
            .map_err(|e| DeError::new(e.to_string()))?;
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn ir_for(src: &str) -> DataflowIR {
        let (module, types) = frontend(src).unwrap();
        let program = analyze(&module, &types).unwrap();
        DataflowIR::from_analysis(&program).unwrap()
    }

    #[test]
    fn figure1_ir_has_two_operators_and_one_edge() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        assert_eq!(ir.operators.len(), 2);
        assert_eq!(
            ir.edges,
            vec![DataflowEdge {
                from: "User".to_string(),
                to: "Item".to_string()
            }]
        );
        let user = ir.operator("User").unwrap();
        assert!(user.method("buy_item").unwrap().is_split());
        assert!(!user.method("deposit").unwrap().is_split());
        assert_eq!(user.init_params().len(), 1);
    }

    #[test]
    fn ir_json_roundtrip() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let json = ir.to_json();
        let back = DataflowIR::from_json(&json).unwrap();
        assert_eq!(ir, back);
        assert!(json.contains("buy_item"));
    }

    #[test]
    fn account_ir_self_edge_for_transfers() {
        let ir = ir_for(corpus::ACCOUNT_SOURCE);
        assert_eq!(
            ir.edges,
            vec![DataflowEdge {
                from: "Account".to_string(),
                to: "Account".to_string()
            }]
        );
        // transfer and transfer_audited are both split.
        assert_eq!(ir.state_machines.len(), 2);
    }

    #[test]
    fn compiled_methods_carry_param_effects_and_commutativity() {
        let ir = ir_for(corpus::ACCOUNT_SOURCE);
        let account = ir.operator("Account").unwrap();
        let audited = account.method("transfer_audited").unwrap();
        assert_eq!(audited.param_effects, vec![false, true, false]);
        assert!(audited.writes_ref_args, "derived bit stays consistent");
        assert!(!audited.commutative);
        let credit = account.method("credit").unwrap();
        assert!(credit.commutative && credit.writes_self);
        assert_eq!(credit.param_effects, vec![false]);
        let update = account.method("update").unwrap();
        assert!(!update.commutative && update.writes_self);
    }

    #[test]
    fn dot_contains_ingress_and_operators() {
        let ir = ir_for(corpus::TPCC_LITE_SOURCE);
        let dot = ir.to_dot();
        assert!(dot.contains("ingress"));
        assert!(dot.contains("Customer"));
        assert!(dot.contains("\"Customer\" -> \"District\""));
    }

    #[test]
    fn total_blocks_counts_simple_methods_as_one() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        assert!(ir.total_blocks() > 10);
    }
}
