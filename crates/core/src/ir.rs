//! The intermediate representation (Section 2.5): a stateful dataflow graph.
//!
//! Each entity class becomes a dataflow operator enriched with the
//! entity/method names it can run, their input/return types, their (possibly
//! split) bodies, and the per-method execution graphs. The IR is independent
//! of the target execution engine: the local runtime, StateFlow, and the
//! StateFun-style baseline all execute the same [`DataflowIR`].

use crate::analysis::AnalyzedProgram;
use crate::callgraph::CallGraph;
use crate::error::CompileResult;
use crate::layout::FieldLayout;
use crate::resolve::{resolve_method, ResolvedMethod};
use crate::split::{split_method_of, SplitMethod};
use crate::statemachine::StateMachine;
use entity_lang::ast::Stmt;
use entity_lang::Type;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a method executes on an operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodKind {
    /// No remote calls: the body executes in a single operator invocation.
    Simple {
        /// Original statement list.
        body: Vec<Stmt>,
    },
    /// Contains remote calls: executes as a sequence of split blocks.
    Split(SplitMethod),
}

/// A compiled method attached to an operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMethod {
    /// Method name.
    pub name: String,
    /// Parameters (name, type), excluding `self`.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub return_ty: Type,
    /// Name-based body (oracle interpreter, pretty-printing, state machines).
    pub kind: MethodKind,
    /// Slot-resolved executable body — what the runtimes interpret.
    pub resolved: ResolvedMethod,
}

impl CompiledMethod {
    /// True if this method was split.
    pub fn is_split(&self) -> bool {
        matches!(self.kind, MethodKind::Split(_))
    }
}

/// A dataflow operator: one per entity class, partitioned by the entity key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Entity class name.
    pub entity: String,
    /// Field types of the entity state.
    pub fields: BTreeMap<String, Type>,
    /// Dense field layout (declaration order), shared by every instance's
    /// [`crate::value::EntityState`].
    pub layout: Arc<FieldLayout>,
    /// The field used as partition key.
    pub key_field: String,
    /// Slot of the key field within [`OperatorSpec::layout`].
    pub key_slot: u32,
    /// Partition key type.
    pub key_type: Type,
    /// Compiled methods by name (including `__init__` and `__key__`).
    pub methods: BTreeMap<String, CompiledMethod>,
}

impl OperatorSpec {
    /// Look up a compiled method.
    pub fn method(&self, name: &str) -> Option<&CompiledMethod> {
        self.methods.get(name)
    }

    /// `__init__` parameter list.
    pub fn init_params(&self) -> &[(String, Type)] {
        self.methods
            .get("__init__")
            .map(|m| m.params.as_slice())
            .unwrap_or(&[])
    }
}

/// A directed operator-level edge: `from` invokes methods of `to`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataflowEdge {
    /// Calling operator.
    pub from: String,
    /// Called operator.
    pub to: String,
}

/// The engine-independent stateful dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowIR {
    /// Operators by entity name.
    pub operators: BTreeMap<String, OperatorSpec>,
    /// Operator-level edges induced by remote calls.
    pub edges: Vec<DataflowEdge>,
    /// The full method-level call graph.
    pub call_graph: CallGraph,
    /// Execution graphs of all split methods (documentation/inspection view).
    pub state_machines: Vec<StateMachine>,
}

impl DataflowIR {
    /// Build the IR from the analysis result, splitting composite methods.
    pub fn from_analysis(program: &AnalyzedProgram) -> CompileResult<Self> {
        let mut operators = BTreeMap::new();
        let mut state_machines = Vec::new();
        for entity_name in &program.entity_order {
            let entity = &program.entities[entity_name];
            // Slots follow field declaration order, so layouts are stable
            // across compiles of the same source (snapshots survive restarts).
            let layout = Arc::new(FieldLayout::new(
                entity
                    .field_order
                    .iter()
                    .map(|name| (name.clone(), entity.fields[name].clone()))
                    .collect(),
            ));
            let key_slot = layout.slot_of(&entity.key_field).ok_or_else(|| {
                crate::error::CompileError::analysis(
                    entity_lang::Span::synthetic(),
                    format!(
                        "key field `{}` of `{entity_name}` is not a declared field",
                        entity.key_field
                    ),
                )
            })?;
            let mut methods = BTreeMap::new();
            for method_name in &entity.method_order {
                let method = &entity.methods[method_name];
                let kind = if method.has_remote_calls {
                    let split = split_method_of(program, entity_name, method)?;
                    state_machines.push(StateMachine::from_split(&split));
                    MethodKind::Split(split)
                } else {
                    MethodKind::Simple {
                        body: method.body.clone(),
                    }
                };
                let resolved = resolve_method(&layout, &method.params, &kind)?;
                methods.insert(
                    method_name.clone(),
                    CompiledMethod {
                        name: method_name.clone(),
                        params: method.params.clone(),
                        return_ty: method.return_ty.clone(),
                        kind,
                        resolved,
                    },
                );
            }
            operators.insert(
                entity_name.clone(),
                OperatorSpec {
                    entity: entity_name.clone(),
                    fields: entity.fields.clone(),
                    layout,
                    key_field: entity.key_field.clone(),
                    key_slot,
                    key_type: entity.key_type.clone(),
                    methods,
                },
            );
        }
        let edges = program
            .call_graph
            .operator_edges()
            .into_iter()
            .map(|(from, to)| DataflowEdge { from, to })
            .collect();
        Ok(DataflowIR {
            operators,
            edges,
            call_graph: program.call_graph.clone(),
            state_machines,
        })
    }

    /// Look up an operator by entity name.
    pub fn operator(&self, entity: &str) -> Option<&OperatorSpec> {
        self.operators.get(entity)
    }

    /// Total number of split blocks across all operators.
    pub fn total_blocks(&self) -> usize {
        self.operators
            .values()
            .flat_map(|o| o.methods.values())
            .map(|m| match &m.kind {
                MethodKind::Split(s) => s.blocks.len(),
                MethodKind::Simple { .. } => 1,
            })
            .sum()
    }

    /// Serialize the IR to pretty-printed JSON (the portable artifact that a
    /// deployment tool would hand to a target dataflow engine).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("IR serialization cannot fail")
    }

    /// Parse an IR back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Render the operator-level dataflow (ingress → operators → egress) as DOT.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dataflow {\n  rankdir=LR;\n  ingress [shape=cds];\n  egress [shape=cds];\n");
        for name in self.operators.keys() {
            out.push_str(&format!("  \"{name}\" [shape=box];\n"));
            out.push_str(&format!("  ingress -> \"{name}\";\n  \"{name}\" -> egress;\n"));
        }
        for edge in &self.edges {
            out.push_str(&format!("  \"{}\" -> \"{}\" [style=bold];\n", edge.from, edge.to));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn ir_for(src: &str) -> DataflowIR {
        let (module, types) = frontend(src).unwrap();
        let program = analyze(&module, &types).unwrap();
        DataflowIR::from_analysis(&program).unwrap()
    }

    #[test]
    fn figure1_ir_has_two_operators_and_one_edge() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        assert_eq!(ir.operators.len(), 2);
        assert_eq!(
            ir.edges,
            vec![DataflowEdge {
                from: "User".to_string(),
                to: "Item".to_string()
            }]
        );
        let user = ir.operator("User").unwrap();
        assert!(user.method("buy_item").unwrap().is_split());
        assert!(!user.method("deposit").unwrap().is_split());
        assert_eq!(user.init_params().len(), 1);
    }

    #[test]
    fn ir_json_roundtrip() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        let json = ir.to_json();
        let back = DataflowIR::from_json(&json).unwrap();
        assert_eq!(ir, back);
        assert!(json.contains("buy_item"));
    }

    #[test]
    fn account_ir_self_edge_for_transfers() {
        let ir = ir_for(corpus::ACCOUNT_SOURCE);
        assert_eq!(
            ir.edges,
            vec![DataflowEdge {
                from: "Account".to_string(),
                to: "Account".to_string()
            }]
        );
        assert_eq!(ir.state_machines.len(), 1);
    }

    #[test]
    fn dot_contains_ingress_and_operators() {
        let ir = ir_for(corpus::TPCC_LITE_SOURCE);
        let dot = ir.to_dot();
        assert!(dot.contains("ingress"));
        assert!(dot.contains("Customer"));
        assert!(dot.contains("\"Customer\" -> \"District\""));
    }

    #[test]
    fn total_blocks_counts_simple_methods_as_one() {
        let ir = ir_for(corpus::FIGURE1_SOURCE);
        assert!(ir.total_blocks() > 10);
    }
}
