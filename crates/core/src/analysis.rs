//! First static-analysis pass (Section 2.2/2.3 of the paper).
//!
//! Extracts, per entity class: its fields, the names and signatures of its
//! methods, and the programmer-supplied types; then validates the
//! programming-model limitations that the front end cannot check on its own:
//!
//! * no recursion, direct or mutual (the state machine must stay finite);
//! * `self.*` calls may only target *simple* methods (methods without remote
//!   calls) — composite logic must flow through the dataflow;
//! * remote calls may not appear inside short-circuiting `and`/`or`
//!   expressions (splitting would change their evaluation semantics);
//! * `__init__`/`__key__` contain no remote calls.

use crate::callgraph::{walk_exprs, CallGraph, CallKind, MethodRef};
use crate::error::{CompileError, CompileResult};
use entity_lang::ast::{Expr, Module, Stmt};
use entity_lang::{ModuleTypes, Type};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A method after analysis: signature, local types, body, and remote-call info.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedMethod {
    /// Method name.
    pub name: String,
    /// Parameter names and types in declaration order.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub return_ty: Type,
    /// All local variable types (parameters included).
    pub locals: BTreeMap<String, Type>,
    /// The method body (original AST; splitting works on a copy).
    pub body: Vec<Stmt>,
    /// True if the body contains at least one remote call — such methods are
    /// *composite* and must be split (Section 2.4).
    pub has_remote_calls: bool,
    /// The distinct `(entity, method)` pairs this method calls remotely.
    pub remote_callees: Vec<(String, String)>,
    /// Source location of the `def` header (threaded through to
    /// [`crate::ir::CompiledMethod::span`] so verifier and lint diagnostics
    /// on a compiled — even deserialized — IR can point back at the source).
    pub span: entity_lang::Span,
}

impl AnalyzedMethod {
    /// True if the method has no remote calls and can run in a single
    /// operator invocation without splitting.
    pub fn is_simple(&self) -> bool {
        !self.has_remote_calls
    }
}

/// An entity class after analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedEntity {
    /// Entity class name (becomes the dataflow operator name).
    pub name: String,
    /// Field types.
    pub fields: BTreeMap<String, Type>,
    /// Field declaration order (used when rendering state).
    pub field_order: Vec<String>,
    /// The field used as partition key.
    pub key_field: String,
    /// Partition key type.
    pub key_type: Type,
    /// Analyzed methods by name.
    pub methods: BTreeMap<String, AnalyzedMethod>,
    /// Method declaration order.
    pub method_order: Vec<String>,
    /// Source location of the entity definition header (operator-level
    /// diagnostics).
    pub span: entity_lang::Span,
}

impl AnalyzedEntity {
    /// Look up a method.
    pub fn method(&self, name: &str) -> Option<&AnalyzedMethod> {
        self.methods.get(name)
    }
}

/// The result of static analysis over a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedProgram {
    /// Analyzed entities by name.
    pub entities: BTreeMap<String, AnalyzedEntity>,
    /// Entity declaration order.
    pub entity_order: Vec<String>,
    /// The inter-method call graph.
    pub call_graph: CallGraph,
    /// The front end's type summary (kept for downstream passes).
    pub types: ModuleTypes,
}

impl AnalyzedProgram {
    /// Look up an entity.
    pub fn entity(&self, name: &str) -> Option<&AnalyzedEntity> {
        self.entities.get(name)
    }

    /// Total number of methods across all entities.
    pub fn method_count(&self) -> usize {
        self.entities.values().map(|e| e.methods.len()).sum()
    }

    /// Names of methods that require splitting, as `(entity, method)` pairs.
    pub fn composite_methods(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for entity in self.entities.values() {
            for method in entity.methods.values() {
                if method.has_remote_calls {
                    out.push((entity.name.clone(), method.name.clone()));
                }
            }
        }
        out.sort();
        out
    }
}

/// Run the analysis pass.
pub fn analyze(module: &Module, types: &ModuleTypes) -> CompileResult<AnalyzedProgram> {
    let call_graph = CallGraph::build(module, types);

    // Limitation: no recursion — it would unroll into an infinite state machine.
    if let Some(cycle) = call_graph.find_cycle() {
        let rendered: Vec<String> = cycle.iter().map(|m| m.to_string()).collect();
        let span = module
            .entity(&cycle[0].entity)
            .and_then(|e| e.method(&cycle[0].method))
            .map(|m| m.span)
            .unwrap_or_else(entity_lang::Span::synthetic);
        return Err(CompileError::analysis(
            span,
            format!(
                "recursive call chain is not supported (it cannot be unrolled into a finite \
                 state machine): {}",
                rendered.join(" -> ")
            ),
        ));
    }

    let mut entities = BTreeMap::new();
    let mut entity_order = Vec::new();
    for entity_def in &module.entities {
        let entity_types = types.entity(&entity_def.name).ok_or_else(|| {
            CompileError::analysis(
                entity_def.span,
                format!("missing type information for entity `{}`", entity_def.name),
            )
        })?;

        let mut methods = BTreeMap::new();
        let mut method_order = Vec::new();
        for method_def in &entity_def.methods {
            let method_types = entity_types.methods.get(&method_def.name).ok_or_else(|| {
                CompileError::analysis(
                    method_def.span,
                    format!("missing type information for method `{}`", method_def.name),
                )
            })?;

            check_no_remote_call_in_short_circuit(&method_def.body, method_types)?;

            let mut remote_callees = Vec::new();
            walk_exprs(&method_def.body, &mut |expr| {
                if let Expr::Call {
                    recv: Some(var),
                    method,
                    ..
                } = expr
                {
                    if let Some(entity) =
                        method_types.locals.get(var).and_then(|ty| ty.entity_name())
                    {
                        remote_callees.push((entity.to_string(), method.clone()));
                    }
                }
            });
            remote_callees.sort();
            remote_callees.dedup();
            let has_remote_calls = !remote_callees.is_empty();

            if (method_def.is_init() || method_def.is_key()) && has_remote_calls {
                return Err(CompileError::analysis(
                    method_def.span,
                    format!("`{}` may not perform remote calls", method_def.name),
                ));
            }

            methods.insert(
                method_def.name.clone(),
                AnalyzedMethod {
                    name: method_def.name.clone(),
                    params: method_types.params.clone(),
                    return_ty: method_types.return_ty.clone(),
                    locals: method_types.locals.clone(),
                    body: method_def.body.clone(),
                    has_remote_calls,
                    remote_callees,
                    span: method_def.span,
                },
            );
            method_order.push(method_def.name.clone());
        }

        entities.insert(
            entity_def.name.clone(),
            AnalyzedEntity {
                name: entity_def.name.clone(),
                fields: entity_types.fields.clone(),
                field_order: entity_def.fields.iter().map(|f| f.name.clone()).collect(),
                key_field: entity_types.key_field.clone(),
                key_type: entity_types.key_type.clone(),
                methods,
                method_order,
                span: entity_def.span,
            },
        );
        entity_order.push(entity_def.name.clone());
    }

    // Limitation: `self.*` calls may only target simple methods. A composite
    // callee would have to suspend *inside* the caller's invocation, which the
    // dataflow cannot express without splitting the caller against its own
    // operator — the paper routes such logic through the dataflow instead.
    for edge in &call_graph.edges {
        if edge.kind == CallKind::Local {
            let callee_composite = entities
                .get(&edge.callee.entity)
                .and_then(|e| e.methods.get(&edge.callee.method))
                .map(|m| m.has_remote_calls)
                .unwrap_or(false);
            if callee_composite {
                let span = method_span(module, &edge.caller);
                return Err(CompileError::analysis(
                    span,
                    format!(
                        "`{}` calls `self.{}()`, which performs remote calls; methods invoked \
                         on `self` must be simple (no remote calls)",
                        edge.caller, edge.callee.method
                    ),
                ));
            }
        }
    }

    Ok(AnalyzedProgram {
        entities,
        entity_order,
        call_graph,
        types: types.clone(),
    })
}

fn method_span(module: &Module, method: &MethodRef) -> entity_lang::Span {
    module
        .entity(&method.entity)
        .and_then(|e| e.method(&method.method))
        .map(|m| m.span)
        .unwrap_or_else(entity_lang::Span::synthetic)
}

/// Reject remote calls nested inside `and` / `or`: lifting them out of the
/// short-circuiting operands would change evaluation semantics.
fn check_no_remote_call_in_short_circuit(
    body: &[Stmt],
    method_types: &entity_lang::MethodTypes,
) -> CompileResult<()> {
    let mut error: Option<CompileError> = None;
    walk_exprs(body, &mut |expr| {
        if error.is_some() {
            return;
        }
        if let Expr::Logic {
            left, right, span, ..
        } = expr
        {
            for side in [left.as_ref(), right.as_ref()] {
                let mut found = false;
                side.walk(&mut |e| {
                    if let Expr::Call {
                        recv: Some(var), ..
                    } = e
                    {
                        if method_types
                            .locals
                            .get(var)
                            .map(|t| t.is_entity())
                            .unwrap_or(false)
                        {
                            found = true;
                        }
                    }
                });
                if found {
                    error = Some(CompileError::analysis(
                        *span,
                        "remote calls are not allowed inside `and`/`or` expressions; assign \
                         the call result to a variable first",
                    ));
                }
            }
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_lang::{corpus, frontend};

    fn analyze_src(src: &str) -> CompileResult<AnalyzedProgram> {
        let (module, types) = frontend(src).map_err(CompileError::from)?;
        analyze(&module, &types)
    }

    #[test]
    fn figure1_analysis_classifies_methods() {
        let program = analyze_src(corpus::FIGURE1_SOURCE).unwrap();
        let user = program.entity("User").unwrap();
        assert!(user.method("deposit").unwrap().is_simple());
        assert!(user.method("buy_item").unwrap().has_remote_calls);
        assert_eq!(
            user.method("buy_item").unwrap().remote_callees,
            vec![
                ("Item".to_string(), "get_price".to_string()),
                ("Item".to_string(), "update_stock".to_string())
            ]
        );
        let item = program.entity("Item").unwrap();
        assert!(item.method("update_stock").unwrap().is_simple());
        assert_eq!(
            program.composite_methods(),
            vec![("User".to_string(), "buy_item".to_string())]
        );
    }

    #[test]
    fn key_metadata_is_extracted() {
        let program = analyze_src(corpus::FIGURE1_SOURCE).unwrap();
        let item = program.entity("Item").unwrap();
        assert_eq!(item.key_field, "item_id");
        assert_eq!(item.key_type, Type::Str);
        assert_eq!(item.field_order, vec!["item_id", "stock", "price"]);
    }

    #[test]
    fn all_corpus_programs_analyze() {
        for (name, src) in entity_lang::corpus::all_programs() {
            analyze_src(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let src = r#"
entity Counter:
    name: str
    value: int

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def __key__(self) -> str:
        return self.name

    def helper(self) -> int:
        return self.count_down(1)

    def count_down(self, n: int) -> int:
        return self.helper()
"#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message().contains("recursive"), "{err}");
    }

    #[test]
    fn remote_recursion_across_entities_is_rejected() {
        let src = r#"
entity Ping:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def ping(self, n: int, other: Pong) -> int:
        v: int = other.pong(n)
        return v

entity Pong:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def pong(self, n: int) -> int:
        return n

    def pong_back(self, n: int, other: Ping, again: Pong) -> int:
        v: int = other.ping(n, again)
        return v
"#;
        // Ping.ping -> Pong.pong is fine; add a cycle by calling pong_back from ping.
        let program = analyze_src(src).unwrap();
        assert!(
            program
                .entity("Ping")
                .unwrap()
                .method("ping")
                .unwrap()
                .has_remote_calls
        );

        let cyclic = r#"
entity Ping:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def ping(self, n: int, other: Pong, me: Ping) -> int:
        v: int = other.pong(n, me, other)
        return v

entity Pong:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def pong(self, n: int, other: Ping, me: Pong) -> int:
        v: int = other.ping(n, me, other)
        return v
"#;
        let err = analyze_src(cyclic).unwrap_err();
        assert!(err.message().contains("recursive"), "{err}");
    }

    #[test]
    fn self_call_to_composite_method_is_rejected() {
        let src = r#"
entity Shop:
    name: str
    sold: int

    def __init__(self, name: str):
        self.name = name
        self.sold = 0

    def __key__(self) -> str:
        return self.name

    def sell(self, amount: int, other: Shop) -> int:
        v: int = other.record(amount)
        return v

    def record(self, amount: int) -> int:
        self.sold += amount
        return self.sold

    def sell_twice(self, amount: int, other: Shop) -> int:
        a: int = self.sell(amount, other)
        return a
"#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message().contains("must be simple"), "{err}");
    }

    #[test]
    fn remote_call_in_boolean_operator_is_rejected() {
        let src = r#"
entity Check:
    name: str
    flag: bool

    def __init__(self, name: str):
        self.name = name
        self.flag = False

    def __key__(self) -> str:
        return self.name

    def ok(self) -> bool:
        return self.flag

    def both(self, other: Check) -> bool:
        result: bool = self.flag and other.ok()
        return result
"#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message().contains("and`/`or"), "{err}");
    }

    #[test]
    fn method_count_counts_everything() {
        let program = analyze_src(corpus::FIGURE1_SOURCE).unwrap();
        // Item: __init__, __key__, get_price, restock, update_stock = 5
        // User: __init__, __key__, deposit, get_balance, buy_item = 5
        assert_eq!(program.method_count(), 10);
    }
}
