//! Function call graph (Section 2.3 of the paper).
//!
//! The second round of static analysis identifies which entity methods call
//! which other methods. Remote edges (calls on entity-typed references)
//! determine where functions must be split and which dataflow edges exist
//! between operators; local edges (calls on `self`) are executed inline.
//! The call graph is also used to reject recursion, which the programming
//! model prohibits because it would unroll into an infinite state machine.

use entity_lang::ast::{Expr, Module, Stmt};
use entity_lang::ModuleTypes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A fully-qualified method reference, `Entity.method`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodRef {
    /// Entity class name.
    pub entity: String,
    /// Method name.
    pub method: String,
}

impl MethodRef {
    /// Create a method reference.
    pub fn new(entity: impl Into<String>, method: impl Into<String>) -> Self {
        MethodRef {
            entity: entity.into(),
            method: method.into(),
        }
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.entity, self.method)
    }
}

/// Whether a call stays within the same entity instance or crosses to another
/// (possibly remote) entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CallKind {
    /// `self.helper(...)` — executed inline by the operator.
    Local,
    /// `item.update_stock(...)` — becomes a dataflow edge and a function split.
    Remote,
}

/// One call-graph edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallEdge {
    /// Calling method.
    pub caller: MethodRef,
    /// Called method.
    pub callee: MethodRef,
    /// Local or remote.
    pub kind: CallKind,
}

/// The static call graph of an entity program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallGraph {
    /// All edges (deduplicated, in deterministic order).
    pub edges: Vec<CallEdge>,
}

impl CallGraph {
    /// Build the call graph from the AST and the type summary.
    pub fn build(module: &Module, types: &ModuleTypes) -> CallGraph {
        let mut edges = BTreeSet::new();
        for entity in &module.entities {
            let Some(entity_types) = types.entity(&entity.name) else {
                continue;
            };
            for method in &entity.methods {
                let Some(method_types) = entity_types.methods.get(&method.name) else {
                    continue;
                };
                let caller = MethodRef::new(&entity.name, &method.name);
                for_each_call(&method.body, &mut |recv, callee_name| {
                    let (callee_entity, kind) = match recv {
                        None => (entity.name.clone(), CallKind::Local),
                        Some(var) => match method_types.locals.get(var) {
                            Some(ty) => match ty.entity_name() {
                                Some(e) => (e.to_string(), CallKind::Remote),
                                None => return,
                            },
                            None => return,
                        },
                    };
                    edges.insert((
                        caller.clone(),
                        MethodRef::new(callee_entity, callee_name),
                        kind,
                    ));
                });
            }
        }
        CallGraph {
            edges: edges
                .into_iter()
                .map(|(caller, callee, kind)| CallEdge {
                    caller,
                    callee,
                    kind,
                })
                .collect(),
        }
    }

    /// All edges out of `caller`.
    pub fn callees(&self, caller: &MethodRef) -> Vec<&CallEdge> {
        self.edges.iter().filter(|e| &e.caller == caller).collect()
    }

    /// All remote edges (the ones that induce dataflow edges between operators).
    pub fn remote_edges(&self) -> Vec<&CallEdge> {
        self.edges
            .iter()
            .filter(|e| e.kind == CallKind::Remote)
            .collect()
    }

    /// The operator-level edges: pairs of entity classes with at least one
    /// remote call between them.
    pub fn operator_edges(&self) -> BTreeSet<(String, String)> {
        self.remote_edges()
            .into_iter()
            .map(|e| (e.caller.entity.clone(), e.callee.entity.clone()))
            .collect()
    }

    /// Find a call cycle (recursion, direct or mutual), if any.
    ///
    /// Returns the cycle as a list of method references, caller first.
    pub fn find_cycle(&self) -> Option<Vec<MethodRef>> {
        let mut adjacency: BTreeMap<&MethodRef, Vec<&MethodRef>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency
                .entry(&edge.caller)
                .or_default()
                .push(&edge.callee);
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        let mut marks: BTreeMap<&MethodRef, Mark> = BTreeMap::new();
        let mut stack: Vec<&MethodRef> = Vec::new();

        fn visit<'a>(
            node: &'a MethodRef,
            adjacency: &BTreeMap<&'a MethodRef, Vec<&'a MethodRef>>,
            marks: &mut BTreeMap<&'a MethodRef, Mark>,
            stack: &mut Vec<&'a MethodRef>,
        ) -> Option<Vec<MethodRef>> {
            match marks.get(node) {
                Some(Mark::Done) => return None,
                Some(Mark::InProgress) => {
                    let pos = stack.iter().position(|n| *n == node).unwrap_or(0);
                    let mut cycle: Vec<MethodRef> =
                        stack[pos..].iter().map(|n| (*n).clone()).collect();
                    cycle.push(node.clone());
                    return Some(cycle);
                }
                None => {}
            }
            marks.insert(node, Mark::InProgress);
            stack.push(node);
            if let Some(nexts) = adjacency.get(node) {
                for next in nexts {
                    if let Some(cycle) = visit(next, adjacency, marks, stack) {
                        return Some(cycle);
                    }
                }
            }
            stack.pop();
            marks.insert(node, Mark::Done);
            None
        }

        let nodes: Vec<&MethodRef> = adjacency.keys().copied().collect();
        for node in nodes {
            if let Some(cycle) = visit(node, &adjacency, &mut marks, &mut stack) {
                return Some(cycle);
            }
        }
        None
    }

    /// Render the call graph in Graphviz DOT format (useful for documentation
    /// and debugging the IR).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n");
        for edge in &self.edges {
            let style = match edge.kind {
                CallKind::Remote => "solid",
                CallKind::Local => "dashed",
            };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [style={style}];\n",
                edge.caller, edge.callee
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Walk every statement (recursively) of a method body.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in stmts {
        f(stmt);
        match stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Walk every expression appearing anywhere in a method body.
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    walk_stmts(stmts, &mut |stmt| match stmt {
        Stmt::Assign { value, .. } | Stmt::AugAssign { value, .. } => value.walk(f),
        Stmt::ExprStmt { expr, .. } => expr.walk(f),
        Stmt::Return { value: Some(v), .. } => v.walk(f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.walk(f),
        Stmt::For { iter, .. } => iter.walk(f),
        _ => {}
    });
}

/// Invoke `f(recv, method)` for every method-call expression in `stmts`.
pub fn for_each_call<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(Option<&'a str>, &'a str)) {
    walk_exprs(stmts, &mut |expr| {
        if let Expr::Call { recv, method, .. } = expr {
            f(recv.as_deref(), method);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use entity_lang::{corpus, frontend};

    fn graph_for(src: &str) -> CallGraph {
        let (module, types) = frontend(src).unwrap();
        CallGraph::build(&module, &types)
    }

    #[test]
    fn figure1_has_remote_edges_from_user_to_item() {
        let graph = graph_for(corpus::FIGURE1_SOURCE);
        let ops = graph.operator_edges();
        assert!(ops.contains(&("User".to_string(), "Item".to_string())));
        let remote: Vec<String> = graph
            .remote_edges()
            .iter()
            .map(|e| format!("{} -> {}", e.caller, e.callee))
            .collect();
        assert!(remote.contains(&"User.buy_item -> Item.get_price".to_string()));
        assert!(remote.contains(&"User.buy_item -> Item.update_stock".to_string()));
    }

    #[test]
    fn figure1_has_no_cycle() {
        let graph = graph_for(corpus::FIGURE1_SOURCE);
        assert_eq!(graph.find_cycle(), None);
    }

    #[test]
    fn account_transfer_edge_is_self_entity_but_remote_kind() {
        let graph = graph_for(corpus::ACCOUNT_SOURCE);
        let edge = graph
            .edges
            .iter()
            .find(|e| e.caller.method == "transfer" && e.callee.method == "credit")
            .expect("transfer -> credit edge");
        assert_eq!(edge.kind, CallKind::Remote);
        assert_eq!(edge.callee.entity, "Account");
    }

    #[test]
    fn detects_mutual_recursion() {
        let src = r#"
entity A:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def ping(self, n: int, other: B) -> int:
        v: int = other.pong(n, self_ref)
        return v

    def self_call(self) -> int:
        return 1

entity B:
    name: str

    def __init__(self, name: str):
        self.name = name

    def __key__(self) -> str:
        return self.name

    def pong(self, n: int, other: A) -> int:
        v: int = other.ping(n, other_ref)
        return v
"#;
        // The variables `self_ref`/`other_ref` don't typecheck, so build the
        // graph from a hand-written edge list instead.
        let _ = src;
        let graph = CallGraph {
            edges: vec![
                CallEdge {
                    caller: MethodRef::new("A", "ping"),
                    callee: MethodRef::new("B", "pong"),
                    kind: CallKind::Remote,
                },
                CallEdge {
                    caller: MethodRef::new("B", "pong"),
                    callee: MethodRef::new("A", "ping"),
                    kind: CallKind::Remote,
                },
            ],
        };
        let cycle = graph.find_cycle().expect("cycle");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn detects_direct_recursion() {
        let graph = CallGraph {
            edges: vec![CallEdge {
                caller: MethodRef::new("A", "f"),
                callee: MethodRef::new("A", "f"),
                kind: CallKind::Local,
            }],
        };
        let cycle = graph.find_cycle().unwrap();
        assert_eq!(cycle[0], MethodRef::new("A", "f"));
    }

    #[test]
    fn dot_output_contains_edges() {
        let graph = graph_for(corpus::FIGURE1_SOURCE);
        let dot = graph.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("User.buy_item"));
    }

    #[test]
    fn tpcc_new_order_touches_district_and_warehouse() {
        let graph = graph_for(corpus::TPCC_LITE_SOURCE);
        let ops = graph.operator_edges();
        assert!(ops.contains(&("Customer".to_string(), "District".to_string())));
        assert!(ops.contains(&("Customer".to_string(), "Warehouse".to_string())));
    }
}
