//! Function splitting (Section 2.4 of the paper).
//!
//! A streaming dataflow operator must never block waiting for a remote call.
//! The compiler therefore splits every *composite* method (a method with at
//! least one remote call) into a sequence of *blocks* in continuation-passing
//! style: execution runs up to the remote call, the call's arguments are
//! evaluated, the invocation is shipped through the dataflow, and when the
//! response event arrives the method resumes at the next block with the
//! result bound to a fresh variable.
//!
//! Control-flow constructs are also lowered into blocks: `if` becomes a
//! conditional branch between blocks, `for`-loops over lists are desugared
//! into an index-tracking header block (this is the "additional state" the
//! paper's state machine keeps for loop iterations), and `while` loops become
//! a header block re-entered through a back edge.

use crate::analysis::{AnalyzedMethod, AnalyzedProgram};
use crate::error::{CompileError, CompileResult};
use entity_lang::ast::{BinOp, CmpOp, Expr, Stmt, Target};
use entity_lang::{Span, Type};
use serde::{Deserialize, Serialize};

/// Identifier of a block within a split method.
pub type BlockId = usize;

/// A straight-line statement inside a block (no remote calls, no control flow).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlatStmt {
    /// `target = expr`.
    Assign {
        /// Assignment target.
        target: Target,
        /// Right-hand side (free of remote calls).
        expr: Expr,
    },
    /// `target op= expr`.
    AugAssign {
        /// Assignment target.
        target: Target,
        /// Operator.
        op: BinOp,
        /// Right-hand side (free of remote calls).
        expr: Expr,
    },
    /// Expression evaluated for its effect (local `self.*` call).
    Expr {
        /// The expression (free of remote calls).
        expr: Expr,
    },
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Continue with another block of the same method (no event required).
    Jump(BlockId),
    /// Conditional continuation.
    Branch {
        /// Condition expression (free of remote calls).
        cond: Expr,
        /// Block for the true path.
        then_block: BlockId,
        /// Block for the false path.
        else_block: BlockId,
    },
    /// The method completes, optionally returning a value.
    Return(Option<Expr>),
    /// The split point: invoke a method of another entity and suspend.
    RemoteCall {
        /// Local variable holding the entity reference to call.
        recv_var: String,
        /// Target entity class (statically known from the variable's type).
        target_entity: String,
        /// Method to invoke.
        method: String,
        /// Argument expressions (free of remote calls).
        args: Vec<Expr>,
        /// Variable that receives the return value when execution resumes.
        result_var: String,
        /// Block to resume at once the response event arrives.
        resume_block: BlockId,
    },
}

impl Terminator {
    /// True if this terminator suspends the invocation (a split point).
    pub fn is_split_point(&self) -> bool {
        matches!(self, Terminator::RemoteCall { .. })
    }
}

/// One block of a split method. The paper names these `method_0`,
/// `method_1`, … — [`Block::label`] follows the same convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block id (index into [`SplitMethod::blocks`]).
    pub id: BlockId,
    /// Human-readable label, e.g. `buy_item_0`.
    pub label: String,
    /// Straight-line statements.
    pub stmts: Vec<FlatStmt>,
    /// How the block ends.
    pub terminator: Terminator,
}

/// A composite method after splitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitMethod {
    /// Owning entity.
    pub entity: String,
    /// Method name.
    pub method: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub return_ty: Type,
    /// All blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of synthetic variables introduced by splitting (call results,
    /// loop iterators); reported by the overhead experiment.
    pub synthetic_vars: usize,
}

impl SplitMethod {
    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        0
    }

    /// Number of split points (remote calls).
    pub fn split_points(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.terminator.is_split_point())
            .count()
    }

    /// Get a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id]
    }
}

/// Split a composite method into blocks.
///
/// `method` must come from `program` (its local-variable types are used to
/// resolve which calls are remote).
pub fn split_method(
    program: &AnalyzedProgram,
    method: &AnalyzedMethod,
) -> CompileResult<SplitMethod> {
    let entity = program
        .entities
        .values()
        .find(|e| {
            e.methods.contains_key(&method.name) && {
                // Identify the owning entity by pointer-ish equality on content.
                e.methods
                    .get(&method.name)
                    .map(|m| m == method)
                    .unwrap_or(false)
            }
        })
        .map(|e| e.name.clone())
        .unwrap_or_else(|| "<unknown>".to_string());
    split_method_of(program, &entity, method)
}

/// Split `method` belonging to `entity_name`.
pub fn split_method_of(
    program: &AnalyzedProgram,
    entity_name: &str,
    method: &AnalyzedMethod,
) -> CompileResult<SplitMethod> {
    // The analysed program is accepted for API symmetry with ;
    // all information needed for splitting lives in the method itself.
    let _ = program;
    let mut builder = Builder {
        method,
        blocks: Vec::new(),
        current: 0,
        synthetic: 0,
        loop_stack: Vec::new(),
    };
    builder.new_block();
    let final_block = builder.lower_stmts(&method.body)?;
    // Fall-through at the end of the body returns None (Python semantics).
    builder.terminate(final_block, Terminator::Return(None));
    let blocks = builder
        .blocks
        .into_iter()
        .enumerate()
        .map(|(id, draft)| Block {
            id,
            label: format!("{}_{}", method.name, id),
            stmts: draft.stmts,
            terminator: draft.terminator.unwrap_or(Terminator::Return(None)),
        })
        .collect();
    Ok(SplitMethod {
        entity: entity_name.to_string(),
        method: method.name.clone(),
        params: method.params.clone(),
        return_ty: method.return_ty.clone(),
        blocks,
        synthetic_vars: builder.synthetic,
    })
}

struct BlockDraft {
    stmts: Vec<FlatStmt>,
    terminator: Option<Terminator>,
}

struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct Builder<'a> {
    method: &'a AnalyzedMethod,
    blocks: Vec<BlockDraft>,
    current: BlockId,
    synthetic: usize,
    loop_stack: Vec<LoopCtx>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BlockDraft {
            stmts: Vec::new(),
            terminator: None,
        });
        let id = self.blocks.len() - 1;
        self.current = id;
        id
    }

    fn fresh_var(&mut self, prefix: &str) -> String {
        let name = format!("__{prefix}_{}", self.synthetic);
        self.synthetic += 1;
        name
    }

    fn push_stmt(&mut self, block: BlockId, stmt: FlatStmt) {
        self.blocks[block].stmts.push(stmt);
    }

    fn terminate(&mut self, block: BlockId, terminator: Terminator) {
        let slot = &mut self.blocks[block].terminator;
        if slot.is_none() {
            *slot = Some(terminator);
        }
    }

    fn is_terminated(&self, block: BlockId) -> bool {
        self.blocks[block].terminator.is_some()
    }

    /// True if `var` holds an entity reference in this method.
    fn entity_of_var(&self, var: &str) -> Option<String> {
        self.method
            .locals
            .get(var)
            .and_then(|ty| ty.entity_name())
            .map(str::to_string)
    }

    /// Lower a statement list starting in `self.current`; returns the block
    /// where control continues afterwards.
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> CompileResult<BlockId> {
        let mut cur = self.current;
        for stmt in stmts {
            if self.is_terminated(cur) {
                // Unreachable code after return/break/continue: place it in a
                // fresh block so it stays out of the executed path.
                cur = self.new_block();
            }
            cur = self.lower_stmt(stmt, cur)?;
        }
        self.current = cur;
        Ok(cur)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: BlockId) -> CompileResult<BlockId> {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let (expr, cur) = self.lift_expr(value, cur)?;
                self.push_stmt(
                    cur,
                    FlatStmt::Assign {
                        target: target.clone(),
                        expr,
                    },
                );
                Ok(cur)
            }
            Stmt::AugAssign {
                target, op, value, ..
            } => {
                let (expr, cur) = self.lift_expr(value, cur)?;
                self.push_stmt(
                    cur,
                    FlatStmt::AugAssign {
                        target: target.clone(),
                        op: *op,
                        expr,
                    },
                );
                Ok(cur)
            }
            Stmt::ExprStmt { expr, .. } => {
                // A bare remote call used as a statement still needs lifting
                // (its result is simply discarded).
                let (expr, cur) = self.lift_expr(expr, cur)?;
                // Skip pure variable references produced by lifting a bare call.
                if !matches!(expr, Expr::Name(_, _)) {
                    self.push_stmt(cur, FlatStmt::Expr { expr });
                }
                Ok(cur)
            }
            Stmt::Return { value, .. } => {
                let (value, cur) = match value {
                    Some(v) => {
                        let (e, c) = self.lift_expr(v, cur)?;
                        (Some(e), c)
                    }
                    None => (None, cur),
                };
                self.terminate(cur, Terminator::Return(value));
                Ok(cur)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let (cond, cur) = self.lift_expr(cond, cur)?;
                let then_block = self.new_block();
                let else_block = self.new_block();
                let join_block = self.new_block();
                self.terminate(
                    cur,
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    },
                );
                self.current = then_block;
                let then_end = self.lower_stmts(then_body)?;
                self.terminate(then_end, Terminator::Jump(join_block));
                self.current = else_block;
                let else_end = self.lower_stmts(else_body)?;
                self.terminate(else_end, Terminator::Jump(join_block));
                self.current = join_block;
                Ok(join_block)
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                self.terminate(cur, Terminator::Jump(header));
                self.current = header;
                // The condition is re-evaluated (and any remote calls in it
                // re-issued) on every iteration because the back edge targets
                // the header.
                let (cond, cond_end) = self.lift_expr(cond, header)?;
                let body_block = self.new_block();
                let exit_block = self.new_block();
                self.terminate(
                    cond_end,
                    Terminator::Branch {
                        cond,
                        then_block: body_block,
                        else_block: exit_block,
                    },
                );
                self.loop_stack.push(LoopCtx {
                    continue_target: header,
                    break_target: exit_block,
                });
                self.current = body_block;
                let body_end = self.lower_stmts(body)?;
                self.terminate(body_end, Terminator::Jump(header));
                self.loop_stack.pop();
                self.current = exit_block;
                Ok(exit_block)
            }
            Stmt::For {
                var, iter, body, ..
            } => {
                // Desugar into an index-tracked loop; the index/iterable
                // variables are the "additional state" the paper's state
                // machine carries for loops.
                let (iter_expr, cur) = self.lift_expr(iter, cur)?;
                let iter_var = self.fresh_var("iter");
                let idx_var = self.fresh_var("idx");
                let span = Span::synthetic();
                self.push_stmt(
                    cur,
                    FlatStmt::Assign {
                        target: Target::Name(iter_var.clone()),
                        expr: iter_expr,
                    },
                );
                self.push_stmt(
                    cur,
                    FlatStmt::Assign {
                        target: Target::Name(idx_var.clone()),
                        expr: Expr::Int(0, span),
                    },
                );
                let header = self.new_block();
                self.terminate(cur, Terminator::Jump(header));
                let body_block = self.new_block();
                let exit_block = self.new_block();
                let cond = Expr::Compare {
                    op: CmpOp::Lt,
                    left: Box::new(Expr::Name(idx_var.clone(), span)),
                    right: Box::new(Expr::Builtin {
                        name: "len".to_string(),
                        args: vec![Expr::Name(iter_var.clone(), span)],
                        span,
                    }),
                    span,
                };
                self.terminate(
                    header,
                    Terminator::Branch {
                        cond,
                        then_block: body_block,
                        else_block: exit_block,
                    },
                );
                // body: var = iter[idx]; idx += 1; <body>
                self.push_stmt(
                    body_block,
                    FlatStmt::Assign {
                        target: Target::Name(var.clone()),
                        expr: Expr::Index {
                            obj: Box::new(Expr::Name(iter_var.clone(), span)),
                            index: Box::new(Expr::Name(idx_var.clone(), span)),
                            span,
                        },
                    },
                );
                self.push_stmt(
                    body_block,
                    FlatStmt::AugAssign {
                        target: Target::Name(idx_var.clone()),
                        op: BinOp::Add,
                        expr: Expr::Int(1, span),
                    },
                );
                self.loop_stack.push(LoopCtx {
                    continue_target: header,
                    break_target: exit_block,
                });
                self.current = body_block;
                let body_end = self.lower_stmts(body)?;
                self.terminate(body_end, Terminator::Jump(header));
                self.loop_stack.pop();
                self.current = exit_block;
                Ok(exit_block)
            }
            Stmt::Pass { .. } => Ok(cur),
            Stmt::Break { span } => {
                let target = self
                    .loop_stack
                    .last()
                    .map(|l| l.break_target)
                    .ok_or_else(|| CompileError::analysis(*span, "`break` outside of a loop"))?;
                self.terminate(cur, Terminator::Jump(target));
                Ok(cur)
            }
            Stmt::Continue { span } => {
                let target = self
                    .loop_stack
                    .last()
                    .map(|l| l.continue_target)
                    .ok_or_else(|| CompileError::analysis(*span, "`continue` outside of a loop"))?;
                self.terminate(cur, Terminator::Jump(target));
                Ok(cur)
            }
        }
    }

    /// Rewrite `expr` so it contains no remote calls, splitting the current
    /// block at every remote call encountered (in evaluation order). Returns
    /// the rewritten expression and the block in which evaluation finishes.
    fn lift_expr(&mut self, expr: &Expr, cur: BlockId) -> CompileResult<(Expr, BlockId)> {
        match expr {
            Expr::Call {
                recv: Some(var),
                method,
                args,
                span,
            } if self.entity_of_var(var).is_some() => {
                // Remote call: lift arguments first (left-to-right), then split.
                let mut cur = cur;
                let mut lifted_args = Vec::with_capacity(args.len());
                for arg in args {
                    let (e, c) = self.lift_expr(arg, cur)?;
                    lifted_args.push(e);
                    cur = c;
                }
                let target_entity = self.entity_of_var(var).expect("checked by guard");
                let result_var = self.fresh_var("call");
                let resume_block = self.blocks.len();
                self.terminate(
                    cur,
                    Terminator::RemoteCall {
                        recv_var: var.clone(),
                        target_entity,
                        method: method.clone(),
                        args: lifted_args,
                        result_var: result_var.clone(),
                        resume_block,
                    },
                );
                let next = self.new_block();
                debug_assert_eq!(next, resume_block);
                Ok((Expr::Name(result_var, *span), next))
            }
            Expr::Call {
                recv,
                method,
                args,
                span,
            } => {
                // Local (`self.*`) call: keep as an expression, but its
                // arguments may still contain remote calls.
                let mut cur = cur;
                let mut lifted_args = Vec::with_capacity(args.len());
                for arg in args {
                    let (e, c) = self.lift_expr(arg, cur)?;
                    lifted_args.push(e);
                    cur = c;
                }
                Ok((
                    Expr::Call {
                        recv: recv.clone(),
                        method: method.clone(),
                        args: lifted_args,
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::Builtin { name, args, span } => {
                let mut cur = cur;
                let mut lifted_args = Vec::with_capacity(args.len());
                for arg in args {
                    let (e, c) = self.lift_expr(arg, cur)?;
                    lifted_args.push(e);
                    cur = c;
                }
                Ok((
                    Expr::Builtin {
                        name: name.clone(),
                        args: lifted_args,
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::Binary {
                op,
                left,
                right,
                span,
            } => {
                let (l, cur) = self.lift_expr(left, cur)?;
                let (r, cur) = self.lift_expr(right, cur)?;
                Ok((
                    Expr::Binary {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::Compare {
                op,
                left,
                right,
                span,
            } => {
                let (l, cur) = self.lift_expr(left, cur)?;
                let (r, cur) = self.lift_expr(right, cur)?;
                Ok((
                    Expr::Compare {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::Logic {
                op,
                left,
                right,
                span,
            } => {
                // Analysis guarantees no remote calls inside; recurse anyway so
                // nested local calls are handled uniformly.
                let (l, cur) = self.lift_expr(left, cur)?;
                let (r, cur) = self.lift_expr(right, cur)?;
                Ok((
                    Expr::Logic {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::Unary { op, operand, span } => {
                let (e, cur) = self.lift_expr(operand, cur)?;
                Ok((
                    Expr::Unary {
                        op: *op,
                        operand: Box::new(e),
                        span: *span,
                    },
                    cur,
                ))
            }
            Expr::List(items, span) => {
                let mut cur = cur;
                let mut lifted = Vec::with_capacity(items.len());
                for item in items {
                    let (e, c) = self.lift_expr(item, cur)?;
                    lifted.push(e);
                    cur = c;
                }
                Ok((Expr::List(lifted, *span), cur))
            }
            Expr::Index { obj, index, span } => {
                let (o, cur) = self.lift_expr(obj, cur)?;
                let (i, cur) = self.lift_expr(index, cur)?;
                Ok((
                    Expr::Index {
                        obj: Box::new(o),
                        index: Box::new(i),
                        span: *span,
                    },
                    cur,
                ))
            }
            // Literals, names, self-fields: nothing to lift.
            other => Ok((other.clone(), cur)),
        }
    }
}

/// Split every composite method of every entity in the program.
pub fn split_program(program: &AnalyzedProgram) -> CompileResult<Vec<SplitMethod>> {
    let mut out = Vec::new();
    for entity_name in &program.entity_order {
        let entity = &program.entities[entity_name];
        for method_name in &entity.method_order {
            let method = &entity.methods[method_name];
            if method.has_remote_calls {
                out.push(split_method_of(program, entity_name, method)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn split_of(src: &str, entity: &str, method: &str) -> SplitMethod {
        let (module, types) = frontend(src).unwrap();
        let program = analyze(&module, &types).unwrap();
        let m = program
            .entity(entity)
            .unwrap()
            .method(method)
            .unwrap()
            .clone();
        split_method_of(&program, entity, &m).unwrap()
    }

    #[test]
    fn buy_item_splits_at_both_remote_calls() {
        let split = split_of(corpus::FIGURE1_SOURCE, "User", "buy_item");
        assert_eq!(split.split_points(), 2, "{split:#?}");
        assert!(split.blocks.len() >= 4);
        assert_eq!(split.blocks[0].label, "buy_item_0");
        // The first block must end in a remote call to Item.get_price.
        match &split.blocks[0].terminator {
            Terminator::RemoteCall {
                target_entity,
                method,
                resume_block,
                ..
            } => {
                assert_eq!(target_entity, "Item");
                assert_eq!(method, "get_price");
                assert_eq!(*resume_block, 1);
            }
            other => panic!("expected remote call terminator, got {other:?}"),
        }
    }

    #[test]
    fn simple_statements_do_not_split() {
        let src = corpus::FIGURE1_SOURCE;
        let (module, types) = frontend(src).unwrap();
        let program = analyze(&module, &types).unwrap();
        // `deposit` is simple and never goes through splitting in compile();
        // splitting it anyway must produce a single straight-line block chain
        // with no split points.
        let m = program
            .entity("User")
            .unwrap()
            .method("deposit")
            .unwrap()
            .clone();
        let split = split_method_of(&program, "User", &m).unwrap();
        assert_eq!(split.split_points(), 0);
    }

    #[test]
    fn if_statement_produces_branch_blocks() {
        let split = split_of(corpus::FIGURE1_SOURCE, "User", "buy_item");
        let has_branch = split
            .blocks
            .iter()
            .any(|b| matches!(b.terminator, Terminator::Branch { .. }));
        assert!(has_branch, "{split:#?}");
    }

    #[test]
    fn transfer_splits_once() {
        let split = split_of(corpus::ACCOUNT_SOURCE, "Account", "transfer");
        assert_eq!(split.split_points(), 1);
        let call = split
            .blocks
            .iter()
            .find_map(|b| match &b.terminator {
                Terminator::RemoteCall {
                    method,
                    target_entity,
                    ..
                } => Some((target_entity.clone(), method.clone())),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, ("Account".to_string(), "credit".to_string()));
    }

    #[test]
    fn for_loop_with_remote_call_reissues_call_per_iteration() {
        let split = split_of(corpus::CART_SOURCE, "Cart", "checkout_total");
        // The remote call lives inside the loop body; the body's back edge
        // returns to the loop header, so there must be a RemoteCall terminator
        // in a block that is reachable from itself (i.e. inside the loop).
        assert_eq!(split.split_points(), 1);
        // Loop desugaring introduces the iterator and index synthetic vars,
        // plus one call-result var.
        assert!(split.synthetic_vars >= 3, "{}", split.synthetic_vars);
        let has_branch = split
            .blocks
            .iter()
            .any(|b| matches!(b.terminator, Terminator::Branch { .. }));
        assert!(has_branch);
    }

    #[test]
    fn tpcc_new_order_has_three_split_points() {
        let split = split_of(corpus::TPCC_LITE_SOURCE, "Customer", "new_order");
        assert_eq!(split.split_points(), 3);
        // Blocks are labelled method_N in order.
        for (i, block) in split.blocks.iter().enumerate() {
            assert_eq!(block.label, format!("new_order_{i}"));
        }
    }

    #[test]
    fn split_program_covers_all_composite_methods() {
        let (module, types) = frontend(corpus::TPCC_LITE_SOURCE).unwrap();
        let program = analyze(&module, &types).unwrap();
        let splits = split_program(&program).unwrap();
        let names: Vec<(String, String)> = splits
            .iter()
            .map(|s| (s.entity.clone(), s.method.clone()))
            .collect();
        assert_eq!(names, program.composite_methods());
    }

    #[test]
    fn remote_call_result_feeds_following_block() {
        let split = split_of(corpus::FIGURE1_SOURCE, "User", "buy_item");
        // Block 0 ends with get_price whose result var must be referenced by a
        // later block (the multiplication computing total_price).
        let result_var = match &split.blocks[0].terminator {
            Terminator::RemoteCall { result_var, .. } => result_var.clone(),
            other => panic!("unexpected terminator {other:?}"),
        };
        let used_later = split.blocks[1..].iter().any(|b| {
            b.stmts.iter().any(|s| match s {
                FlatStmt::Assign { expr, .. }
                | FlatStmt::AugAssign { expr, .. }
                | FlatStmt::Expr { expr } => expr.referenced_names().contains(&result_var),
            })
        });
        assert!(used_later, "{split:#?}");
    }
}
