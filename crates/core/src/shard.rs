//! Shard routing over id-partitioned addresses.
//!
//! PR 2 made [`EntityAddr`] fixed-width with a cached 64-bit key hash so that
//! a sharded runtime can route events *without touching key bytes*. This
//! module is that routing path: a [`ShardMap`] assigns every address to one of
//! `N` shards with a single modulo on the cached hash, and optionally pins an
//! entire entity class to a fixed shard (the `(ClassId, partition)` shard-map
//! key the ROADMAP calls for — useful for singleton/broadcast operators whose
//! state must not be spread across workers).
//!
//! The map is immutable once built and trivially `Send + Sync`, so every
//! shard thread and the coordinator share one instance by reference. Routing
//! is deterministic in the address alone: the same `(class, key)` maps to the
//! same shard on every thread, every process, and every replay — which is
//! what makes recovery-by-replay reproduce the original placement exactly.

use crate::ids::ClassId;
use crate::value::EntityAddr;

/// Deterministic address → shard routing table.
///
/// The default policy is pure hash partitioning: shard =
/// `addr.key_hash() % shards` (one modulo, no key bytes). A class can be
/// pinned to a fixed shard with [`ShardMap::pin_class`], overriding the hash
/// route for every key of that class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    /// `pins[class.as_u32()]` = Some(shard) if the class is pinned.
    /// Dense by class id; classes beyond the vec use the hash route.
    pins: Vec<Option<u32>>,
}

impl ShardMap {
    /// A map spreading every class uniformly over `shards` shards by cached
    /// key hash.
    pub fn uniform(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardMap {
            shards,
            pins: Vec::new(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Pin every instance of `class` to `shard` (singleton/broadcast
    /// placement). Panics if `shard` is out of range.
    pub fn pin_class(&mut self, class: ClassId, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        let idx = class.as_u32() as usize;
        if idx >= self.pins.len() {
            self.pins.resize(idx + 1, None);
        }
        self.pins[idx] = Some(shard as u32);
    }

    /// The shard that owns `addr`. One `u32` index probe plus one modulo on
    /// the cached key hash — no key bytes, no string comparison.
    #[inline]
    pub fn route(&self, addr: &EntityAddr) -> usize {
        if let Some(Some(pinned)) = self.pins.get(addr.class.as_u32() as usize) {
            return *pinned as usize;
        }
        addr.partition(self.shards)
    }
}

// ---------------------------------------------------------------------------
// Send/Sync audit
// ---------------------------------------------------------------------------
//
// The sharded runtime moves events, values, and entity state across OS
// threads and shares the compiled IR behind an `Arc`. These assertions make
// the thread-safety contract part of the build: if a future change introduces
// `Rc`, `RefCell`, or a raw pointer into any of these types, compilation of
// this crate fails here instead of in a downstream crate's trait bound error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::value::Value>();
    assert_send_sync::<crate::value::Key>();
    assert_send_sync::<crate::value::EntityAddr>();
    assert_send_sync::<crate::value::EntityState>();
    assert_send_sync::<crate::value::Locals>();
    assert_send_sync::<crate::event::Event>();
    assert_send_sync::<crate::event::EventKind>();
    assert_send_sync::<crate::event::MethodCall>();
    assert_send_sync::<crate::event::CallStack>();
    assert_send_sync::<crate::event::Frame>();
    assert_send_sync::<crate::ids::ClassId>();
    assert_send_sync::<crate::ids::MethodId>();
    assert_send_sync::<crate::ir::DataflowIR>();
    assert_send_sync::<crate::error::RuntimeError>();
    assert_send_sync::<ShardMap>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Key;

    fn addr(entity: &str, key: &str) -> EntityAddr {
        EntityAddr::new(entity, Key::Str(key.into()))
    }

    #[test]
    fn routing_matches_cached_hash_partition() {
        let map = ShardMap::uniform(4);
        for i in 0..200 {
            let a = addr("__ShardTestA", &format!("k{i}"));
            assert_eq!(map.route(&a), a.partition(4));
            assert!(map.route(&a) < map.shard_count());
        }
    }

    #[test]
    fn routing_is_deterministic_across_maps() {
        // Two maps built independently route identically: placement is a pure
        // function of the address, which is what replay-based recovery needs.
        let a = ShardMap::uniform(7);
        let b = ShardMap::uniform(7);
        for i in 0..100 {
            let addr = addr("__ShardTestB", &format!("key-{i}"));
            assert_eq!(a.route(&addr), b.route(&addr));
        }
    }

    #[test]
    fn pinned_class_overrides_hash_route() {
        let class = ClassId::intern("__ShardTestPinned");
        let other = ClassId::intern("__ShardTestUnpinned");
        let mut map = ShardMap::uniform(4);
        map.pin_class(class, 2);
        for i in 0..50 {
            let pinned = EntityAddr::from_ids(class, Key::Int(i));
            assert_eq!(map.route(&pinned), 2);
            let free = EntityAddr::from_ids(other, Key::Int(i));
            assert_eq!(map.route(&free), free.partition(4));
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let map = ShardMap::uniform(1);
        for i in 0..20 {
            assert_eq!(map.route(&addr("__ShardTestC", &format!("{i}"))), 0);
        }
    }
}
