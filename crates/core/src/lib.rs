//! # stateful-entities
//!
//! Rust reproduction of the compiler pipeline and intermediate representation
//! from *"Stateful Entities: Object-oriented Cloud Applications as Distributed
//! Dataflows"* (EDBT 2024).
//!
//! The crate takes an imperative, object-oriented entity program (parsed by
//! the [`entity_lang`] front end), analyses it, splits every method that
//! performs remote calls into continuation-passing blocks, and produces an
//! engine-independent stateful dataflow graph ([`ir::DataflowIR`]) that the
//! bundled runtimes execute:
//!
//! * [`analysis`] — static analysis pass 1: fields, signatures, types,
//!   programming-model limitation checks;
//! * [`callgraph`] — static analysis pass 2: the inter-method call graph;
//! * [`split`] — function splitting at remote calls and control flow
//!   (Section 2.4);
//! * [`statemachine`] — the per-method execution graphs (Section 2.5);
//! * [`ir`] — the dataflow IR: one operator per entity, enriched with
//!   compiled methods and state machines;
//! * [`value`] / [`event`] / [`interp`] — the runtime value model, the event
//!   protocol (continuation stacks carried inside events), and the block
//!   interpreter shared by every runtime;
//! * [`local`] — the in-process Local runtime (Section 3) used for
//!   development, testing, and as the semantic oracle;
//! * [`compiler`] — the end-to-end pipeline facade with per-stage timings.
//!
//! ```
//! use stateful_entities::prelude::*;
//!
//! let program = compile(entity_lang::corpus::FIGURE1_SOURCE).unwrap();
//! let mut runtime = program.local_runtime();
//! let item = runtime.create("Item", &["apple".into(), Value::Int(10)]).unwrap();
//! runtime.create("User", &["alice".into()]).unwrap();
//! runtime.call("Item", Key::Str("apple".into()), "restock", vec![Value::Int(5)]).unwrap();
//! runtime.call("User", Key::Str("alice".into()), "deposit", vec![Value::Int(100)]).unwrap();
//! let ok = runtime
//!     .call("User", Key::Str("alice".into()), "buy_item", vec![Value::Int(2), item])
//!     .unwrap();
//! assert_eq!(ok, Value::Bool(true));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod callgraph;
pub mod compiler;
pub mod error;
pub mod event;
pub mod interp;
pub mod ir;
pub mod local;
pub mod split;
pub mod statemachine;
pub mod value;

pub use compiler::{compile, CompileStats, CompiledProgram};
pub use error::{CompileError, CompileResult, RuntimeError, RuntimeResult};
pub use event::{CallId, CallStack, Event, EventKind, Frame, MethodCall, StepOutcome};
pub use ir::DataflowIR;
pub use local::LocalRuntime;
pub use value::{EntityAddr, EntityState, Key, Value};

/// Commonly used items, re-exported for examples and downstream crates.
pub mod prelude {
    pub use crate::compiler::{compile, CompiledProgram};
    pub use crate::error::{CompileError, RuntimeError};
    pub use crate::event::{CallId, Event, EventKind, MethodCall, StepOutcome};
    pub use crate::ir::DataflowIR;
    pub use crate::local::LocalRuntime;
    pub use crate::value::{EntityAddr, EntityState, Key, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compile_and_run() {
        let program = compile(entity_lang::corpus::ACCOUNT_SOURCE).unwrap();
        let mut rt = program.local_runtime();
        rt.create("Account", &["a".into(), Value::Int(5), "p".into()]).unwrap();
        let v = rt
            .call("Account", Key::Str("a".into()), "read", vec![])
            .unwrap();
        assert_eq!(v, Value::Int(5));
    }
}
