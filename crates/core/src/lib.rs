//! # stateful-entities
//!
//! Rust reproduction of the compiler pipeline and intermediate representation
//! from *"Stateful Entities: Object-oriented Cloud Applications as Distributed
//! Dataflows"* (EDBT 2024).
//!
//! The crate takes an imperative, object-oriented entity program (parsed by
//! the [`entity_lang`] front end), analyses it, splits every method that
//! performs remote calls into continuation-passing blocks, and produces an
//! engine-independent stateful dataflow graph ([`ir::DataflowIR`]) that the
//! bundled runtimes execute:
//!
//! * [`analysis`] — static analysis pass 1: fields, signatures, types,
//!   programming-model limitation checks;
//! * [`callgraph`] — static analysis pass 2: the inter-method call graph;
//! * [`split`] — function splitting at remote calls and control flow
//!   (Section 2.4);
//! * [`effects`] — compile-time write-set analysis: a "writes self?" bit per
//!   method, propagated through the call graph (local calls inherit it,
//!   remote calls mark the caller's reference set as written), surfaced on
//!   [`ir::CompiledMethod`] and on every lowered remote-call site — what
//!   lets the sharded runtime treat read-only footprint keys as read-only;
//! * [`statemachine`] — the per-method execution graphs (Section 2.5);
//! * [`ids`] — dense numeric identities for the control plane: interned
//!   [`ids::ClassId`]s and per-class [`ids::MethodId`]s, numbered at compile
//!   time, so dispatch and addressing are `u32` table indices (name
//!   resolution survives only at the ingress boundary);
//! * [`layout`] / [`resolve`] — compile-time name→slot resolution: every
//!   entity class gets a dense [`layout::FieldLayout`] (slot per declared
//!   field, in declaration order) and every method an interned
//!   [`layout::LocalTable`]; bodies are lowered to the slot-indexed
//!   [`resolve::RStmt`]/[`resolve::RExpr`] form the runtimes execute (self-
//!   and remote-call sites carry resolved ids), so the hot path never
//!   compares or clones a `String` key;
//! * [`ir`] — the dataflow IR: one operator per entity, enriched with
//!   compiled methods (both the name-based AST body and its slot-resolved
//!   executable form) and state machines;
//! * [`value`] / [`event`] / [`interp`] — the runtime value model
//!   ([`value::EntityState`] is a fixed-layout `Vec<Value>` with a
//!   `BTreeMap` debug view), the event protocol (continuation stacks carry
//!   dense [`value::Locals`] frames), and the block interpreter shared by
//!   every runtime;
//! * [`binary`] — the length-prefixed binary codec used by `state-backend`
//!   snapshots (values, keys, field layouts) — no JSON on the hot path;
//! * [`shard`] — deterministic address → shard routing over the cached key
//!   hash ([`shard::ShardMap`], with `(ClassId, partition)` pinning), plus
//!   the compile-time `Send + Sync` audit of every type a multi-threaded
//!   runtime moves across threads;
//! * [`local`] — the in-process Local runtime (Section 3) used for
//!   development, testing, and as the semantic oracle (which still interprets
//!   the original name-based AST, making it an independent reference for the
//!   slot-resolved path);
//! * [`compiler`] — the end-to-end pipeline facade with per-stage timings.
//!
//! ```
//! use stateful_entities::prelude::*;
//!
//! let program = compile(entity_lang::corpus::FIGURE1_SOURCE).unwrap();
//! let mut runtime = program.local_runtime();
//! let item = runtime.create("Item", &["apple".into(), Value::Int(10)]).unwrap();
//! runtime.create("User", &["alice".into()]).unwrap();
//! runtime.call("Item", Key::Str("apple".into()), "restock", vec![Value::Int(5)]).unwrap();
//! runtime.call("User", Key::Str("alice".into()), "deposit", vec![Value::Int(100)]).unwrap();
//! let ok = runtime
//!     .call("User", Key::Str("alice".into()), "buy_item", vec![Value::Int(2), item])
//!     .unwrap();
//! assert_eq!(ok, Value::Bool(true));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod binary;
pub mod callgraph;
pub mod compiler;
pub mod effects;
pub mod error;
pub mod event;
pub mod ids;
pub mod interp;
pub mod ir;
pub mod layout;
pub mod local;
pub mod resolve;
pub mod shard;
pub mod split;
pub mod statemachine;
pub mod value;
pub mod verify;

pub use compiler::{compile, compile_with, CompileOptions, CompileStats, CompiledProgram};
pub use error::{CompileError, CompileResult, RuntimeError, RuntimeResult};
pub use event::{CallId, CallStack, Event, EventKind, Frame, MethodCall, StepOutcome};
pub use ids::{ClassId, MethodId};
pub use ir::DataflowIR;
pub use layout::{FieldLayout, LocalTable};
pub use local::LocalRuntime;
pub use shard::ShardMap;
pub use value::{EntityAddr, EntityState, Key, Locals, Value};
pub use verify::{verify, Lint, LintKind, LintLevel, VerifyError, VerifyReport, VerifyRule};

/// Commonly used items, re-exported for examples and downstream crates.
pub mod prelude {
    pub use crate::compiler::{compile, CompiledProgram};
    pub use crate::error::{CompileError, RuntimeError};
    pub use crate::event::{CallId, Event, EventKind, MethodCall, StepOutcome};
    pub use crate::ids::{ClassId, MethodId};
    pub use crate::ir::DataflowIR;
    pub use crate::local::LocalRuntime;
    pub use crate::value::{EntityAddr, EntityState, Key, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compile_and_run() {
        let program = compile(entity_lang::corpus::ACCOUNT_SOURCE).unwrap();
        let mut rt = program.local_runtime();
        rt.create("Account", &["a".into(), Value::Int(5), "p".into()])
            .unwrap();
        let v = rt
            .call("Account", Key::Str("a".into()), "read", vec![])
            .unwrap();
        assert_eq!(v, Value::Int(5));
    }
}
