//! Whole-program static verification of a [`DataflowIR`] — the trust
//! boundary every runtime stands behind.
//!
//! The compiled IR, not the source program, is the artifact the runtimes
//! execute: the slot-indexed interpreter, the per-parameter effect lattice
//! consumed by the commit rule, split-point liveness pruning, and shard
//! routing all *assume* structural invariants that were previously enforced
//! only by construction (and by scattered `debug_assert`s). Once an IR has
//! crossed a process boundary — JSON on disk, bytes over a socket — nothing
//! about its construction can be trusted. This module re-establishes every
//! invariant by direct checking, so that `verify(ir).is_ok()` is the single
//! precondition each runtime constructor demands.
//!
//! ## Invariant catalog
//!
//! Each [`VerifyRule`] names one checked invariant and the runtime component
//! that relies on it:
//!
//! | rule | invariant | relied on by |
//! |------|-----------|--------------|
//! | [`VerifyRule::OperatorTable`] | operator entities are unique and each `ClassId` interns its entity name | ingress name resolution, snapshot restore |
//! | [`VerifyRule::IndexCoherence`] | `operator_by_id(op.class)` finds `op`; layout/local name↔slot maps agree with their dense tables | every id-addressed dispatch (two array probes) |
//! | [`VerifyRule::LayoutCoherence`] | `fields`, `layout`, `key_field`/`key_slot`/`key_type` describe the same record | `EntityState` slot access, key extraction, binary snapshots |
//! | [`VerifyRule::FootprintSoundness`] | no entity-typed field (recursively through lists) | the effect analysis' root-args-only aliasing argument; Aria-style commit rule |
//! | [`VerifyRule::MethodTable`] | `methods[i].id == i`; `method_index` is a bijection onto it | `method_by_id` hot-path dispatch |
//! | [`VerifyRule::ParamSlots`] | parameters occupy leading local slots in declaration order | `bind_params`, continuation frames |
//! | [`VerifyRule::EffectShape`] | `param_effects` has one bit per parameter; call sites carry one bit per argument | per-key access classification |
//! | [`VerifyRule::FieldSlotBounds`] | every `RExpr::Field`/field target is within the layout | unchecked `EntityState::slot` reads |
//! | [`VerifyRule::LocalSlotBounds`] | every local slot (incl. recv/result/live sets) is within the local table | `Locals` frames |
//! | [`VerifyRule::SelfCallTarget`] | `CallSelf` targets an existing, *simple* method of the same class with matching arity | inline helper execution |
//! | [`VerifyRule::RemoteCallTarget`] | remote sites target an operator of this IR and a method it has | cross-shard dispatch |
//! | [`VerifyRule::RemoteCallArity`] | remote-site argument count equals callee arity | `bind_params` on the remote hop |
//! | [`VerifyRule::BlockTarget`] | every jump/branch/resume block id is within the method's block list | `run_blocks` block fetch |
//! | [`VerifyRule::KindAgreement`] | AST kind and resolved kind agree (simple↔simple, split↔split, same block count) | oracle/replay equivalence |
//! | [`VerifyRule::OperatorProtocol`] | every operator has `__init__` and `__key__` | `create`, key computation |
//! | [`VerifyRule::StateMachines`] | one state machine per split method | inspection views only (kept coherent anyway) |
//! | [`VerifyRule::EdgeCoherence`] | `edges` equal the operator-level projection of the call graph | dataflow topology consumers |
//! | [`VerifyRule::CallGraphMismatch`] | the carried call graph equals the one re-derived from method bodies | effect propagation, cycle rejection |
//! | [`VerifyRule::CallGraphCycle`] | the (re-derived) call graph is acyclic | `effects.rs` fixpoint convergence; split methods terminate |
//! | [`VerifyRule::EffectAgreement`] | stored per-method effect bits equal an independent re-derivation | commit rule soundness |
//! | [`VerifyRule::CallSiteEffectAgreement`] | per-site `callee_writes`/`callee_param_writes` equal the re-derived callee bits | per-hop read reservations |
//! | [`VerifyRule::LivenessAgreement`] | every `live_after` mask equals an independently recomputed live set | frame pruning at split points |
//!
//! ## Lint catalog
//!
//! Lints are advisory ([`Lint`], never fatal); each carries a [`LintLevel`]
//! so callers can fail builds on `Warn` while tolerating `Allow`:
//!
//! * [`LintKind::UnusedField`] (*allow*) — a non-key field never referenced
//!   outside `__init__`; it bloats every snapshot and state record. Advisory
//!   only: trimmed benchmark models legitimately carry bookkeeping fields
//!   (TPC-C's `delivery_count`), so this never fails a build.
//!   ```text
//!   entity A:  scratch: int   # written in __init__, never read
//!   ```
//! * [`LintKind::DeadMethod`] (*warn*) — an `_`-prefixed (by convention
//!   internal) method no other method calls. Public names are reachable from
//!   ingress and are never reported.
//! * [`LintKind::SpuriousWriteEffect`] (*warn*) — `param_effects[j]` is set
//!   only through conservative aliasing (no call site passes parameter `j`
//!   itself to a writer); the key bound to it will take exclusive write
//!   reservations that a small refactor could avoid.
//! * [`LintKind::CommutativityNearMiss`] (*warn*) — a method misses the
//!   commutative (`ACCESS_COMM`) class only because it spells an additive
//!   update `self.f = self.f + e` instead of `self.f += e`.
//! * [`LintKind::AlwaysConflictingPair`] (*allow*, *warn* when both members
//!   are rewritable) — two exclusive (non-commutative) self-writers on one
//!   operator: calls to them on the same key can never share a batch.
//!
//! ## The independent effect re-derivation
//!
//! [`crate::effects`] computes the per-parameter write lattice over the
//! *AST*. A compiler bug there would ship an unsound footprint straight into
//! the commit rule, so this module re-implements the same lattice over the
//! *slot-resolved* IR (the form the runtimes actually execute) and demands
//! bit-for-bit agreement: `writes_self`, `param_effects`, the derived
//! `writes_ref_args`, `commutative`, and every per-call-site
//! `callee_writes`/`callee_param_writes` mask. The two implementations share
//! no code — one walks `Stmt`/`Expr` by name, this one walks
//! `RStmt`/`RExpr`/`RTerminator` by slot — so a single defect cannot hide in
//! both. Liveness masks are likewise recomputed with a worklist solver
//! (independent of `resolve.rs`' round-robin pass) and compared exactly;
//! both compute the least fixpoint of the same dataflow equations, so any
//! disagreement indicts the stored mask.

use crate::callgraph::{CallEdge, CallGraph, CallKind, MethodRef};
use crate::ids::MethodId;
use crate::ir::{CompiledMethod, DataflowIR, MethodKind, OperatorSpec};
use crate::resolve::{RBlock, RExpr, RFlatStmt, RMethodKind, RStmt, RTarget, RTerminator};
use entity_lang::ast::{BinOp, Expr, Stmt, Target};
use entity_lang::{Span, Type};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The checked invariants. See the module-level invariant catalog for what
/// each rule guarantees and which runtime component relies on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // the catalog above documents every variant
pub enum VerifyRule {
    OperatorTable,
    IndexCoherence,
    LayoutCoherence,
    FootprintSoundness,
    MethodTable,
    ParamSlots,
    EffectShape,
    FieldSlotBounds,
    LocalSlotBounds,
    SelfCallTarget,
    RemoteCallTarget,
    RemoteCallArity,
    BlockTarget,
    KindAgreement,
    OperatorProtocol,
    StateMachines,
    EdgeCoherence,
    CallGraphMismatch,
    CallGraphCycle,
    EffectAgreement,
    CallSiteEffectAgreement,
    LivenessAgreement,
}

impl VerifyRule {
    /// Stable rule name (diagnostics, CI greps).
    pub fn name(self) -> &'static str {
        match self {
            VerifyRule::OperatorTable => "operator-table",
            VerifyRule::IndexCoherence => "index-coherence",
            VerifyRule::LayoutCoherence => "layout-coherence",
            VerifyRule::FootprintSoundness => "footprint-soundness",
            VerifyRule::MethodTable => "method-table",
            VerifyRule::ParamSlots => "param-slots",
            VerifyRule::EffectShape => "effect-shape",
            VerifyRule::FieldSlotBounds => "field-slot-bounds",
            VerifyRule::LocalSlotBounds => "local-slot-bounds",
            VerifyRule::SelfCallTarget => "self-call-target",
            VerifyRule::RemoteCallTarget => "remote-call-target",
            VerifyRule::RemoteCallArity => "remote-call-arity",
            VerifyRule::BlockTarget => "block-target",
            VerifyRule::KindAgreement => "kind-agreement",
            VerifyRule::OperatorProtocol => "operator-protocol",
            VerifyRule::StateMachines => "state-machines",
            VerifyRule::EdgeCoherence => "edge-coherence",
            VerifyRule::CallGraphMismatch => "call-graph-mismatch",
            VerifyRule::CallGraphCycle => "call-graph-cycle",
            VerifyRule::EffectAgreement => "effect-agreement",
            VerifyRule::CallSiteEffectAgreement => "call-site-effect-agreement",
            VerifyRule::LivenessAgreement => "liveness-agreement",
        }
    }
}

impl fmt::Display for VerifyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hard verification failure: the IR violates an invariant some runtime
/// assumes, and no runtime may execute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The violated invariant.
    pub rule: VerifyRule,
    /// Offending entity class, when attributable.
    pub entity: Option<String>,
    /// Offending method, when attributable.
    pub method: Option<String>,
    /// Source location of the offending definition (synthetic when the IR
    /// itself forged the span away).
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl VerifyError {
    fn new(rule: VerifyRule, span: Span, message: impl Into<String>) -> Self {
        VerifyError {
            rule,
            entity: None,
            method: None,
            span,
            message: message.into(),
        }
    }

    fn entity(mut self, entity: &str) -> Self {
        self.entity = Some(entity.to_string());
        self
    }

    fn method(mut self, method: &str) -> Self {
        self.method = Some(method.to_string());
        self
    }

    /// `Entity.method`, `Entity`, or `<program>` — whatever is attributable.
    pub fn location(&self) -> String {
        match (&self.entity, &self.method) {
            (Some(e), Some(m)) => format!("{e}.{m}"),
            (Some(e), None) => e.clone(),
            _ => "<program>".to_string(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verify [{}] {} at {}: {}",
            self.rule,
            self.location(),
            self.span,
            self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Advisory severity of a [`Lint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Noted in the report but acceptable in a clean build.
    Allow,
    /// Should be fixed; CI may fail builds on these.
    Warn,
}

/// The lint classes (see the module-level lint catalog for examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // the catalog above documents every variant
pub enum LintKind {
    UnusedField,
    DeadMethod,
    SpuriousWriteEffect,
    CommutativityNearMiss,
    AlwaysConflictingPair,
}

impl LintKind {
    /// Stable lint name (diagnostics, CI greps).
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UnusedField => "unused-field",
            LintKind::DeadMethod => "dead-method",
            LintKind::SpuriousWriteEffect => "spurious-write-effect",
            LintKind::CommutativityNearMiss => "commutativity-near-miss",
            LintKind::AlwaysConflictingPair => "always-conflicting-pair",
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One advisory finding. Never blocks execution; carried on the
/// [`VerifyReport`] so build tooling can enforce a chosen level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Lint class.
    pub kind: LintKind,
    /// Severity.
    pub level: LintLevel,
    /// Entity the finding is on.
    pub entity: String,
    /// Method the finding is on, when method-scoped.
    pub method: Option<String>,
    /// Source location of the flagged definition.
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let loc = match &self.method {
            Some(m) => format!("{}.{m}", self.entity),
            None => self.entity.clone(),
        };
        let level = match self.level {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
        };
        write!(
            f,
            "lint({level}) [{}] {loc} at {}: {}",
            self.kind, self.span, self.message
        )
    }
}

/// The result of a successful verification: advisory lints plus coverage
/// counters (how much was actually checked — useful for benches and for
/// asserting the verifier didn't silently skip a pass).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Advisory findings, in deterministic order.
    pub lints: Vec<Lint>,
    /// Methods fully verified.
    pub methods_checked: usize,
    /// Remote call sites verified.
    pub call_sites_checked: usize,
    /// Individual effect bits compared against the re-derivation.
    pub effect_bits_checked: usize,
}

impl VerifyReport {
    /// The lints at or above `level`.
    pub fn lints_at_least(&self, level: LintLevel) -> impl Iterator<Item = &Lint> {
        self.lints.iter().filter(move |l| l.level >= level)
    }
}

/// Verify every invariant of `ir` (see the module docs for the catalog).
///
/// Returns the advisory [`VerifyReport`] on success and the *first* violated
/// invariant as a [`VerifyError`] otherwise. Checking order is structural
/// soundness → call-graph coherence/acyclicity → effect re-derivation →
/// liveness re-derivation → lints, so later passes may index tables the
/// earlier passes proved well-formed. The function never panics, whatever
/// the input: every lookup before the structural pass completes is
/// defensive, and every fixpoint operates on grow-only finite sets.
pub fn verify(ir: &DataflowIR) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport::default();
    check_structure(ir, &mut report)?;
    let derived = check_call_graph(ir)?;
    let effects = check_effects(ir, &mut report)?;
    check_liveness(ir)?;
    report.lints = collect_lints(ir, &derived, &effects);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Resolved-IR walkers (shared by several passes)
// ---------------------------------------------------------------------------

/// Pre-order walk of every sub-expression of `e`.
fn walk_rexpr<'a>(e: &'a RExpr, f: &mut impl FnMut(&'a RExpr)) {
    f(e);
    match e {
        RExpr::CallSelf { args, .. } | RExpr::Builtin { args, .. } | RExpr::List(args) => {
            for a in args {
                walk_rexpr(a, f);
            }
        }
        RExpr::Binary { left, right, .. }
        | RExpr::Compare { left, right, .. }
        | RExpr::Logic { left, right, .. } => {
            walk_rexpr(left, f);
            walk_rexpr(right, f);
        }
        RExpr::Unary { operand, .. } => walk_rexpr(operand, f),
        RExpr::Index { obj, index } => {
            walk_rexpr(obj, f);
            walk_rexpr(index, f);
        }
        RExpr::Int(_)
        | RExpr::Float(_)
        | RExpr::Str(_)
        | RExpr::Bool(_)
        | RExpr::None
        | RExpr::Local(_)
        | RExpr::Field(_) => {}
    }
}

/// Recursive walk of every statement (simple bodies).
fn walk_rstmts<'a>(stmts: &'a [RStmt], f: &mut impl FnMut(&'a RStmt)) {
    for s in stmts {
        f(s);
        match s {
            RStmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_rstmts(then_body, f);
                walk_rstmts(else_body, f);
            }
            RStmt::While { body, .. } | RStmt::For { body, .. } => walk_rstmts(body, f),
            _ => {}
        }
    }
}

/// Visit every expression of a method — simple bodies, split-block
/// statements, and terminator operands (branch conditions, return values,
/// remote-call arguments) alike.
fn for_each_expr<'a>(m: &'a CompiledMethod, f: &mut impl FnMut(&'a RExpr)) {
    match &m.resolved.kind {
        RMethodKind::Simple { body } => walk_rstmts(body, &mut |s| match s {
            RStmt::Assign { value, .. } | RStmt::AugAssign { value, .. } => walk_rexpr(value, f),
            RStmt::Expr(e) => walk_rexpr(e, f),
            RStmt::Return(Some(e)) => walk_rexpr(e, f),
            RStmt::If { cond, .. } | RStmt::While { cond, .. } => walk_rexpr(cond, f),
            RStmt::For { iter, .. } => walk_rexpr(iter, f),
            _ => {}
        }),
        RMethodKind::Split { blocks } => {
            for block in blocks {
                for s in &block.stmts {
                    match s {
                        RFlatStmt::Assign { expr, .. }
                        | RFlatStmt::AugAssign { expr, .. }
                        | RFlatStmt::Expr(expr) => walk_rexpr(expr, f),
                    }
                }
                match &block.terminator {
                    RTerminator::Branch { cond, .. } => walk_rexpr(cond, f),
                    RTerminator::Return(Some(e)) => walk_rexpr(e, f),
                    RTerminator::RemoteCall { args, .. } => {
                        for a in args {
                            walk_rexpr(a, f);
                        }
                    }
                    RTerminator::Jump(_) | RTerminator::Return(None) => {}
                }
            }
        }
    }
}

/// Visit every assignment target of a method (simple + split forms).
fn for_each_target<'a>(m: &'a CompiledMethod, f: &mut impl FnMut(&'a RTarget)) {
    match &m.resolved.kind {
        RMethodKind::Simple { body } => walk_rstmts(body, &mut |s| match s {
            RStmt::Assign { target, .. } | RStmt::AugAssign { target, .. } => f(target),
            _ => {}
        }),
        RMethodKind::Split { blocks } => {
            for block in blocks {
                for s in &block.stmts {
                    match s {
                        RFlatStmt::Assign { target, .. } | RFlatStmt::AugAssign { target, .. } => {
                            f(target)
                        }
                        RFlatStmt::Expr(_) => {}
                    }
                }
            }
        }
    }
}

/// Does `ty` contain an entity reference anywhere (recursively through
/// lists)? The footprint-soundness rule forbids these in *fields*.
fn contains_entity(ty: &Type) -> bool {
    match ty {
        Type::Entity(_) => true,
        Type::List(inner) => contains_entity(inner),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Pass 1: structural soundness
// ---------------------------------------------------------------------------

/// Check every structural invariant. After this pass succeeds, later passes
/// may index operator/method/block/slot tables directly.
fn check_structure(ir: &DataflowIR, report: &mut VerifyReport) -> Result<(), VerifyError> {
    // Operator table: unique entities, class ids interned from the entity
    // name, and the id-indexed routing table resolving back to the operator.
    let mut seen = BTreeSet::new();
    for op in &ir.operators {
        if !seen.insert(op.entity.as_str()) {
            return Err(VerifyError::new(
                VerifyRule::OperatorTable,
                op.span,
                format!("duplicate operator for entity `{}`", op.entity),
            )
            .entity(&op.entity));
        }
        if op.class.name() != op.entity {
            return Err(VerifyError::new(
                VerifyRule::OperatorTable,
                op.span,
                format!(
                    "operator `{}` carries class id interned for `{}`",
                    op.entity,
                    op.class.name()
                ),
            )
            .entity(&op.entity));
        }
        match ir.operator_by_id(op.class) {
            Some(found) if found.entity == op.entity => {}
            _ => {
                return Err(VerifyError::new(
                    VerifyRule::IndexCoherence,
                    op.span,
                    format!(
                        "class index does not route `{}` back to its operator",
                        op.entity
                    ),
                )
                .entity(&op.entity));
            }
        }
    }

    for op in &ir.operators {
        check_operator(op, report)?;
    }

    // State machines: exactly one per split method (inspection view, but a
    // forged count signals a tampered artifact).
    let split_methods = ir
        .operators
        .iter()
        .flat_map(|o| o.methods.iter())
        .filter(|m| m.is_split())
        .count();
    if ir.state_machines.len() != split_methods {
        return Err(VerifyError::new(
            VerifyRule::StateMachines,
            Span::synthetic(),
            format!(
                "{} state machines for {} split methods",
                ir.state_machines.len(),
                split_methods
            ),
        ));
    }
    Ok(())
}

fn check_operator(op: &OperatorSpec, report: &mut VerifyReport) -> Result<(), VerifyError> {
    let entity = op.entity.as_str();

    // Layout coherence: `fields`, `layout`, and the key triple must describe
    // the same record. Probe names through `name_of` (dense side) rather
    // than `slot_of` so a forged name→slot index cannot vouch for itself.
    if op.layout.len() != op.fields.len() {
        return Err(VerifyError::new(
            VerifyRule::LayoutCoherence,
            op.span,
            format!(
                "layout has {} slots but {} fields are declared",
                op.layout.len(),
                op.fields.len()
            ),
        )
        .entity(entity));
    }
    for (slot, (name, ty)) in op.layout.iter().enumerate() {
        match op.fields.get(name) {
            Some(declared) if declared == ty => {}
            Some(declared) => {
                return Err(VerifyError::new(
                    VerifyRule::LayoutCoherence,
                    op.span,
                    format!("field `{name}` declared `{declared:?}` but laid out as `{ty:?}`"),
                )
                .entity(entity));
            }
            None => {
                return Err(VerifyError::new(
                    VerifyRule::LayoutCoherence,
                    op.span,
                    format!("layout slot {slot} holds undeclared field `{name}`"),
                )
                .entity(entity));
            }
        }
        // Name→slot index must agree with the dense table (a corrupt index
        // would mis-resolve ingress/debug lookups).
        if op.layout.slot_of(name) != Some(slot as u32) {
            return Err(VerifyError::new(
                VerifyRule::IndexCoherence,
                op.span,
                format!("field index mis-maps `{name}` (dense slot {slot})"),
            )
            .entity(entity));
        }
    }
    if (op.key_slot as usize) >= op.layout.len()
        || op.layout.name_of(op.key_slot) != op.key_field
        || op.layout.type_of(op.key_slot) != &op.key_type
    {
        return Err(VerifyError::new(
            VerifyRule::LayoutCoherence,
            op.span,
            format!(
                "key triple (`{}`, slot {}, {:?}) does not match the layout",
                op.key_field, op.key_slot, op.key_type
            ),
        )
        .entity(entity));
    }

    // Footprint soundness: no entity-typed field. The effect analysis'
    // aliasing argument (references reach call chains only via root
    // arguments) collapses if state can store a reference.
    for (name, ty) in &op.fields {
        if contains_entity(ty) {
            return Err(VerifyError::new(
                VerifyRule::FootprintSoundness,
                op.span,
                format!(
                    "field `{name}` stores an entity reference ({ty:?}); \
                     references may only enter a call chain as root arguments"
                ),
            )
            .entity(entity));
        }
    }

    // Method table: dense ids, bijective name index.
    if op.method_index.len() != op.methods.len() {
        return Err(VerifyError::new(
            VerifyRule::MethodTable,
            op.span,
            format!(
                "method index has {} entries for {} methods",
                op.method_index.len(),
                op.methods.len()
            ),
        )
        .entity(entity));
    }
    for (i, m) in op.methods.iter().enumerate() {
        if m.id.index() != i {
            return Err(VerifyError::new(
                VerifyRule::MethodTable,
                m.span,
                format!("method `{}` at position {i} carries id {}", m.name, m.id),
            )
            .entity(entity)
            .method(&m.name));
        }
        if op.method_index.get(&m.name) != Some(&m.id) {
            return Err(VerifyError::new(
                VerifyRule::MethodTable,
                m.span,
                format!("method index does not map `{}` to {}", m.name, m.id),
            )
            .entity(entity)
            .method(&m.name));
        }
    }

    // Protocol methods every runtime entry point relies on.
    for required in ["__init__", "__key__"] {
        if !op.method_index.contains_key(required) {
            return Err(VerifyError::new(
                VerifyRule::OperatorProtocol,
                op.span,
                format!("operator has no `{required}` method"),
            )
            .entity(entity));
        }
    }

    for m in &op.methods {
        check_method(op, m)?;
        report.methods_checked += 1;
    }
    Ok(())
}

fn check_method(op: &OperatorSpec, m: &CompiledMethod) -> Result<(), VerifyError> {
    let entity = op.entity.as_str();
    let fail = |rule: VerifyRule, msg: String| {
        Err(VerifyError::new(rule, m.span, msg)
            .entity(entity)
            .method(&m.name))
    };
    let locals = &m.resolved.locals;
    let nlocals = locals.len() as u32;
    let nfields = op.layout.len() as u32;

    // Parameters occupy the leading local slots, in declaration order.
    if locals.len() < m.params.len() {
        return fail(
            VerifyRule::ParamSlots,
            format!(
                "{} locals cannot hold {} parameters",
                locals.len(),
                m.params.len()
            ),
        );
    }
    for (j, (name, _)) in m.params.iter().enumerate() {
        if locals.name_of(j as u32) != name || locals.slot_of(name) != Some(j as u32) {
            return fail(
                VerifyRule::ParamSlots,
                format!("parameter `{name}` is not interned at leading slot {j}"),
            );
        }
    }
    // Local-table name index must agree with its dense side.
    for slot in 0..nlocals {
        let name = locals.name_of(slot);
        if locals.slot_of(name) != Some(slot) {
            return fail(
                VerifyRule::IndexCoherence,
                format!("local index mis-maps `{name}` (dense slot {slot})"),
            );
        }
    }

    // Effect annotation shape (values are cross-checked in the effects pass).
    if m.param_effects.len() != m.params.len() {
        return fail(
            VerifyRule::EffectShape,
            format!(
                "{} effect bits for {} parameters",
                m.param_effects.len(),
                m.params.len()
            ),
        );
    }

    // AST kind and resolved kind must agree (the oracle interpreter runs the
    // former, every runtime the latter).
    match (&m.kind, &m.resolved.kind) {
        (MethodKind::Simple { .. }, RMethodKind::Simple { .. }) => {}
        (MethodKind::Split(split), RMethodKind::Split { blocks }) => {
            if split.blocks.len() != blocks.len() {
                return fail(
                    VerifyRule::KindAgreement,
                    format!(
                        "split AST has {} blocks, resolved form {}",
                        split.blocks.len(),
                        blocks.len()
                    ),
                );
            }
            if blocks.is_empty() {
                return fail(
                    VerifyRule::KindAgreement,
                    "split method has no entry block".into(),
                );
            }
        }
        (ast, resolved) => {
            let ast = match ast {
                MethodKind::Simple { .. } => "simple",
                MethodKind::Split(_) => "split",
            };
            let resolved = match resolved {
                RMethodKind::Simple { .. } => "simple",
                RMethodKind::Split { .. } => "split",
            };
            return fail(
                VerifyRule::KindAgreement,
                format!("AST kind is {ast} but resolved kind is {resolved}"),
            );
        }
    }

    // Slot bounds + self-call targets, over every expression.
    let mut err: Option<VerifyError> = None;
    for_each_expr(m, &mut |e| {
        if err.is_some() {
            return;
        }
        match e {
            RExpr::Field(slot) if *slot >= nfields => {
                err = Some(
                    VerifyError::new(
                        VerifyRule::FieldSlotBounds,
                        m.span,
                        format!("field slot {slot} out of range (layout has {nfields})"),
                    )
                    .entity(entity)
                    .method(&m.name),
                );
            }
            RExpr::Local(slot) if *slot >= nlocals => {
                err = Some(
                    VerifyError::new(
                        VerifyRule::LocalSlotBounds,
                        m.span,
                        format!("local slot {slot} out of range (table has {nlocals})"),
                    )
                    .entity(entity)
                    .method(&m.name),
                );
            }
            RExpr::CallSelf { method, args } => match op.methods.get(method.index()) {
                None => {
                    err = Some(
                        VerifyError::new(
                            VerifyRule::SelfCallTarget,
                            m.span,
                            format!(
                                "self-call targets {method} but `{entity}` has {} methods",
                                op.methods.len()
                            ),
                        )
                        .entity(entity)
                        .method(&m.name),
                    );
                }
                Some(callee) => {
                    if callee.is_split() {
                        err = Some(
                            VerifyError::new(
                                VerifyRule::SelfCallTarget,
                                m.span,
                                format!(
                                    "self-call targets split method `{}`; inline callees \
                                     must be simple",
                                    callee.name
                                ),
                            )
                            .entity(entity)
                            .method(&m.name),
                        );
                    } else if args.len() != callee.params.len() {
                        err = Some(
                            VerifyError::new(
                                VerifyRule::SelfCallTarget,
                                m.span,
                                format!(
                                    "self-call passes {} arguments to `{}` which takes {}",
                                    args.len(),
                                    callee.name,
                                    callee.params.len()
                                ),
                            )
                            .entity(entity)
                            .method(&m.name),
                        );
                    }
                }
            },
            _ => {}
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    // Assignment targets share the same bounds.
    let mut err: Option<VerifyError> = None;
    for_each_target(m, &mut |t| {
        if err.is_some() {
            return;
        }
        match t {
            RTarget::Field(slot) if *slot >= nfields => {
                err = Some(
                    VerifyError::new(
                        VerifyRule::FieldSlotBounds,
                        m.span,
                        format!("field write slot {slot} out of range (layout has {nfields})"),
                    )
                    .entity(entity)
                    .method(&m.name),
                );
            }
            RTarget::Local(slot) if *slot >= nlocals => {
                err = Some(
                    VerifyError::new(
                        VerifyRule::LocalSlotBounds,
                        m.span,
                        format!("local write slot {slot} out of range (table has {nlocals})"),
                    )
                    .entity(entity)
                    .method(&m.name),
                );
            }
            _ => {}
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    // Simple-method `For` loop variables are targets too.
    if let RMethodKind::Simple { body } = &m.resolved.kind {
        let mut bad = None;
        walk_rstmts(body, &mut |s| {
            if let RStmt::For { var, .. } = s {
                if *var >= nlocals && bad.is_none() {
                    bad = Some(*var);
                }
            }
        });
        if let Some(var) = bad {
            return fail(
                VerifyRule::LocalSlotBounds,
                format!("loop variable slot {var} out of range (table has {nlocals})"),
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pass 2: call-graph coherence and acyclicity
// ---------------------------------------------------------------------------

/// Re-derive the method-level call graph from the *resolved* bodies, check
/// remote-site targets/arity along the way, compare it to the carried
/// [`CallGraph`], and reject cycles. Returns the derived graph (the lint
/// pass reuses it for dead-method detection).
fn check_call_graph(ir: &DataflowIR) -> Result<CallGraph, VerifyError> {
    // Edges are collected as dense `(operator pos, method pos)` pairs and
    // only materialized into string-carrying [`MethodRef`]s once, at the
    // end — set operations on id tuples keep this pass allocation-light
    // (it runs on every runtime construction).
    type EdgeId = ((u32, u32), (u32, u32), CallKind);
    let pos_of_class: BTreeMap<u32, u32> = ir
        .operators
        .iter()
        .enumerate()
        .map(|(pos, op)| (op.class.as_u32(), pos as u32))
        .collect();
    let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
    for (op_pos, op) in ir.operators.iter().enumerate() {
        let op_pos = op_pos as u32;
        for (m_pos, m) in op.methods.iter().enumerate() {
            let caller = (op_pos, m_pos as u32);
            // Local edges: every `CallSelf` (targets verified structurally).
            let mut local_callees: BTreeSet<MethodId> = BTreeSet::new();
            for_each_expr(m, &mut |e| {
                if let RExpr::CallSelf { method, .. } = e {
                    local_callees.insert(*method);
                }
            });
            for id in local_callees {
                // Target verified in `check_method`.
                edges.insert((caller, (op_pos, id.index() as u32), CallKind::Local));
            }
            // Remote edges: every `RemoteCall` terminator. Structural checks
            // of the target/arity happen here — this is the first pass that
            // resolves cross-operator references.
            if let RMethodKind::Split { blocks } = &m.resolved.kind {
                for block in blocks {
                    if let RTerminator::RemoteCall {
                        target_class,
                        method,
                        args,
                        callee_param_writes,
                        ..
                    } = &block.terminator
                    {
                        let target = ir.operator_by_id(*target_class).ok_or_else(|| {
                            VerifyError::new(
                                VerifyRule::RemoteCallTarget,
                                m.span,
                                format!(
                                    "remote call targets class `{}` which has no operator \
                                     in this IR",
                                    target_class.name()
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name)
                        })?;
                        let callee = target.methods.get(method.index()).ok_or_else(|| {
                            VerifyError::new(
                                VerifyRule::RemoteCallTarget,
                                m.span,
                                format!(
                                    "remote call targets `{}`.{method} but the operator \
                                         has {} methods",
                                    target.entity,
                                    target.methods.len()
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name)
                        })?;
                        if args.len() != callee.params.len() {
                            return Err(VerifyError::new(
                                VerifyRule::RemoteCallArity,
                                m.span,
                                format!(
                                    "remote call passes {} arguments to `{}.{}` which \
                                     takes {}",
                                    args.len(),
                                    target.entity,
                                    callee.name,
                                    callee.params.len()
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name));
                        }
                        if callee_param_writes.len() != args.len() {
                            return Err(VerifyError::new(
                                VerifyRule::EffectShape,
                                m.span,
                                format!(
                                    "call site carries {} per-argument write bits for {} \
                                     arguments",
                                    callee_param_writes.len(),
                                    args.len()
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name));
                        }
                        let target_pos = pos_of_class[&target_class.as_u32()];
                        edges.insert((
                            caller,
                            (target_pos, method.index() as u32),
                            CallKind::Remote,
                        ));
                    }
                }
            }
        }
    }
    let name_of = |(op_pos, m_pos): (u32, u32)| {
        let op = &ir.operators[op_pos as usize];
        MethodRef::new(&op.entity, &op.methods[m_pos as usize].name)
    };
    let derived = CallGraph {
        edges: edges
            .iter()
            .map(|&(caller, callee, kind)| CallEdge {
                caller: name_of(caller),
                callee: name_of(callee),
                kind,
            })
            .collect(),
    };

    // The carried graph must equal the derived one as a set — a forged graph
    // could otherwise vouch for bodies it does not describe (and vice versa).
    // Carried edges are mapped onto the same dense ids; an edge naming an
    // unknown operator/method cannot be derived from any body, so it is a
    // mismatch by definition.
    let mut carried: BTreeSet<EdgeId> = BTreeSet::new();
    let mut unknown: Vec<String> = Vec::new();
    let pos_of_ref = |r: &MethodRef| {
        let op_pos = ir.operators.iter().position(|op| op.entity == r.entity)?;
        let m_pos = ir.operators[op_pos]
            .methods
            .iter()
            .position(|m| m.name == r.method)?;
        Some((op_pos as u32, m_pos as u32))
    };
    for e in &ir.call_graph.edges {
        match (pos_of_ref(&e.caller), pos_of_ref(&e.callee)) {
            (Some(caller), Some(callee)) => {
                carried.insert((caller, callee, e.kind));
            }
            _ => unknown.push(format!("{} -> {}", e.caller, e.callee)),
        }
    }
    if !unknown.is_empty() || carried != edges {
        let missing: Vec<String> = edges
            .difference(&carried)
            .map(|&(c, t, _)| format!("{} -> {}", name_of(c), name_of(t)))
            .collect();
        let extra: Vec<String> = carried
            .difference(&edges)
            .map(|&(c, t, _)| format!("{} -> {}", name_of(c), name_of(t)))
            .chain(unknown)
            .collect();
        return Err(VerifyError::new(
            VerifyRule::CallGraphMismatch,
            Span::synthetic(),
            format!(
                "carried call graph disagrees with method bodies \
                 (missing: [{}], extra: [{}])",
                missing.join(", "),
                extra.join(", ")
            ),
        ));
    }

    // Acyclicity: the effect fixpoint and the split-execution model both
    // assume it (recursion would unroll into an unbounded state machine).
    if let Some(cycle) = derived.find_cycle() {
        let path: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
        let first = cycle.first();
        let mut err = VerifyError::new(
            VerifyRule::CallGraphCycle,
            first
                .and_then(|r| {
                    ir.operator(&r.entity)
                        .and_then(|op| op.method(&r.method))
                        .map(|m| m.span)
                })
                .unwrap_or_else(Span::synthetic),
            format!("call cycle: {}", path.join(" -> ")),
        );
        if let Some(r) = first {
            err = err.entity(&r.entity).method(&r.method);
        }
        return Err(err);
    }

    // Operator-level edges must be the projection of the (now trusted)
    // call graph.
    let expected: BTreeSet<(String, String)> = derived.operator_edges();
    let actual: BTreeSet<(String, String)> = ir
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    if expected != actual {
        return Err(VerifyError::new(
            VerifyRule::EdgeCoherence,
            Span::synthetic(),
            format!(
                "dataflow edges {:?} do not match the call graph projection {:?}",
                actual, expected
            ),
        ));
    }

    // Block targets: every jump/branch/resume within bounds. Done here (not
    // in `check_method`) purely to keep the structural pass focused on one
    // operator at a time; the rule is structural.
    for op in &ir.operators {
        for m in &op.methods {
            if let RMethodKind::Split { blocks } = &m.resolved.kind {
                let n = blocks.len();
                for (bid, block) in blocks.iter().enumerate() {
                    let targets: Vec<usize> = match &block.terminator {
                        RTerminator::Jump(next) => vec![*next],
                        RTerminator::Branch {
                            then_block,
                            else_block,
                            ..
                        } => vec![*then_block, *else_block],
                        RTerminator::RemoteCall { resume_block, .. } => vec![*resume_block],
                        RTerminator::Return(_) => vec![],
                    };
                    for t in targets {
                        if t >= n {
                            return Err(VerifyError::new(
                                VerifyRule::BlockTarget,
                                m.span,
                                format!(
                                    "block {bid} targets block {t} but the method has \
                                     {n} blocks"
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name));
                        }
                    }
                    // Remote-call frame slots share the local-slot rule.
                    if let RTerminator::RemoteCall {
                        recv_slot,
                        result_slot,
                        live_after,
                        ..
                    } = &block.terminator
                    {
                        let nlocals = m.resolved.locals.len() as u32;
                        for (what, slot) in [("receiver", *recv_slot), ("result", *result_slot)]
                            .into_iter()
                            .chain(live_after.iter().map(|s| ("live-set", *s)))
                        {
                            if slot >= nlocals {
                                return Err(VerifyError::new(
                                    VerifyRule::LocalSlotBounds,
                                    m.span,
                                    format!(
                                        "{what} slot {slot} at block {bid} out of range \
                                         (table has {nlocals})"
                                    ),
                                )
                                .entity(&op.entity)
                                .method(&m.name));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(derived)
}

// ---------------------------------------------------------------------------
// Pass 3: independent effect re-derivation
// ---------------------------------------------------------------------------

/// The re-derived effect summary of one method (slot-based second
/// implementation of the `core::effects` lattice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ReEffects {
    pub(crate) writes_self: bool,
    pub(crate) param_writes: Vec<bool>,
    pub(crate) commutative: bool,
}

impl ReEffects {
    fn writes_ref_args(&self) -> bool {
        self.param_writes.iter().any(|&w| w)
    }
}

/// One call site of a method, pre-resolved against its alias sets.
struct ReEvent {
    /// `(operator position, method position)` of the callee.
    callee: (usize, usize),
    /// Inline `self.*` call vs remote hop.
    local: bool,
    /// Formal-parameter aliases of the receiver (empty for local calls).
    recv: BTreeSet<usize>,
    /// Formal-parameter aliases of each argument expression.
    args: Vec<BTreeSet<usize>>,
    /// Receiver slot (remote sites; drives the definite-write lint).
    recv_slot: Option<u32>,
    /// Argument slots for arguments that are a bare local read.
    arg_slots: Vec<Option<u32>>,
}

/// Union of the alias sets of every local slot `e` mentions — the
/// slot-resolved mirror of `effects::expr_aliases` (which unions over every
/// *name* an AST expression mentions, call receivers included; receivers of
/// remote calls never appear inside an `RExpr`, they are handled at the
/// `RemoteCall` terminator transfer).
fn rexpr_aliases(e: &RExpr, aliases: &[BTreeSet<usize>]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    walk_rexpr(e, &mut |x| {
        if let RExpr::Local(slot) = x {
            if let Some(set) = aliases.get(*slot as usize) {
                out.extend(set.iter().copied());
            }
        }
    });
    out
}

/// Conservative may-alias sets for one method: `slot → formal parameter
/// indices its value may alias`, run to a fixpoint. Mirrors
/// `effects::alias_map` with slots for names; the extra transfer for
/// `RemoteCall` terminators mirrors the AST rule where a call's result
/// aliases everything the call expression mentions (receiver + arguments).
/// Sets only grow and are bounded by the arity, so the loop terminates on
/// any structurally-valid input, cyclic data flow included.
fn alias_sets(m: &CompiledMethod) -> Vec<BTreeSet<usize>> {
    let nslots = m.resolved.locals.len();
    let arity = m.params.len();
    let mut aliases: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nslots];
    for (j, set) in aliases.iter_mut().enumerate().take(arity) {
        set.insert(j);
    }
    loop {
        let mut pending: Vec<(u32, BTreeSet<usize>)> = Vec::new();
        {
            let grow =
                |pending: &mut Vec<(u32, BTreeSet<usize>)>, slot: u32, set: BTreeSet<usize>| {
                    if set.is_empty() {
                        return;
                    }
                    match aliases.get(slot as usize) {
                        Some(known) if set.is_subset(known) => {}
                        _ => pending.push((slot, set)),
                    }
                };
            match &m.resolved.kind {
                RMethodKind::Simple { body } => walk_rstmts(body, &mut |s| match s {
                    RStmt::Assign {
                        target: RTarget::Local(slot),
                        value,
                    }
                    | RStmt::AugAssign {
                        target: RTarget::Local(slot),
                        value,
                        ..
                    } => grow(&mut pending, *slot, rexpr_aliases(value, &aliases)),
                    RStmt::For { var, iter, .. } => {
                        grow(&mut pending, *var, rexpr_aliases(iter, &aliases))
                    }
                    _ => {}
                }),
                RMethodKind::Split { blocks } => {
                    for block in blocks {
                        for s in &block.stmts {
                            match s {
                                RFlatStmt::Assign {
                                    target: RTarget::Local(slot),
                                    expr,
                                }
                                | RFlatStmt::AugAssign {
                                    target: RTarget::Local(slot),
                                    expr,
                                    ..
                                } => grow(&mut pending, *slot, rexpr_aliases(expr, &aliases)),
                                _ => {}
                            }
                        }
                        if let RTerminator::RemoteCall {
                            recv_slot,
                            args,
                            result_slot,
                            ..
                        } = &block.terminator
                        {
                            // The call result conservatively aliases the
                            // receiver and every argument (mirrors the AST
                            // rule where `expr_aliases` of a call unions
                            // every name it mentions).
                            let mut set = aliases
                                .get(*recv_slot as usize)
                                .cloned()
                                .unwrap_or_default();
                            for a in args {
                                set.extend(rexpr_aliases(a, &aliases));
                            }
                            grow(&mut pending, *result_slot, set);
                        }
                    }
                }
            }
        }
        let mut changed = false;
        for (slot, set) in pending {
            if let Some(entry) = aliases.get_mut(slot as usize) {
                for p in set {
                    changed |= entry.insert(p);
                }
            }
        }
        if !changed {
            break;
        }
    }
    aliases
}

/// Does the method write `self.*` directly (slot-resolved mirror of
/// `effects::writes_self_directly`)?
fn writes_self_directly_r(m: &CompiledMethod) -> bool {
    let mut found = false;
    for_each_target(m, &mut |t| {
        if matches!(t, RTarget::Field(_)) {
            found = true;
        }
    });
    found
}

/// May this expression's value depend on entity state? Field reads, any
/// self-call result, and tainted locals count — builtins do not (mirrors
/// `effects::expr_reads_state`, where `Expr::Builtin` is a distinct variant
/// from `Expr::Call`).
fn rexpr_reads_state(e: &RExpr, tainted: &BTreeSet<u32>) -> bool {
    let mut found = false;
    walk_rexpr(e, &mut |x| match x {
        RExpr::Field(_) | RExpr::CallSelf { .. } => found = true,
        RExpr::Local(s) if tainted.contains(s) => found = true,
        _ => {}
    });
    found
}

/// Locals whose value may depend on entity state (slot-resolved mirror of
/// `effects::tainted_locals`). Only meaningful for simple methods — the
/// commutativity class excludes split methods outright.
fn tainted_locals_r(body: &[RStmt]) -> BTreeSet<u32> {
    let mut tainted: BTreeSet<u32> = BTreeSet::new();
    loop {
        let mut pending: Vec<u32> = Vec::new();
        walk_rstmts(body, &mut |s| match s {
            RStmt::Assign {
                target: RTarget::Local(slot),
                value,
            }
            | RStmt::AugAssign {
                target: RTarget::Local(slot),
                value,
                ..
            } if !tainted.contains(slot) && rexpr_reads_state(value, &tainted) => {
                pending.push(*slot);
            }
            RStmt::For { var, iter, .. }
                if !tainted.contains(var) && rexpr_reads_state(iter, &tainted) =>
            {
                pending.push(*var);
            }
            _ => {}
        });
        let mut changed = false;
        for slot in pending {
            changed |= tainted.insert(slot);
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Syntactic commutative-RMW check over the resolved body (mirror of
/// `effects::commutative_stmts`). With `rewrite` set, a blind field
/// assignment of the shape `self.f = self.f ± e` is treated as the
/// equivalent `self.f ±= e` — that variant powers the
/// [`LintKind::CommutativityNearMiss`] lint and is never used for the
/// bit-for-bit comparison.
fn commutative_stmts_r(
    stmts: &[RStmt],
    state_dep: bool,
    tainted: &BTreeSet<u32>,
    rewrite: bool,
) -> bool {
    stmts.iter().all(|s| match s {
        RStmt::Assign {
            target: RTarget::Field(slot),
            value,
        } => {
            if !rewrite {
                return false;
            }
            // `self.f = self.f + e` / `self.f = self.f - e` is the trivial
            // rewrite away from an additive RMW.
            match value {
                RExpr::Binary {
                    op: BinOp::Add | BinOp::Sub,
                    left,
                    right,
                } if matches!(**left, RExpr::Field(l) if l == *slot) => {
                    !state_dep && !rexpr_reads_state(right, tainted)
                }
                _ => false,
            }
        }
        RStmt::AugAssign {
            target: RTarget::Field(_),
            op,
            value,
        } => {
            matches!(op, BinOp::Add | BinOp::Sub)
                && !state_dep
                && !rexpr_reads_state(value, tainted)
        }
        RStmt::Return(_) | RStmt::Break | RStmt::Continue => !state_dep,
        RStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let dep = state_dep || rexpr_reads_state(cond, tainted);
            commutative_stmts_r(then_body, dep, tainted, rewrite)
                && commutative_stmts_r(else_body, dep, tainted, rewrite)
        }
        RStmt::While { cond, body } => {
            let dep = state_dep || rexpr_reads_state(cond, tainted);
            commutative_stmts_r(body, dep, tainted, rewrite)
        }
        RStmt::For { iter, body, .. } => {
            let dep = state_dep || rexpr_reads_state(iter, tainted);
            commutative_stmts_r(body, dep, tainted, rewrite)
        }
        RStmt::Assign { .. } | RStmt::AugAssign { .. } | RStmt::Expr(_) | RStmt::Pass => true,
    })
}

/// The syntactic commutativity candidate bit (mirror of
/// `effects::commutative_candidate`).
fn commutative_candidate_r(m: &CompiledMethod, rewrite: bool) -> bool {
    let RMethodKind::Simple { body } = &m.resolved.kind else {
        return false;
    };
    // Both views demand a direct self-write seed (under the rewrite view a
    // `self.f = self.f ± e` assignment is itself such a write).
    if !writes_self_directly_r(m) {
        return false;
    }
    let tainted = tainted_locals_r(body);
    commutative_stmts_r(body, false, &tainted, rewrite)
}

/// Per-method re-derived effects plus the call events feeding the lint pass,
/// indexed `[operator position][method position]`.
pub(crate) struct ReProgram {
    pub(crate) effects: Vec<Vec<ReEffects>>,
    events: Vec<Vec<Vec<ReEvent>>>,
}

/// Re-derive every effect summary over the resolved IR and demand
/// bit-for-bit agreement with the stored annotations — per method
/// (`writes_self`, `param_effects`, the derived `writes_ref_args`,
/// `commutative`) and per remote call site (`callee_writes`,
/// `callee_param_writes`).
fn check_effects(ir: &DataflowIR, report: &mut VerifyReport) -> Result<ReProgram, VerifyError> {
    // Operator position by class id (targets verified in pass 2).
    let pos_of: BTreeMap<u32, usize> = ir
        .operators
        .iter()
        .enumerate()
        .map(|(i, op)| (op.class.as_u32(), i))
        .collect();

    // Collect alias-resolved call events per method.
    let mut events: Vec<Vec<Vec<ReEvent>>> = Vec::with_capacity(ir.operators.len());
    for (oi, op) in ir.operators.iter().enumerate() {
        let mut per_op = Vec::with_capacity(op.methods.len());
        for m in &op.methods {
            let aliases = alias_sets(m);
            let mut evs: Vec<ReEvent> = Vec::new();
            for_each_expr(m, &mut |e| {
                if let RExpr::CallSelf { method, args } = e {
                    evs.push(ReEvent {
                        callee: (oi, method.index()),
                        local: true,
                        recv: BTreeSet::new(),
                        args: args.iter().map(|a| rexpr_aliases(a, &aliases)).collect(),
                        recv_slot: None,
                        arg_slots: args
                            .iter()
                            .map(|a| match a {
                                RExpr::Local(s) => Some(*s),
                                _ => None,
                            })
                            .collect(),
                    });
                }
            });
            if let RMethodKind::Split { blocks } = &m.resolved.kind {
                for block in blocks {
                    if let RTerminator::RemoteCall {
                        recv_slot,
                        target_class,
                        method,
                        args,
                        ..
                    } = &block.terminator
                    {
                        // Verified in pass 2: the operator and method exist.
                        let toi = pos_of[&target_class.as_u32()];
                        evs.push(ReEvent {
                            callee: (toi, method.index()),
                            local: false,
                            recv: aliases
                                .get(*recv_slot as usize)
                                .cloned()
                                .unwrap_or_default(),
                            args: args.iter().map(|a| rexpr_aliases(a, &aliases)).collect(),
                            recv_slot: Some(*recv_slot),
                            arg_slots: args
                                .iter()
                                .map(|a| match a {
                                    RExpr::Local(s) => Some(*s),
                                    _ => None,
                                })
                                .collect(),
                        });
                    }
                }
            }
            per_op.push(evs);
        }
        events.push(per_op);
    }

    // Seed with direct self-writes, then propagate to a global fixpoint
    // (bits only grow, so this terminates on any input; the call graph is
    // already known acyclic, so it also converges to the least fixpoint the
    // AST analysis computes).
    let mut effects: Vec<Vec<ReEffects>> = ir
        .operators
        .iter()
        .map(|op| {
            op.methods
                .iter()
                .map(|m| ReEffects {
                    writes_self: writes_self_directly_r(m),
                    param_writes: vec![false; m.params.len()],
                    commutative: false,
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for oi in 0..effects.len() {
            for mi in 0..effects[oi].len() {
                let mut eff = effects[oi][mi].clone();
                for ev in &events[oi][mi] {
                    let callee = effects[ev.callee.0][ev.callee.1].clone();
                    if ev.local {
                        eff.writes_self |= callee.writes_self;
                    } else if callee.writes_self {
                        for &p in &ev.recv {
                            if let Some(b) = eff.param_writes.get_mut(p) {
                                *b = true;
                            }
                        }
                    }
                    for (j, arg) in ev.args.iter().enumerate() {
                        // Arity agreement is verified, so `j` is in range;
                        // stay defensive anyway (out-of-range = writes).
                        if callee.param_writes.get(j).copied().unwrap_or(true) {
                            for &p in arg {
                                if let Some(b) = eff.param_writes.get_mut(p) {
                                    *b = true;
                                }
                            }
                        }
                    }
                }
                if eff != effects[oi][mi] {
                    effects[oi][mi] = eff;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Resolve commutativity: syntactic candidate + every self-writing inline
    // helper itself a candidate + writes self + no reference writes.
    let candidates: Vec<Vec<bool>> = ir
        .operators
        .iter()
        .map(|op| {
            op.methods
                .iter()
                .map(|m| commutative_candidate_r(m, false))
                .collect()
        })
        .collect();
    for oi in 0..effects.len() {
        for mi in 0..effects[oi].len() {
            if !candidates[oi][mi] {
                continue;
            }
            let helpers_ok = events[oi][mi].iter().filter(|e| e.local).all(|e| {
                !effects[e.callee.0][e.callee.1].writes_self || candidates[e.callee.0][e.callee.1]
            });
            let eff = &effects[oi][mi];
            if helpers_ok && eff.writes_self && !eff.writes_ref_args() {
                effects[oi][mi].commutative = true;
            }
        }
    }

    // Bit-for-bit comparison with the stored annotations.
    for (oi, op) in ir.operators.iter().enumerate() {
        for (mi, m) in op.methods.iter().enumerate() {
            let re = &effects[oi][mi];
            let fail = |what: String| {
                Err(VerifyError::new(VerifyRule::EffectAgreement, m.span, what)
                    .entity(&op.entity)
                    .method(&m.name))
            };
            report.effect_bits_checked += 3 + m.param_effects.len();
            if m.writes_self != re.writes_self {
                return fail(format!(
                    "stored writes_self={} but re-derivation gives {}",
                    m.writes_self, re.writes_self
                ));
            }
            if m.param_effects != re.param_writes {
                return fail(format!(
                    "stored param_effects={:?} but re-derivation gives {:?}",
                    m.param_effects, re.param_writes
                ));
            }
            if m.writes_ref_args != re.writes_ref_args() {
                return fail(format!(
                    "stored writes_ref_args={} inconsistent with per-parameter bits {:?}",
                    m.writes_ref_args, re.param_writes
                ));
            }
            if m.commutative != re.commutative {
                return fail(format!(
                    "stored commutative={} but re-derivation gives {}",
                    m.commutative, re.commutative
                ));
            }
            // Per-call-site masks must equal the (re-derived) callee bits.
            if let RMethodKind::Split { blocks } = &m.resolved.kind {
                for block in blocks {
                    if let RTerminator::RemoteCall {
                        target_class,
                        method,
                        callee_writes,
                        callee_param_writes,
                        ..
                    } = &block.terminator
                    {
                        let toi = pos_of[&target_class.as_u32()];
                        let callee_re = &effects[toi][method.index()];
                        let callee_name = &ir.operators[toi].methods[method.index()].name;
                        report.call_sites_checked += 1;
                        report.effect_bits_checked += 1 + callee_param_writes.len();
                        if *callee_writes != callee_re.writes_self {
                            return Err(VerifyError::new(
                                VerifyRule::CallSiteEffectAgreement,
                                m.span,
                                format!(
                                    "site calling `{}.{callee_name}` stores \
                                     callee_writes={callee_writes} but the callee \
                                     re-derives to {}",
                                    target_class.name(),
                                    callee_re.writes_self
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name));
                        }
                        if callee_param_writes.as_slice()
                            != &callee_re.param_writes[..callee_param_writes.len()]
                        {
                            return Err(VerifyError::new(
                                VerifyRule::CallSiteEffectAgreement,
                                m.span,
                                format!(
                                    "site calling `{}.{callee_name}` stores \
                                     callee_param_writes={callee_param_writes:?} but the \
                                     callee re-derives to {:?}",
                                    target_class.name(),
                                    callee_re.param_writes
                                ),
                            )
                            .entity(&op.entity)
                            .method(&m.name));
                        }
                    }
                }
            }
        }
    }
    Ok(ReProgram { effects, events })
}

// ---------------------------------------------------------------------------
// Pass 4: liveness re-derivation
// ---------------------------------------------------------------------------

/// Local slots `e` reads, added to `out`.
fn rexpr_uses(e: &RExpr, out: &mut BTreeSet<u32>) {
    walk_rexpr(e, &mut |x| {
        if let RExpr::Local(slot) = x {
            out.insert(*slot);
        }
    });
}

/// Recompute `live_in` for every block of a split method with a worklist
/// solver (predecessor-driven, unlike the round-robin sweep in
/// `resolve.rs`). Both compute the least fixpoint of the same backward
/// dataflow equations, so exact set equality with the stored masks is the
/// correct acceptance test.
fn recompute_live_in(blocks: &[RBlock]) -> Vec<BTreeSet<u32>> {
    let n = blocks.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in blocks.iter().enumerate() {
        let succs: Vec<usize> = match &block.terminator {
            RTerminator::Jump(next) => vec![*next],
            RTerminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            RTerminator::RemoteCall { resume_block, .. } => vec![*resume_block],
            RTerminator::Return(_) => vec![],
        };
        for s in succs {
            // Block targets verified in pass 2.
            preds[s].push(b);
        }
    }
    let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    let mut queued = vec![true; n];
    let mut queue: VecDeque<usize> = (0..n).rev().collect();
    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        let block = &blocks[b];
        let mut live: BTreeSet<u32> = match &block.terminator {
            RTerminator::Jump(next) => live_in[*next].clone(),
            RTerminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                let mut s: BTreeSet<u32> = live_in[*then_block]
                    .union(&live_in[*else_block])
                    .copied()
                    .collect();
                rexpr_uses(cond, &mut s);
                s
            }
            RTerminator::Return(expr) => {
                let mut s = BTreeSet::new();
                if let Some(e) = expr {
                    rexpr_uses(e, &mut s);
                }
                s
            }
            RTerminator::RemoteCall {
                recv_slot,
                args,
                result_slot,
                resume_block,
                ..
            } => {
                // The resume edge defines the result slot; the call itself
                // reads the receiver and its arguments.
                let mut s: BTreeSet<u32> = live_in[*resume_block].clone();
                s.remove(result_slot);
                s.insert(*recv_slot);
                for a in args {
                    rexpr_uses(a, &mut s);
                }
                s
            }
        };
        for stmt in block.stmts.iter().rev() {
            match stmt {
                RFlatStmt::Assign { target, expr } => {
                    if let RTarget::Local(slot) = target {
                        live.remove(slot);
                    }
                    rexpr_uses(expr, &mut live);
                }
                RFlatStmt::AugAssign { target, expr, .. } => {
                    if let RTarget::Local(slot) = target {
                        live.insert(*slot);
                    }
                    rexpr_uses(expr, &mut live);
                }
                RFlatStmt::Expr(expr) => rexpr_uses(expr, &mut live),
            }
        }
        if live != live_in[b] {
            live_in[b] = live;
            for &p in &preds[b] {
                if !queued[p] {
                    queued[p] = true;
                    queue.push_back(p);
                }
            }
        }
    }
    live_in
}

/// Check every stored `live_after` mask against the recomputed live sets.
fn check_liveness(ir: &DataflowIR) -> Result<(), VerifyError> {
    for op in &ir.operators {
        for m in &op.methods {
            let RMethodKind::Split { blocks } = &m.resolved.kind else {
                continue;
            };
            let live_in = recompute_live_in(blocks);
            for (bid, block) in blocks.iter().enumerate() {
                if let RTerminator::RemoteCall {
                    result_slot,
                    resume_block,
                    live_after,
                    ..
                } = &block.terminator
                {
                    let expected: Vec<u32> = live_in[*resume_block]
                        .iter()
                        .copied()
                        .filter(|s| s != result_slot)
                        .collect();
                    if live_after != &expected {
                        return Err(VerifyError::new(
                            VerifyRule::LivenessAgreement,
                            m.span,
                            format!(
                                "block {bid} stores live_after={live_after:?} but the \
                                 live set at resume block {resume_block} is {expected:?}"
                            ),
                        )
                        .entity(&op.entity)
                        .method(&m.name));
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pass 5: lints
// ---------------------------------------------------------------------------

/// Span of the first `self.f = self.f ± e` assignment in a simple method's
/// source body — the exact statement the near-miss lint tells the author to
/// rewrite to `self.f ±= e`. Recurses into control flow; falls back to the
/// `def` header when the shape is not syntactically recoverable (it always
/// is for a near-miss method, by construction of the rewrite check).
fn near_miss_span(m: &CompiledMethod) -> Span {
    fn scan(stmts: &[Stmt]) -> Option<Span> {
        for s in stmts {
            match s {
                Stmt::Assign {
                    target: Target::SelfField(f),
                    value:
                        Expr::Binary {
                            op: BinOp::Add | BinOp::Sub,
                            left,
                            ..
                        },
                    span,
                    ..
                } if matches!(&**left, Expr::SelfField(l, _) if l == f) => {
                    return Some(*span);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    if let Some(found) = scan(then_body).or_else(|| scan(else_body)) {
                        return Some(found);
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    if let Some(found) = scan(body) {
                        return Some(found);
                    }
                }
                _ => {}
            }
        }
        None
    }
    match &m.kind {
        MethodKind::Simple { body } => scan(body).unwrap_or(m.span),
        MethodKind::Split(_) => m.span,
    }
}

/// Span of the expression that keeps parameter `pname`'s write bit alive
/// through conservative aliasing: preferably the first call whose receiver
/// (or argument) is an *alias* of the parameter, otherwise the assignment
/// that created the alias, otherwise the `def` header.
///
/// The alias fixpoint deliberately mirrors the effect analysis'
/// conservatism — any assignment whose right-hand side mentions an alias
/// makes its target one — so the span lands on the same syntax that made
/// the analysis give up.
fn spurious_write_span(m: &CompiledMethod, pname: &str) -> Span {
    // (target local, names the RHS reads, span) — source order.
    let mut assigns: Vec<(String, Vec<String>, Span)> = Vec::new();
    // (receiver-or-argument names, span) per call expression — source order.
    let mut calls: Vec<(Vec<String>, Span)> = Vec::new();

    fn scan_expr(e: &Expr, calls: &mut Vec<(Vec<String>, Span)>) {
        e.walk(&mut |e| {
            if let Expr::Call {
                recv: Some(recv),
                args,
                span,
                ..
            } = e
            {
                let mut names = vec![recv.clone()];
                for a in args {
                    a.for_each_name(&mut |n| names.push(n.to_string()));
                }
                calls.push((names, *span));
            }
        });
    }

    match &m.kind {
        MethodKind::Simple { body } => {
            fn walk_stmts(
                stmts: &[Stmt],
                on_assign: &mut impl FnMut(&str, &Expr, Span),
                on_expr: &mut impl FnMut(&Expr),
            ) {
                for s in stmts {
                    match s {
                        Stmt::Assign {
                            target: Target::Name(n),
                            value,
                            span,
                            ..
                        }
                        | Stmt::AugAssign {
                            target: Target::Name(n),
                            value,
                            span,
                            ..
                        } => {
                            on_assign(n, value, *span);
                            on_expr(value);
                        }
                        Stmt::Assign { value, .. } | Stmt::AugAssign { value, .. } => {
                            on_expr(value)
                        }
                        Stmt::ExprStmt { expr, .. } => on_expr(expr),
                        Stmt::Return { value, .. } => {
                            if let Some(v) = value {
                                on_expr(v);
                            }
                        }
                        Stmt::If {
                            cond,
                            then_body,
                            else_body,
                            ..
                        } => {
                            on_expr(cond);
                            walk_stmts(then_body, on_assign, on_expr);
                            walk_stmts(else_body, on_assign, on_expr);
                        }
                        Stmt::While { cond, body, .. } => {
                            on_expr(cond);
                            walk_stmts(body, on_assign, on_expr);
                        }
                        Stmt::For { iter, body, .. } => {
                            on_expr(iter);
                            walk_stmts(body, on_assign, on_expr);
                        }
                        Stmt::Pass { .. } | Stmt::Break { .. } | Stmt::Continue { .. } => {}
                    }
                }
            }
            walk_stmts(
                body,
                &mut |n, value, span| assigns.push((n.to_string(), value.referenced_names(), span)),
                &mut |e| scan_expr(e, &mut calls),
            );
        }
        MethodKind::Split(split) => {
            for block in &split.blocks {
                for fs in &block.stmts {
                    match fs {
                        crate::split::FlatStmt::Assign {
                            target: Target::Name(n),
                            expr,
                        }
                        | crate::split::FlatStmt::AugAssign {
                            target: Target::Name(n),
                            expr,
                            ..
                        } => {
                            assigns.push((n.to_string(), expr.referenced_names(), expr.span()));
                            scan_expr(expr, &mut calls);
                        }
                        crate::split::FlatStmt::Assign { expr, .. }
                        | crate::split::FlatStmt::AugAssign { expr, .. }
                        | crate::split::FlatStmt::Expr { expr } => scan_expr(expr, &mut calls),
                    }
                }
                match &block.terminator {
                    crate::split::Terminator::RemoteCall { recv_var, args, .. } => {
                        // The terminator lost its own span in flattening;
                        // approximate the call site with its arguments'.
                        let span = args
                            .iter()
                            .map(|a| a.span())
                            .reduce(Span::merge)
                            .unwrap_or_else(Span::synthetic);
                        let mut names = vec![recv_var.clone()];
                        for a in args {
                            a.for_each_name(&mut |n| names.push(n.to_string()));
                        }
                        calls.push((names, span));
                    }
                    crate::split::Terminator::Branch { cond, .. } => scan_expr(cond, &mut calls),
                    crate::split::Terminator::Return(Some(e)) => scan_expr(e, &mut calls),
                    _ => {}
                }
            }
        }
    }

    // Alias fixpoint from the parameter name.
    let mut aliases: BTreeSet<&str> = BTreeSet::new();
    aliases.insert(pname);
    loop {
        let mut changed = false;
        for (target, reads, _) in &assigns {
            if !aliases.contains(target.as_str())
                && reads.iter().any(|r| aliases.contains(r.as_str()))
            {
                aliases.insert(target);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let through_alias = |names: &[String]| {
        names
            .iter()
            .any(|n| n != pname && aliases.contains(n.as_str()))
    };
    if let Some((_, span)) = calls
        .iter()
        .find(|(names, span)| !span.is_synthetic() && through_alias(names))
    {
        return *span;
    }
    if let Some((_, _, span)) = assigns.iter().find(|(target, reads, span)| {
        !span.is_synthetic()
            && target != pname
            && aliases.contains(target.as_str())
            && reads.iter().any(|r| aliases.contains(r.as_str()))
    }) {
        return *span;
    }
    m.span
}

fn collect_lints(ir: &DataflowIR, derived: &CallGraph, re: &ReProgram) -> Vec<Lint> {
    let mut lints = Vec::new();

    // Near-miss bits drive two lint classes; compute once.
    let near_miss: Vec<Vec<bool>> = ir
        .operators
        .iter()
        .enumerate()
        .map(|(oi, op)| {
            op.methods
                .iter()
                .enumerate()
                .map(|(mi, m)| {
                    if m.commutative || m.is_split() {
                        return false;
                    }
                    if !commutative_candidate_r(m, true) {
                        return false;
                    }
                    let eff = &re.effects[oi][mi];
                    let helpers_ok = re.events[oi][mi].iter().filter(|e| e.local).all(|e| {
                        let callee = &re.effects[e.callee.0][e.callee.1];
                        !callee.writes_self || callee.commutative
                    });
                    helpers_ok && eff.writes_self && !eff.writes_ref_args()
                })
                .collect()
        })
        .collect();

    // Callees with at least one incoming edge (any kind).
    let called: BTreeSet<(&str, &str)> = derived
        .edges
        .iter()
        .map(|e| (e.callee.entity.as_str(), e.callee.method.as_str()))
        .collect();

    for (oi, op) in ir.operators.iter().enumerate() {
        // unused-field: a non-key field no method other than __init__ ever
        // reads or writes.
        let mut used = vec![false; op.layout.len()];
        for m in &op.methods {
            if m.name == "__init__" {
                continue;
            }
            for_each_expr(m, &mut |e| {
                if let RExpr::Field(slot) = e {
                    if let Some(u) = used.get_mut(*slot as usize) {
                        *u = true;
                    }
                }
            });
            for_each_target(m, &mut |t| {
                if let RTarget::Field(slot) = t {
                    if let Some(u) = used.get_mut(*slot as usize) {
                        *u = true;
                    }
                }
            });
        }
        for (slot, (name, _)) in op.layout.iter().enumerate() {
            if slot as u32 != op.key_slot && !used[slot] {
                lints.push(Lint {
                    kind: LintKind::UnusedField,
                    level: LintLevel::Allow,
                    entity: op.entity.clone(),
                    method: None,
                    span: op.span,
                    message: format!(
                        "field `{name}` is never referenced outside __init__; it bloats \
                         every state record and snapshot"
                    ),
                });
            }
        }

        for (mi, m) in op.methods.iter().enumerate() {
            // dead-method: `_`-prefixed (internal by convention) and never
            // called. Public names stay exempt — ingress can reach them.
            if m.name.starts_with('_')
                && m.name != "__init__"
                && m.name != "__key__"
                && !called.contains(&(op.entity.as_str(), m.name.as_str()))
            {
                lints.push(Lint {
                    kind: LintKind::DeadMethod,
                    level: LintLevel::Warn,
                    entity: op.entity.clone(),
                    method: Some(m.name.clone()),
                    span: m.span,
                    message: format!("internal method `{}` is never called by any method", m.name),
                });
            }

            // spurious-write-effect: parameter j is marked written, but no
            // call site in this method passes parameter j *itself* (as
            // receiver or argument) to a writer — only conservative aliasing
            // keeps the bit set.
            for (j, &written) in m.param_effects.iter().enumerate() {
                if !written {
                    continue;
                }
                let j_slot = j as u32;
                let definite = re.events[oi][mi].iter().any(|ev| {
                    let callee = &re.effects[ev.callee.0][ev.callee.1];
                    if ev.recv_slot == Some(j_slot) && callee.writes_self {
                        return true;
                    }
                    ev.arg_slots.iter().enumerate().any(|(k, slot)| {
                        *slot == Some(j_slot)
                            && callee.param_writes.get(k).copied().unwrap_or(false)
                    })
                });
                if !definite {
                    let pname = m.params.get(j).map(|(n, _)| n.as_str()).unwrap_or("?");
                    lints.push(Lint {
                        kind: LintKind::SpuriousWriteEffect,
                        level: LintLevel::Warn,
                        entity: op.entity.clone(),
                        method: Some(m.name.clone()),
                        span: spurious_write_span(m, pname),
                        message: format!(
                            "parameter `{pname}` is marked written only through \
                             conservative aliasing; its key takes exclusive write \
                             reservations a direct call shape would avoid"
                        ),
                    });
                }
            }

            // commutativity-near-miss.
            if near_miss[oi][mi] {
                lints.push(Lint {
                    kind: LintKind::CommutativityNearMiss,
                    level: LintLevel::Warn,
                    entity: op.entity.clone(),
                    method: Some(m.name.clone()),
                    span: near_miss_span(m),
                    message: format!(
                        "`{}` misses the commutative class only because it spells an \
                         additive update `self.f = self.f ± e`; rewriting to \
                         `self.f ±= e` lets same-key calls share a batch",
                        m.name
                    ),
                });
            }
        }

        // always-conflicting-pair: two exclusive self-writers on one
        // operator. Advisory (Allow) unless both are a trivial rewrite away
        // from commuting, in which case the fix is actionable (Warn).
        for (ai, a) in op.methods.iter().enumerate() {
            for (bi, b) in op.methods.iter().enumerate().skip(ai + 1) {
                if a.name.starts_with("__") || b.name.starts_with("__") {
                    continue;
                }
                let exclusive_writer = |m: &CompiledMethod| m.writes_self && !m.commutative;
                if !exclusive_writer(a) || !exclusive_writer(b) {
                    continue;
                }
                let both_rewritable = near_miss[oi][ai] && near_miss[oi][bi];
                lints.push(Lint {
                    kind: LintKind::AlwaysConflictingPair,
                    level: if both_rewritable {
                        LintLevel::Warn
                    } else {
                        LintLevel::Allow
                    },
                    entity: op.entity.clone(),
                    method: Some(a.name.clone()),
                    span: a.span,
                    message: format!(
                        "`{}` and `{}` are both exclusive self-writers: same-key calls \
                         to them never share a batch{}",
                        a.name,
                        b.name,
                        if both_rewritable {
                            " (both are a `+=` rewrite away from commuting)"
                        } else {
                            ""
                        }
                    ),
                });
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use entity_lang::{corpus, frontend};

    fn ir_for(src: &str) -> DataflowIR {
        let (module, types) = frontend(src).unwrap();
        DataflowIR::from_analysis(&analyze(&module, &types).unwrap()).unwrap()
    }

    #[test]
    fn corpus_programs_verify_clean() {
        for (name, src) in corpus::all_programs() {
            let report = verify(&ir_for(src)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.methods_checked > 0, "{name}: nothing checked");
            let warns: Vec<String> = report
                .lints_at_least(LintLevel::Warn)
                .map(|l| l.to_string())
                .collect();
            assert!(warns.is_empty(), "{name}: unexpected warn lints: {warns:?}");
        }
    }

    #[test]
    fn report_counts_sites_and_bits() {
        let report = verify(&ir_for(corpus::FIGURE1_SOURCE)).unwrap();
        assert!(report.call_sites_checked >= 2, "buy_item has two hops");
        assert!(report.effect_bits_checked > report.methods_checked * 3);
    }

    #[test]
    fn forged_param_effect_is_rejected() {
        let mut ir = ir_for(corpus::ACCOUNT_SOURCE);
        let op = ir
            .operators
            .iter_mut()
            .find(|o| o.entity == "Account")
            .unwrap();
        let m = op
            .methods
            .iter_mut()
            .find(|m| m.name == "transfer")
            .unwrap();
        // transfer(amount, to): forge the `to` bit to read-only.
        m.param_effects[1] = false;
        m.writes_ref_args = false;
        let err = verify(&ir).unwrap_err();
        assert_eq!(err.rule, VerifyRule::EffectAgreement);
        assert_eq!(err.location(), "Account.transfer");
        assert!(!err.span.is_synthetic(), "diagnostic carries a source span");
    }

    #[test]
    fn out_of_range_field_slot_is_rejected() {
        let mut ir = ir_for(corpus::ACCOUNT_SOURCE);
        let op = &mut ir.operators[0];
        let nfields = op.layout.len() as u32;
        let m = op.methods.iter_mut().find(|m| m.name == "read").unwrap();
        if let RMethodKind::Simple { body } = &mut m.resolved.kind {
            body.insert(0, RStmt::Expr(RExpr::Field(nfields + 3)));
        }
        let err = verify(&ir).unwrap_err();
        assert_eq!(err.rule, VerifyRule::FieldSlotBounds);
        assert_eq!(err.location(), "Account.read");
    }

    #[test]
    fn stale_liveness_mask_is_rejected() {
        let mut ir = ir_for(corpus::ACCOUNT_SOURCE);
        let op = &mut ir.operators[0];
        let m = op
            .methods
            .iter_mut()
            .find(|m| m.name == "transfer")
            .unwrap();
        if let RMethodKind::Split { blocks } = &mut m.resolved.kind {
            for b in blocks.iter_mut() {
                if let RTerminator::RemoteCall { live_after, .. } = &mut b.terminator {
                    live_after.clear();
                }
            }
        }
        let err = verify(&ir).unwrap_err();
        assert_eq!(err.rule, VerifyRule::LivenessAgreement);
    }

    #[test]
    fn dead_internal_method_lints() {
        let src = r#"
entity C:
    name: str
    n: int

    def __init__(self, name: str):
        self.name = name
        self.n = 0

    def __key__(self) -> str:
        return self.name

    def bump(self) -> int:
        self.n += 1
        return self.n

    def _orphan(self) -> int:
        return 7
"#;
        let report = verify(&ir_for(src)).unwrap();
        assert!(report
            .lints
            .iter()
            .any(|l| l.kind == LintKind::DeadMethod && l.method.as_deref() == Some("_orphan")));
    }

    #[test]
    fn near_miss_rewrite_lints() {
        let src = r#"
entity C:
    name: str
    n: int

    def __init__(self, name: str):
        self.name = name
        self.n = 0

    def __key__(self) -> str:
        return self.name

    def add(self, k: int) -> int:
        self.n = self.n + k
        return 1
"#;
        let report = verify(&ir_for(src)).unwrap();
        let lint = report
            .lints
            .iter()
            .find(|l| l.kind == LintKind::CommutativityNearMiss)
            .expect("near-miss lint");
        assert_eq!(lint.method.as_deref(), Some("add"));
        assert_eq!(lint.level, LintLevel::Warn);
        // The span names the additive assignment itself, not the `def` line.
        assert!(!lint.span.is_synthetic());
        let assign_line = 1 + src
            .lines()
            .position(|l| l.contains("self.n = self.n + k"))
            .unwrap();
        assert_eq!(lint.span.start.line as usize, assign_line);
    }

    #[test]
    fn spurious_write_lint_points_at_the_aliased_call() {
        let src = r#"
entity Cell:
    name: str
    value: int

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def __key__(self) -> str:
        return self.name

    def bump(self, amount: int) -> int:
        self.value += amount
        return self.value

    def poke(self, other: Cell) -> int:
        alias: Cell = other
        v: int = alias.bump(1)
        return v
"#;
        let report = verify(&ir_for(src)).unwrap();
        let lint = report
            .lints
            .iter()
            .find(|l| l.kind == LintKind::SpuriousWriteEffect)
            .expect("spurious-write lint");
        assert_eq!(lint.method.as_deref(), Some("poke"));
        assert_eq!(lint.level, LintLevel::Warn);
        // The span lands on the write-through-alias call site, not the
        // method header.
        assert!(!lint.span.is_synthetic());
        let call_line = 1 + src
            .lines()
            .position(|l| l.contains("alias.bump(1)"))
            .unwrap();
        assert_eq!(lint.span.start.line as usize, call_line);
    }
}
