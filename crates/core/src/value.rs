//! Runtime value model for compiled entity programs.
//!
//! The paper's prototype executes Python objects; we interpret the compiled
//! method bodies over a small dynamic [`Value`] model. Entity references are
//! first-class values ([`Value::EntityRef`]) — they are what callers pass
//! around instead of object pointers, and they carry the partition key the
//! routers use.

use crate::error::{RuntimeError, RuntimeResult};
use crate::ids::ClassId;
use crate::layout::FieldLayout;
use entity_lang::ast::{BinOp, CmpOp, UnaryOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A partition key: entity keys must be `int` or `str` (enforced by the
/// type checker), mirroring the paper's `__key__` requirement. String keys
/// carry an `Arc<str>` payload, so cloning a key (and therefore an
/// [`EntityAddr`]) is a refcount bump, not a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Key {
    /// Integer key.
    Int(i64),
    /// String key (shared payload; O(1) clone).
    Str(Arc<str>),
}

impl Key {
    /// Deterministic partition assignment for this key (FNV-1a based, so it is
    /// stable across processes and runs — important for replay/recovery tests).
    pub fn partition(&self, partitions: usize) -> usize {
        assert!(partitions > 0, "partition count must be positive");
        (self.stable_hash() % partitions as u64) as usize
    }

    /// A stable 64-bit hash of the key (FNV-1a, allocation-free).
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let fnv = |bytes: &[u8]| {
            let mut hash = OFFSET;
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
            hash
        };
        match self {
            Key::Int(v) => fnv(&v.to_le_bytes()),
            Key::Str(s) => fnv(s.as_bytes()),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(v) => write!(f, "{v}"),
            Key::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Key {
    fn from(v: &str) -> Self {
        Key::Str(Arc::from(v))
    }
}

impl From<String> for Key {
    fn from(v: String) -> Self {
        Key::Str(Arc::from(v))
    }
}

impl From<Arc<str>> for Key {
    fn from(v: Arc<str>) -> Self {
        Key::Str(v)
    }
}

// Only lossless integer conversions: a `u64` (or `usize`) impl would have to
// wrap values above `i64::MAX` into negative keys that silently alias other
// entities — callers with wide types must convert explicitly.
macro_rules! key_int_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Key {
            fn from(v: $t) -> Self {
                Key::Int(i64::from(v))
            }
        }
    )*};
}

key_int_from!(i64, i32, u8, u32);

/// The address of a stateful entity instance: which operator (entity class,
/// as its interned [`ClassId`]) and which key within that operator's
/// partitioned state. Since PR 2 this is a fixed-width, hash-friendly
/// structure — cloning it bumps a refcount at most, comparing two addresses
/// starts with a single `u32` compare, and hashing writes two integers (the
/// key's stable 64-bit hash is computed once at construction and cached).
/// The class *name* is recoverable through the global interner
/// ([`EntityAddr::entity_name`]) for display and debugging.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntityAddr {
    /// Entity class (dataflow operator) id.
    pub class: ClassId,
    /// Partition key of the instance. Private so the cached hash cannot
    /// drift: addresses are immutable once built.
    key: Key,
    /// `key.stable_hash()`, cached at construction. Deterministic in `key`,
    /// so deriving `PartialEq`/`Ord` over it is sound (it can never
    /// disagree with the key comparison that precedes it).
    key_hash: u64,
}

impl EntityAddr {
    /// Create an address from an entity *name* (ingress/test shim: interns
    /// the name; the per-hop path passes addresses around by id).
    pub fn new(entity: impl AsRef<str>, key: Key) -> Self {
        Self::from_ids(ClassId::intern(entity.as_ref()), key)
    }

    /// Create an address from an already-resolved class id (hot path).
    pub fn from_ids(class: ClassId, key: Key) -> Self {
        let key_hash = key.stable_hash();
        EntityAddr {
            class,
            key,
            key_hash,
        }
    }

    /// The partition key.
    #[inline]
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// The key's stable 64-bit hash (cached; partition routing uses this
    /// without re-walking the key bytes).
    #[inline]
    pub fn key_hash(&self) -> u64 {
        self.key_hash
    }

    /// Deterministic partition assignment for this address's key.
    #[inline]
    pub fn partition(&self, partitions: usize) -> usize {
        assert!(partitions > 0, "partition count must be positive");
        (self.key_hash % partitions as u64) as usize
    }

    /// Consume the address, returning its key.
    pub fn into_key(self) -> Key {
        self.key
    }

    /// The class name (debug/display path; resolves through the interner).
    pub fn entity_name(&self) -> &'static str {
        self.class.name()
    }
}

// Hashing writes two fixed-width integers — no key bytes are re-walked.
// Contract holds because equal addresses have equal (deterministic) cached
// hashes.
impl std::hash::Hash for EntityAddr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.class.as_u32().hash(state);
        self.key_hash.hash(state);
    }
}

impl Serialize for EntityAddr {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            (
                serde::Content::Str("class".to_string()),
                self.class.serialize(),
            ),
            (serde::Content::Str("key".to_string()), self.key.serialize()),
        ])
    }
}

impl Deserialize for EntityAddr {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let fields = content.as_fields()?;
        Ok(EntityAddr::from_ids(
            serde::de_field(fields, "class")?,
            serde::de_field(fields, "key")?,
        ))
    }
}

impl fmt::Display for EntityAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.entity_name(), self.key)
    }
}

/// A dynamic runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String (shared `Arc<str>` payload: reading or cloning a large string
    /// field is O(1), no heap copy).
    Str(Arc<str>),
    /// List.
    List(Vec<Value>),
    /// The `None` value (also the return value of `-> None` methods).
    None,
    /// A reference to another stateful entity.
    EntityRef(EntityAddr),
}

/// The shared empty string (pre-initialised `str` fields all point here).
fn empty_str() -> Arc<str> {
    static EMPTY: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| Arc::from("")).clone()
}

impl Value {
    /// Construct an entity reference value (name-resolving shim).
    pub fn entity_ref(entity: impl AsRef<str>, key: Key) -> Self {
        Value::EntityRef(EntityAddr::new(entity, key))
    }

    /// Extract an integer.
    pub fn as_int(&self) -> RuntimeResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(RuntimeError::new(format!("expected int, found {other}"))),
        }
    }

    /// Extract a float (ints widen).
    pub fn as_float(&self) -> RuntimeResult<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(RuntimeError::new(format!("expected float, found {other}"))),
        }
    }

    /// Extract a bool.
    pub fn as_bool(&self) -> RuntimeResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(RuntimeError::new(format!("expected bool, found {other}"))),
        }
    }

    /// Extract a string.
    pub fn as_str(&self) -> RuntimeResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RuntimeError::new(format!("expected str, found {other}"))),
        }
    }

    /// Extract a list.
    pub fn as_list(&self) -> RuntimeResult<&[Value]> {
        match self {
            Value::List(v) => Ok(v),
            other => Err(RuntimeError::new(format!("expected list, found {other}"))),
        }
    }

    /// Extract an entity reference.
    pub fn as_entity_ref(&self) -> RuntimeResult<&EntityAddr> {
        match self {
            Value::EntityRef(addr) => Ok(addr),
            other => Err(RuntimeError::new(format!(
                "expected entity reference, found {other}"
            ))),
        }
    }

    /// Convert this value into a partition key, if possible. For string
    /// values this shares the payload (refcount bump, no copy).
    pub fn as_key(&self) -> RuntimeResult<Key> {
        match self {
            Value::Int(v) => Ok(Key::Int(*v)),
            Value::Str(s) => Ok(Key::Str(s.clone())),
            other => Err(RuntimeError::new(format!(
                "value {other} cannot be used as a partition key"
            ))),
        }
    }

    /// Approximate serialized size in bytes; used by the state-size overhead
    /// experiment (Section 4 "System overhead").
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) | Value::None => 1,
            Value::Str(s) => s.len() + 8,
            Value::List(items) => 8 + items.iter().map(Value::approx_size).sum::<usize>(),
            Value::EntityRef(addr) => {
                addr.entity_name().len()
                    + 8
                    + match &addr.key() {
                        Key::Int(_) => 8,
                        Key::Str(s) => s.len() + 8,
                    }
            }
        }
    }

    /// Apply a binary arithmetic operator.
    pub fn binary(op: BinOp, left: &Value, right: &Value) -> RuntimeResult<Value> {
        use Value::*;
        let err = || {
            RuntimeError::new(format!(
                "operator `{op}` not defined for {left} and {right}"
            ))
        };
        match (op, left, right) {
            (BinOp::Add, Str(a), Str(b)) => Ok(Str(format!("{a}{b}").into())),
            (BinOp::Add, List(a), List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(List(out))
            }
            (BinOp::Add, Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (BinOp::Sub, Int(a), Int(b)) => Ok(Int(a.wrapping_sub(*b))),
            (BinOp::Mul, Int(a), Int(b)) => Ok(Int(a.wrapping_mul(*b))),
            (BinOp::FloorDiv, Int(a), Int(b)) => {
                if *b == 0 {
                    Err(RuntimeError::new("integer division by zero"))
                } else {
                    Ok(Int(a.div_euclid(*b)))
                }
            }
            (BinOp::Mod, Int(a), Int(b)) => {
                if *b == 0 {
                    Err(RuntimeError::new("integer modulo by zero"))
                } else {
                    Ok(Int(a.rem_euclid(*b)))
                }
            }
            (BinOp::Div, a, b) if a.is_numeric() && b.is_numeric() => {
                let denom = b.as_float()?;
                if denom == 0.0 {
                    Err(RuntimeError::new("division by zero"))
                } else {
                    Ok(Float(a.as_float()? / denom))
                }
            }
            (op, a, b) if a.is_numeric() && b.is_numeric() => {
                let (a, b) = (a.as_float()?, b.as_float()?);
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::FloorDiv => (a / b).floor(),
                    BinOp::Mod => a.rem_euclid(b),
                    BinOp::Div => unreachable!("handled above"),
                };
                Ok(Float(v))
            }
            _ => Err(err()),
        }
    }

    /// Apply a comparison operator.
    pub fn compare(op: CmpOp, left: &Value, right: &Value) -> RuntimeResult<Value> {
        use std::cmp::Ordering;
        let ord: Option<Ordering> = match (left, right) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => a.as_float()?.partial_cmp(&b.as_float()?),
            _ => None,
        };
        let result = match (op, ord) {
            (CmpOp::Eq, _) => left == right,
            (CmpOp::Ne, _) => left != right,
            (CmpOp::Lt, Some(o)) => o.is_lt(),
            (CmpOp::Le, Some(o)) => o.is_le(),
            (CmpOp::Gt, Some(o)) => o.is_gt(),
            (CmpOp::Ge, Some(o)) => o.is_ge(),
            _ => {
                return Err(RuntimeError::new(format!(
                    "cannot order {left} and {right}"
                )));
            }
        };
        Ok(Value::Bool(result))
    }

    /// Apply a unary operator.
    pub fn unary(op: UnaryOp, operand: &Value) -> RuntimeResult<Value> {
        match (op, operand) {
            (UnaryOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
            (UnaryOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
            (UnaryOp::Not, Value::Bool(v)) => Ok(Value::Bool(!v)),
            (op, v) => Err(RuntimeError::new(format!(
                "unary operator {op:?} not defined for {v}"
            ))),
        }
    }

    /// True if the value is an int or float.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// The default value for a declared type, used to pre-initialise entity
    /// fields before `__init__` runs.
    pub fn default_for(ty: &entity_lang::Type) -> Value {
        use entity_lang::Type;
        match ty {
            Type::Int => Value::Int(0),
            Type::Float => Value::Float(0.0),
            Type::Bool => Value::Bool(false),
            Type::Str => Value::Str(empty_str()),
            Type::List(_) => Value::List(Vec::new()),
            Type::Entity(_) | Type::None => Value::None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(true) => write!(f, "True"),
            Value::Bool(false) => write!(f, "False"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::None => write!(f, "None"),
            Value::EntityRef(addr) => write!(f, "<{addr}>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl Value {
    /// A coarse static type describing this value (used when tests build
    /// ad-hoc entity states whose layout was not produced by the compiler).
    pub fn type_hint(&self) -> entity_lang::Type {
        use entity_lang::Type;
        match self {
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Bool(_) => Type::Bool,
            Value::Str(_) => Type::Str,
            Value::List(items) => Type::List(Box::new(
                items.first().map(Value::type_hint).unwrap_or(Type::None),
            )),
            Value::EntityRef(addr) => Type::Entity(addr.entity_name().to_string()),
            Value::None => Type::None,
        }
    }
}

/// The state of one entity instance: a fixed-layout `Vec<Value>` indexed by
/// the entity class's [`FieldLayout`] slots.
///
/// This is what operators store per key and what snapshots persist. The hot
/// path (the interpreter) reads and writes fields by `u32` slot; the
/// string-keyed accessors ([`get`], [`insert`], [`as_map`]) remain for tests,
/// pretty-printing, and the oracle interpreter, which the paper's programming
/// model treats as a debugging aid rather than the execution path.
///
/// [`get`]: EntityState::get
/// [`insert`]: EntityState::insert
/// [`as_map`]: EntityState::as_map
#[derive(Debug, Clone)]
pub struct EntityState {
    layout: Arc<FieldLayout>,
    slots: Vec<Value>,
    /// Transient write marker: set by every field write, cleared by the
    /// runtime before executing a hop, so "did this invocation write?" is an
    /// O(1) question instead of a deep state comparison. Not part of
    /// equality or serialization.
    written: bool,
}

impl Default for EntityState {
    fn default() -> Self {
        Self::new()
    }
}

impl EntityState {
    /// An empty, ad-hoc state; fields are added by [`EntityState::insert`].
    pub fn new() -> Self {
        EntityState {
            layout: Arc::new(FieldLayout::empty()),
            slots: Vec::new(),
            written: false,
        }
    }

    /// A state laid out per `layout`, with every field set to its type's
    /// default value (what the paper's model prescribes before `__init__`).
    pub fn with_layout(layout: Arc<FieldLayout>) -> Self {
        let slots = layout
            .iter()
            .map(|(_, ty)| Value::default_for(ty))
            .collect();
        EntityState {
            layout,
            slots,
            written: false,
        }
    }

    /// Rebuild a state from a layout and its slot values (snapshot recovery).
    pub fn from_parts(layout: Arc<FieldLayout>, slots: Vec<Value>) -> Self {
        assert_eq!(layout.len(), slots.len(), "slot count must match layout");
        EntityState {
            layout,
            slots,
            written: false,
        }
    }

    /// True if any field was written since the last [`clear_written`].
    ///
    /// [`clear_written`]: EntityState::clear_written
    pub fn was_written(&self) -> bool {
        self.written
    }

    /// Reset the write marker (runtimes call this before executing a hop).
    pub fn clear_written(&mut self) {
        self.written = false;
    }

    /// The shared field layout.
    pub fn layout(&self) -> &Arc<FieldLayout> {
        &self.layout
    }

    /// Read a field slot (hot path).
    #[inline]
    pub fn slot(&self, slot: u32) -> &Value {
        &self.slots[slot as usize]
    }

    /// Write a field slot (hot path).
    #[inline]
    pub fn set_slot(&mut self, slot: u32, value: Value) {
        self.written = true;
        self.slots[slot as usize] = value;
    }

    /// All slot values in layout order.
    pub fn slots(&self) -> &[Value] {
        &self.slots
    }

    /// Read a field by name (debug view).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.layout
            .slot_of(name)
            .map(|slot| &self.slots[slot as usize])
    }

    /// Write a field by name, growing the layout if the field is new (used by
    /// tests that build ad-hoc states; compiled states always hit an existing
    /// slot). Growing clones the layout for this instance only (`Arc` CoW).
    pub fn insert(&mut self, name: String, value: Value) {
        self.written = true;
        match self.layout.slot_of(&name) {
            Some(slot) => self.slots[slot as usize] = value,
            None => {
                let ty = value.type_hint();
                Arc::make_mut(&mut self.layout).push(name, ty);
                self.slots.push(value);
            }
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the state has no fields.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate `(field name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.layout.iter().map(|(n, _)| n).zip(self.slots.iter())
    }

    /// The `BTreeMap` debug view (pretty-printing, test assertions).
    pub fn as_map(&self) -> BTreeMap<String, Value> {
        self.iter()
            .map(|(n, v)| (n.to_string(), v.clone()))
            .collect()
    }
}

impl PartialEq for EntityState {
    fn eq(&self, other: &Self) -> bool {
        // Fast path: instances of the same compiled class share one layout
        // Arc, so slot vectors compare positionally.
        if Arc::ptr_eq(&self.layout, &other.layout) {
            return self.slots == other.slots;
        }
        // Layouts may differ in declaration order (e.g. ad-hoc test states vs
        // compiled ones); equality is by field name → value.
        self.len() == other.len()
            && self
                .iter()
                .all(|(name, value)| other.get(name) == Some(value))
    }
}

impl std::ops::Index<&str> for EntityState {
    type Output = Value;

    fn index(&self, name: &str) -> &Value {
        self.get(name)
            .unwrap_or_else(|| panic!("entity state has no field `{name}`"))
    }
}

impl Serialize for EntityState {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(
            self.iter()
                .map(|(n, v)| (serde::Content::Str(n.to_string()), v.serialize()))
                .collect(),
        )
    }
}

impl Deserialize for EntityState {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let mut state = EntityState::new();
        for (key, value) in content.as_fields()? {
            let name = String::deserialize(key)?;
            state.insert(name, Value::deserialize(value)?);
        }
        Ok(state)
    }
}

/// The local-variable frame of one method invocation: a dense slot vector
/// indexed by the method's [`crate::layout::LocalTable`]. `None` marks a local
/// that has not been assigned yet (reading it is the classic "undefined
/// variable" runtime error).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Locals {
    slots: Vec<Option<Value>>,
}

impl Locals {
    /// A frame with `len` unassigned slots.
    pub fn with_len(len: usize) -> Self {
        Locals {
            slots: vec![None; len],
        }
    }

    /// A frame with `len` slots whose leading slots hold `args` (parameters
    /// occupy the first slots of every local table).
    pub fn from_args(len: usize, args: &[Value]) -> Self {
        debug_assert!(args.len() <= len);
        let mut slots: Vec<Option<Value>> = Vec::with_capacity(len);
        slots.extend(args.iter().cloned().map(Some));
        slots.resize(len, None);
        Locals { slots }
    }

    /// Read a slot; `None` if the local was never assigned.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&Value> {
        self.slots.get(slot as usize).and_then(Option::as_ref)
    }

    /// Assign a slot.
    #[inline]
    pub fn set(&mut self, slot: u32, value: Value) {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(value);
    }

    /// Grow to at least `len` slots (resuming a frame saved by an older
    /// compile of the same method).
    pub fn ensure_len(&mut self, len: usize) {
        if self.slots.len() < len {
            self.slots.resize(len, None);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate serialized size in bytes (overhead experiment).
    pub fn approx_size(&self) -> usize {
        self.slots
            .iter()
            .map(|s| 1 + s.as_ref().map(Value::approx_size).unwrap_or(0))
            .sum()
    }

    /// Drop every slot not in `live` (a sorted list of slot ids), resetting
    /// it to the *unassigned* state, then trim trailing unassigned slots.
    /// Used by the split-point liveness optimization: a suspended frame only
    /// carries the locals some resume path still reads. Reading a wrongly
    /// dropped slot fails loudly as an undefined variable, never as stale
    /// data.
    pub fn retain_slots(&mut self, live: &[u32]) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            // `live` is sorted and tiny; binary search beats a set here.
            if slot.is_some() && live.binary_search(&(i as u32)).is_err() {
                *slot = None;
            }
        }
        while matches!(self.slots.last(), Some(None)) {
            self.slots.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_partition_is_stable_and_in_range() {
        for p in [1usize, 2, 7, 64] {
            for i in 0..100i64 {
                let k = Key::Int(i);
                let a = k.partition(p);
                let b = k.partition(p);
                assert_eq!(a, b);
                assert!(a < p);
            }
        }
        assert_eq!(
            Key::Str("user42".into()).partition(8),
            Key::Str("user42".into()).partition(8)
        );
    }

    #[test]
    fn integer_arithmetic() {
        use BinOp::*;
        let v = |a: i64| Value::Int(a);
        assert_eq!(Value::binary(Add, &v(2), &v(3)).unwrap(), v(5));
        assert_eq!(Value::binary(Sub, &v(2), &v(3)).unwrap(), v(-1));
        assert_eq!(Value::binary(Mul, &v(4), &v(3)).unwrap(), v(12));
        assert_eq!(Value::binary(FloorDiv, &v(7), &v(2)).unwrap(), v(3));
        assert_eq!(Value::binary(Mod, &v(7), &v(3)).unwrap(), v(1));
        assert_eq!(Value::binary(Div, &v(7), &v(2)).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::binary(BinOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(Value::binary(BinOp::FloorDiv, &Value::Int(1), &Value::Int(0)).is_err());
        assert!(Value::binary(BinOp::Mod, &Value::Int(1), &Value::Int(0)).is_err());
    }

    #[test]
    fn string_and_list_concatenation() {
        assert_eq!(
            Value::binary(BinOp::Add, &"ab".into(), &"cd".into()).unwrap(),
            Value::Str("abcd".into())
        );
        let l1 = Value::List(vec![Value::Int(1)]);
        let l2 = Value::List(vec![Value::Int(2)]);
        assert_eq!(
            Value::binary(BinOp::Add, &l1, &l2).unwrap(),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Value::compare(CmpOp::Lt, &Value::Int(1), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::compare(CmpOp::Eq, &"a".into(), &"a".into()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::compare(CmpOp::Ge, &Value::Float(2.0), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::compare(CmpOp::Lt, &"a".into(), &Value::Int(1)).is_err());
    }

    #[test]
    fn mixed_numeric_widens_to_float() {
        assert_eq!(
            Value::binary(BinOp::Add, &Value::Int(1), &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert_eq!(Value::Int(5).as_float().unwrap(), 5.0);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(
            Value::Str("k".into()).as_key().unwrap(),
            Key::Str("k".into())
        );
        assert!(Value::Bool(true).as_key().is_err());
        let r = Value::entity_ref("Item", Key::Str("apple".into()));
        assert_eq!(r.as_entity_ref().unwrap().entity_name(), "Item");
    }

    #[test]
    fn approx_size_grows_with_payload() {
        let small = Value::Str("x".repeat(10).into());
        let big = Value::Str("x".repeat(1000).into());
        assert!(big.approx_size() > small.approx_size());
        assert!(Value::List(vec![Value::Int(1); 100]).approx_size() >= 800);
    }

    #[test]
    fn default_values_match_types() {
        use entity_lang::Type;
        assert_eq!(Value::default_for(&Type::Int), Value::Int(0));
        assert_eq!(Value::default_for(&Type::Str), Value::Str("".into()));
        assert_eq!(
            Value::default_for(&Type::List(Box::new(Type::Int))),
            Value::List(vec![])
        );
    }

    #[test]
    fn display_is_python_like() {
        assert_eq!(Value::Bool(true).to_string(), "True");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            Value::entity_ref("User", Key::Str("alice".into())).to_string(),
            "<User[alice]>"
        );
    }
}
