//! Length-prefixed binary codec for runtime values and layouts.
//!
//! Snapshots must not pay a JSON round trip per epoch (the seed serialized
//! every partition through `serde_json`, stalling workers proportionally to
//! total state size). This module provides the compact wire format the
//! `state-backend` crate uses for full and delta snapshots:
//!
//! * integers are fixed-width little-endian;
//! * strings and sequences are `u32`-length-prefixed;
//! * [`Value`], [`Key`], and [`entity_lang::Type`] are tag-byte discriminated.
//!
//! Decoding is bounds-checked and returns [`CodecError`] on malformed input —
//! snapshots cross a (simulated) process boundary, so corruption must surface
//! as an error, not a panic.

use crate::layout::FieldLayout;
use crate::value::{EntityAddr, Key, Value};
use entity_lang::Type;
use std::fmt;

/// Error produced when decoding malformed binary input.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError(String);

impl CodecError {
    /// Create an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decode operations.
pub type CodecResult<T> = Result<T, CodecError>;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (little-endian).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` (little-endian bit pattern).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> CodecResult<&'a [u8]> {
    if input.len() < n {
        return Err(CodecError::new(format!(
            "unexpected end of input: wanted {n} bytes, have {}",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Read a `u32`.
pub fn get_u32(input: &mut &[u8]) -> CodecResult<u32> {
    Ok(u32::from_le_bytes(take(input, 4)?.try_into().unwrap()))
}

/// Read a `u64`.
pub fn get_u64(input: &mut &[u8]) -> CodecResult<u64> {
    Ok(u64::from_le_bytes(take(input, 8)?.try_into().unwrap()))
}

/// Read an `i64`.
pub fn get_i64(input: &mut &[u8]) -> CodecResult<i64> {
    Ok(i64::from_le_bytes(take(input, 8)?.try_into().unwrap()))
}

/// Read an `f64`.
pub fn get_f64(input: &mut &[u8]) -> CodecResult<f64> {
    Ok(f64::from_bits(get_u64(input)?))
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(input: &mut &[u8]) -> CodecResult<String> {
    let len = get_u32(input)? as usize;
    let bytes = take(input, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|e| CodecError::new(e.to_string()))
}

/// Read a length-prefixed UTF-8 string as a shared `Arc<str>` (one copy,
/// straight from the wire into the shared allocation).
pub fn get_arc_str(input: &mut &[u8]) -> CodecResult<std::sync::Arc<str>> {
    let len = get_u32(input)? as usize;
    let bytes = take(input, len)?;
    std::str::from_utf8(bytes)
        .map(std::sync::Arc::from)
        .map_err(|e| CodecError::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Exact encoded sizes
// ---------------------------------------------------------------------------
//
// Snapshot encoders pre-compute the byte length of everything they are about
// to write so the output buffer is allocated **once, exactly sized**. A
// doubling `Vec` that crosses the allocator's mmap threshold mid-growth costs
// a fresh page-faulted mapping per snapshot (the "50 KB codec anomaly" —
// decode looked guilty, but the spiky cost was the encoder's transient
// buffers); with exact sizing the whole encode performs one allocation and
// one pass. Each `*_len` function mirrors its `put_*` twin; a codec test
// pins `len == bytes written` for every shape.

/// Encoded size of a length-prefixed string.
pub fn str_len(s: &str) -> usize {
    4 + s.len()
}

/// Encoded size of a [`Key`] (mirrors [`put_key`]).
pub fn key_len(key: &Key) -> usize {
    match key {
        Key::Int(_) => 1 + 8,
        Key::Str(s) => 1 + str_len(s),
    }
}

/// Encoded size of a [`Value`] (mirrors [`put_value`]).
pub fn value_len(value: &Value) -> usize {
    match value {
        Value::Int(_) | Value::Float(_) => 1 + 8,
        Value::Bool(_) | Value::None => 1,
        Value::Str(s) => 1 + str_len(s),
        Value::List(items) => 1 + 4 + items.iter().map(value_len).sum::<usize>(),
        Value::EntityRef(addr) => 1 + str_len(addr.entity_name()) + key_len(addr.key()),
    }
}

/// Encoded size of a [`Type`] (mirrors [`put_type`]).
pub fn type_len(ty: &Type) -> usize {
    match ty {
        Type::List(inner) => 1 + type_len(inner),
        Type::Entity(name) => 1 + str_len(name),
        _ => 1,
    }
}

/// Encoded size of a [`FieldLayout`] (mirrors [`put_layout`]).
pub fn layout_len(layout: &FieldLayout) -> usize {
    4 + layout
        .iter()
        .map(|(name, ty)| str_len(name) + type_len(ty))
        .sum::<usize>()
}

// ---------------------------------------------------------------------------
// Keys and values
// ---------------------------------------------------------------------------

/// Append a partition key.
pub fn put_key(out: &mut Vec<u8>, key: &Key) {
    match key {
        Key::Int(v) => {
            out.push(0);
            put_i64(out, *v);
        }
        Key::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Read a partition key.
pub fn get_key(input: &mut &[u8]) -> CodecResult<Key> {
    match take(input, 1)?[0] {
        0 => Ok(Key::Int(get_i64(input)?)),
        1 => Ok(Key::Str(get_arc_str(input)?)),
        tag => Err(CodecError::new(format!("invalid key tag {tag}"))),
    }
}

const VALUE_INT: u8 = 0;
const VALUE_FLOAT: u8 = 1;
const VALUE_BOOL_FALSE: u8 = 2;
const VALUE_BOOL_TRUE: u8 = 3;
const VALUE_STR: u8 = 4;
const VALUE_LIST: u8 = 5;
const VALUE_NONE: u8 = 6;
const VALUE_ENTITY_REF: u8 = 7;

/// Append a runtime value.
pub fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(v) => {
            out.push(VALUE_INT);
            put_i64(out, *v);
        }
        Value::Float(v) => {
            out.push(VALUE_FLOAT);
            put_f64(out, *v);
        }
        Value::Bool(false) => out.push(VALUE_BOOL_FALSE),
        Value::Bool(true) => out.push(VALUE_BOOL_TRUE),
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_str(out, s);
        }
        Value::List(items) => {
            out.push(VALUE_LIST);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::None => out.push(VALUE_NONE),
        Value::EntityRef(addr) => {
            // Entity references serialize the class *name*: numeric class ids
            // are process-local, and snapshots cross a process boundary.
            out.push(VALUE_ENTITY_REF);
            put_str(out, addr.entity_name());
            put_key(out, addr.key());
        }
    }
}

/// Read a runtime value.
pub fn get_value(input: &mut &[u8]) -> CodecResult<Value> {
    match take(input, 1)?[0] {
        VALUE_INT => Ok(Value::Int(get_i64(input)?)),
        VALUE_FLOAT => Ok(Value::Float(get_f64(input)?)),
        VALUE_BOOL_FALSE => Ok(Value::Bool(false)),
        VALUE_BOOL_TRUE => Ok(Value::Bool(true)),
        VALUE_STR => Ok(Value::Str(get_arc_str(input)?)),
        VALUE_LIST => {
            let len = get_u32(input)? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                items.push(get_value(input)?);
            }
            Ok(Value::List(items))
        }
        VALUE_NONE => Ok(Value::None),
        VALUE_ENTITY_REF => {
            let entity = get_str(input)?;
            let key = get_key(input)?;
            Ok(Value::EntityRef(EntityAddr::new(entity, key)))
        }
        tag => Err(CodecError::new(format!("invalid value tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// Types and layouts (snapshot layout dictionary)
// ---------------------------------------------------------------------------

/// Append a static type.
pub fn put_type(out: &mut Vec<u8>, ty: &Type) {
    match ty {
        Type::Int => out.push(0),
        Type::Float => out.push(1),
        Type::Bool => out.push(2),
        Type::Str => out.push(3),
        Type::List(inner) => {
            out.push(4);
            put_type(out, inner);
        }
        Type::Entity(name) => {
            out.push(5);
            put_str(out, name);
        }
        Type::None => out.push(6),
    }
}

/// Read a static type.
pub fn get_type(input: &mut &[u8]) -> CodecResult<Type> {
    match take(input, 1)?[0] {
        0 => Ok(Type::Int),
        1 => Ok(Type::Float),
        2 => Ok(Type::Bool),
        3 => Ok(Type::Str),
        4 => Ok(Type::List(Box::new(get_type(input)?))),
        5 => Ok(Type::Entity(get_str(input)?)),
        6 => Ok(Type::None),
        tag => Err(CodecError::new(format!("invalid type tag {tag}"))),
    }
}

/// Append a field layout (field names + types, in slot order).
pub fn put_layout(out: &mut Vec<u8>, layout: &FieldLayout) {
    put_u32(out, layout.len() as u32);
    for (name, ty) in layout.iter() {
        put_str(out, name);
        put_type(out, ty);
    }
}

/// Read a field layout.
pub fn get_layout(input: &mut &[u8]) -> CodecResult<FieldLayout> {
    let len = get_u32(input)? as usize;
    let mut fields = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let name = get_str(input)?;
        let ty = get_type(input)?;
        fields.push((name, ty));
    }
    Ok(FieldLayout::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) -> Value {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut input = buf.as_slice();
        let back = get_value(&mut input).unwrap();
        assert!(input.is_empty(), "trailing bytes after {v:?}");
        back
    }

    #[test]
    fn values_roundtrip() {
        for v in [
            Value::Int(-42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Bool(false),
            Value::Str("hello \u{1F980}".into()),
            Value::None,
            Value::List(vec![Value::Int(1), Value::Str("x".into()), Value::None]),
            Value::entity_ref("Item", Key::Str("apple".into())),
            Value::entity_ref("Account", Key::Int(7)),
        ] {
            assert_eq!(roundtrip_value(&v), v);
        }
    }

    #[test]
    fn layouts_roundtrip() {
        let layout = FieldLayout::new(vec![
            ("id".into(), Type::Str),
            ("balance".into(), Type::Int),
            ("tags".into(), Type::List(Box::new(Type::Str))),
            ("peer".into(), Type::Entity("Account".into())),
        ]);
        let mut buf = Vec::new();
        put_layout(&mut buf, &layout);
        let mut input = buf.as_slice();
        assert_eq!(get_layout(&mut input).unwrap(), layout);
        assert!(input.is_empty());
    }

    #[test]
    fn exact_sizes_match_bytes_written() {
        let values = [
            Value::Int(-42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::None,
            Value::Str("hello \u{1F980}".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into()), Value::None]),
            Value::entity_ref("Item", Key::Str("apple".into())),
            Value::entity_ref("Account", Key::Int(7)),
        ];
        for v in &values {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            assert_eq!(value_len(v), buf.len(), "size mismatch for {v:?}");
        }
        for k in [Key::Int(-1), Key::Str("a key".into())] {
            let mut buf = Vec::new();
            put_key(&mut buf, &k);
            assert_eq!(key_len(&k), buf.len(), "size mismatch for {k:?}");
        }
        let layout = FieldLayout::new(vec![
            ("id".into(), Type::Str),
            ("tags".into(), Type::List(Box::new(Type::Str))),
            ("peer".into(), Type::Entity("Account".into())),
            ("flag".into(), Type::Bool),
        ]);
        let mut buf = Vec::new();
        put_layout(&mut buf, &layout);
        assert_eq!(layout_len(&layout), buf.len());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Str("hello".into()));
        for cut in 0..buf.len() {
            assert!(get_value(&mut &buf[..cut]).is_err());
        }
        assert!(get_key(&mut [9u8].as_slice()).is_err());
    }
}
