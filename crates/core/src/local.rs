//! Local runtime (Section 3, "Local").
//!
//! A StateFlow dataflow graph can execute all its components in a single
//! process, with state kept in a local hash map instead of a state-management
//! backend. This lets developers debug, unit-test, and validate an entity
//! program exactly as they would an ordinary application, and then deploy the
//! same IR unchanged to one of the distributed runtimes.
//!
//! The local runtime drives the *same* event protocol as the distributed
//! engines (Invoke / Resume / Response events, continuation stacks), just with
//! a synchronous in-process event loop. A second execution mode,
//! [`LocalRuntime::call_direct`], interprets the original (unsplit) method
//! bodies recursively; it serves as the semantic oracle for property tests
//! that check splitting preserves program behaviour.

use crate::error::{RuntimeError, RuntimeResult};
use crate::event::{CallId, CallStack, Event, EventKind, MethodCall, StepOutcome};
use crate::ids::{ClassId, MethodId};
use crate::interp;
use crate::ir::{DataflowIR, MethodKind};
use crate::value::{EntityAddr, EntityState, Key, Value};
use crate::verify::VerifyError;
use entity_lang::ast::{Expr, Stmt, Target};
use std::collections::{BTreeMap, VecDeque};

/// In-process execution of a compiled entity program.
///
/// State is keyed by the id-based [`EntityAddr`] — probing it compares a
/// `u32` class id before it ever looks at the key, and the event loop routes
/// `Invoke`/`Resume` events exclusively by `ClassId`/[`MethodId`]. Method and
/// entity *names* are accepted only at the public entry points
/// ([`LocalRuntime::call`], [`LocalRuntime::create`], …), which resolve them
/// once through the IR's tables.
#[derive(Debug, Clone)]
pub struct LocalRuntime {
    ir: DataflowIR,
    states: BTreeMap<EntityAddr, EntityState>,
    next_call_id: u64,
    original_bodies: BTreeMap<(ClassId, MethodId), Vec<Stmt>>,
    /// Total number of events processed (Invoke + Resume), for inspection.
    pub events_processed: u64,
}

impl LocalRuntime {
    /// Create a runtime for a compiled program.
    ///
    /// The IR is the trust boundary: if it has not already passed the
    /// whole-program verifier (`compile()` and deserialization both leave it
    /// verified), verification runs here, and a corrupt IR is rejected with
    /// a typed [`VerifyError`] instead of ever reaching the interpreter.
    pub fn new(mut ir: DataflowIR) -> Result<Self, VerifyError> {
        ir.ensure_verified()?;
        Ok(LocalRuntime {
            ir,
            states: BTreeMap::new(),
            next_call_id: 0,
            original_bodies: BTreeMap::new(),
            events_processed: 0,
        })
    }

    /// The IR this runtime executes.
    pub fn ir(&self) -> &DataflowIR {
        &self.ir
    }

    /// Create a new entity instance by running its `__init__`; returns a
    /// reference value that can be passed as a method argument.
    pub fn create(&mut self, entity: &str, args: &[Value]) -> RuntimeResult<Value> {
        let (key, state) = interp::instantiate(&self.ir, entity, args)?;
        let class = self
            .ir
            .class_id(entity)
            .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?;
        let addr = EntityAddr::from_ids(class, key);
        if self.states.contains_key(&addr) {
            return Err(RuntimeError::new(format!("entity {addr} already exists")));
        }
        let reference = Value::EntityRef(addr.clone());
        self.states.insert(addr, state);
        Ok(reference)
    }

    /// Number of live entity instances.
    pub fn instance_count(&self) -> usize {
        self.states.len()
    }

    /// Read a field of an entity instance (test/debug helper — goes around
    /// the programming model on purpose).
    pub fn read_field(&self, entity: &str, key: Key, field: &str) -> Option<Value> {
        let class = ClassId::lookup(entity)?;
        self.states
            .get(&EntityAddr::from_ids(class, key))
            .and_then(|s| s.get(field).cloned())
    }

    /// All instances of an entity, with their states (snapshot inspection).
    pub fn instances_of(&self, entity: &str) -> Vec<(Key, EntityState)> {
        let Some(class) = ClassId::lookup(entity) else {
            return Vec::new();
        };
        self.states
            .iter()
            .filter(|(addr, _)| addr.class == class)
            .map(|(addr, state)| (addr.key().clone(), state.clone()))
            .collect()
    }

    /// Invoke a method on an entity instance and run the dataflow event loop
    /// to completion, returning the root call's response value. The
    /// name-based signature is the ingress shim: names are resolved to ids
    /// here, once, and never re-appear inside the loop.
    pub fn call(
        &mut self,
        entity: &str,
        key: Key,
        method: &str,
        args: Vec<Value>,
    ) -> RuntimeResult<Value> {
        let call = self.ir.resolve_call(entity, key, method, args)?;
        self.call_resolved(call)
    }

    /// Invoke an already-resolved [`MethodCall`] and run the event loop to
    /// completion (the id-based entry point the string API shims onto).
    pub fn call_resolved(&mut self, call: MethodCall) -> RuntimeResult<Value> {
        let call_id = CallId(self.next_call_id);
        self.next_call_id += 1;
        let root = Event::new(
            call_id,
            EventKind::Invoke {
                call,
                stack: CallStack::root(),
            },
        );
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(event) = queue.pop_front() {
            match self.handle_event(event)? {
                Some(Event {
                    kind: EventKind::Response { value },
                    ..
                }) => return Ok(value),
                Some(next) => queue.push_back(next),
                None => {}
            }
        }
        Err(RuntimeError::new(
            "event loop drained without producing a response",
        ))
    }

    /// Process a single event, producing the follow-up event (if any).
    /// This is the operator logic shared conceptually with the distributed
    /// runtimes: execute as far as possible, then either respond or emit the
    /// next Invoke/Resume event.
    pub fn handle_event(&mut self, event: Event) -> RuntimeResult<Option<Event>> {
        let call_id = event.call_id;
        match event.kind {
            EventKind::Create { addr, state } => {
                self.states.insert(addr, state);
                Ok(None)
            }
            EventKind::Invoke { call, stack } => {
                self.events_processed += 1;
                let addr = call.target.clone();
                let mut state = self.take_state(&addr)?;
                let outcome = interp::start(&self.ir, &addr, &mut state, call.method, &call.args);
                self.states.insert(addr, state);
                self.after_step(call_id, outcome?, stack).map(Some)
            }
            EventKind::Resume { value, mut stack } => {
                self.events_processed += 1;
                let frame = stack.pop().ok_or_else(|| {
                    RuntimeError::new("resume event with an empty continuation stack")
                })?;
                let addr = frame.addr.clone();
                let mut state = self.take_state(&addr)?;
                let outcome = interp::resume(&self.ir, &addr, &mut state, frame, value);
                self.states.insert(addr, state);
                self.after_step(call_id, outcome?, stack).map(Some)
            }
            EventKind::Response { value } => {
                Ok(Some(Event::new(call_id, EventKind::Response { value })))
            }
        }
    }

    fn after_step(
        &mut self,
        call_id: CallId,
        outcome: StepOutcome,
        mut stack: CallStack,
    ) -> RuntimeResult<Event> {
        match outcome {
            StepOutcome::Return(value) => {
                if stack.is_root() {
                    Ok(Event::new(call_id, EventKind::Response { value }))
                } else {
                    // The caller's frame is on top of the stack: loop the value
                    // back into the dataflow as a Resume event.
                    Ok(Event::new(call_id, EventKind::Resume { value, stack }))
                }
            }
            StepOutcome::Call { call, frame } => {
                stack.push(frame);
                Ok(Event::new(call_id, EventKind::Invoke { call, stack }))
            }
        }
    }

    fn take_state(&mut self, addr: &EntityAddr) -> RuntimeResult<EntityState> {
        self.states
            .remove(addr)
            .ok_or_else(|| RuntimeError::new(format!("entity {addr} does not exist")))
    }

    // ------------------------------------------------------------------
    // Direct (oracle) execution of the original, unsplit method bodies.
    // ------------------------------------------------------------------

    /// Execute a method by interpreting the *original* AST, performing remote
    /// calls by direct recursion into the other entity's state. Used as the
    /// semantic oracle when testing that function splitting preserves
    /// behaviour; not used by the dataflow runtimes.
    pub fn call_direct(
        &mut self,
        entity: &str,
        key: Key,
        method: &str,
        args: Vec<Value>,
    ) -> RuntimeResult<Value> {
        let addr = EntityAddr::new(entity, key);
        self.direct_invoke(&addr, method, &args, 0)
    }

    fn direct_invoke(
        &mut self,
        addr: &EntityAddr,
        method: &str,
        args: &[Value],
        depth: usize,
    ) -> RuntimeResult<Value> {
        if depth > 64 {
            return Err(RuntimeError::new("direct execution exceeded call depth 64"));
        }
        let op = self
            .ir
            .operator_by_id(addr.class)
            .ok_or_else(|| RuntimeError::new(format!("unknown entity `{}`", addr.entity_name())))?
            .clone();
        let compiled = op.method(method).ok_or_else(|| {
            RuntimeError::new(format!("`{}` has no method `{method}`", op.entity))
        })?;
        let body: Vec<Stmt> = match &compiled.kind {
            MethodKind::Simple { body } => body.clone(),
            MethodKind::Split(_) => {
                // For the oracle we re-interpret the original body, which the
                // analysis kept; find it through the IR's call graph owner.
                // The split method retains no AST, so store the body in the
                // Simple variant only — composite bodies are reconstructed
                // from the analysis snapshot embedded in the IR.
                return self.direct_invoke_composite(addr, method, args, depth, &op.entity);
            }
        };
        if compiled.params.len() != args.len() {
            return Err(RuntimeError::new(format!(
                "method `{method}` expects {} argument(s), got {}",
                compiled.params.len(),
                args.len()
            )));
        }
        let mut locals: BTreeMap<String, Value> = compiled
            .params
            .iter()
            .zip(args.iter())
            .map(|((n, _), v)| (n.clone(), v.clone()))
            .collect();
        let mut state = self.take_state(addr)?;
        let result = self.direct_stmts(addr, &op.entity, &mut state, &mut locals, &body, depth);
        self.states.insert(addr.clone(), state);
        result.map(|flow| match flow {
            DirectFlow::Return(v) => v,
            _ => Value::None,
        })
    }

    fn direct_invoke_composite(
        &mut self,
        addr: &EntityAddr,
        method: &str,
        args: &[Value],
        depth: usize,
        entity: &str,
    ) -> RuntimeResult<Value> {
        // Composite methods keep their original body in the analysis that the
        // compiler embeds next to the IR; LocalRuntime is constructed from the
        // IR alone, so we retain composite bodies in `original_bodies`,
        // keyed by `(ClassId, MethodId)` like everything else.
        let op = self
            .ir
            .operator(entity)
            .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?
            .clone();
        let method_id = op
            .method_id(method)
            .ok_or_else(|| RuntimeError::new(format!("`{entity}` has no method `{method}`")))?;
        let body = self
            .original_bodies
            .get(&(op.class, method_id))
            .cloned()
            .ok_or_else(|| {
                RuntimeError::new(format!(
                    "original body of composite method `{entity}.{method}` unavailable; \
                     construct the runtime with LocalRuntime::with_original_bodies"
                ))
            })?;
        let compiled = op.method(method).expect("checked above");
        let mut locals: BTreeMap<String, Value> = compiled
            .params
            .iter()
            .zip(args.iter())
            .map(|((n, _), v)| (n.clone(), v.clone()))
            .collect();
        let mut state = self.take_state(addr)?;
        let result = self.direct_stmts(addr, entity, &mut state, &mut locals, &body, depth);
        self.states.insert(addr.clone(), state);
        result.map(|flow| match flow {
            DirectFlow::Return(v) => v,
            _ => Value::None,
        })
    }

    fn direct_stmts(
        &mut self,
        addr: &EntityAddr,
        entity: &str,
        state: &mut EntityState,
        locals: &mut BTreeMap<String, Value>,
        stmts: &[Stmt],
        depth: usize,
    ) -> RuntimeResult<DirectFlow> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value, .. } => {
                    let v = self.direct_expr(addr, entity, state, locals, value, depth)?;
                    assign_direct(state, locals, target, v);
                }
                Stmt::AugAssign {
                    target, op, value, ..
                } => {
                    let rhs = self.direct_expr(addr, entity, state, locals, value, depth)?;
                    let cur = read_direct(state, locals, target)?;
                    assign_direct(state, locals, target, Value::binary(*op, &cur, &rhs)?);
                }
                Stmt::ExprStmt { expr, .. } => {
                    self.direct_expr(addr, entity, state, locals, expr, depth)?;
                }
                Stmt::Return { value, .. } => {
                    let v = match value {
                        Some(e) => self.direct_expr(addr, entity, state, locals, e, depth)?,
                        None => Value::None,
                    };
                    return Ok(DirectFlow::Return(v));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let c = self
                        .direct_expr(addr, entity, state, locals, cond, depth)?
                        .as_bool()?;
                    let body = if c { then_body } else { else_body };
                    match self.direct_stmts(addr, entity, state, locals, body, depth)? {
                        DirectFlow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Stmt::While { cond, body, .. } => {
                    let mut iterations = 0usize;
                    loop {
                        iterations += 1;
                        if iterations > 1_000_000 {
                            return Err(RuntimeError::new("while loop exceeded budget"));
                        }
                        let c = self
                            .direct_expr(addr, entity, state, locals, cond, depth)?
                            .as_bool()?;
                        if !c {
                            break;
                        }
                        match self.direct_stmts(addr, entity, state, locals, body, depth)? {
                            DirectFlow::Normal | DirectFlow::Continue => {}
                            DirectFlow::Break => break,
                            DirectFlow::Return(v) => return Ok(DirectFlow::Return(v)),
                        }
                    }
                }
                Stmt::For {
                    var, iter, body, ..
                } => {
                    let items = self
                        .direct_expr(addr, entity, state, locals, iter, depth)?
                        .as_list()?
                        .to_vec();
                    for item in items {
                        locals.insert(var.clone(), item);
                        match self.direct_stmts(addr, entity, state, locals, body, depth)? {
                            DirectFlow::Normal | DirectFlow::Continue => {}
                            DirectFlow::Break => break,
                            DirectFlow::Return(v) => return Ok(DirectFlow::Return(v)),
                        }
                    }
                }
                Stmt::Pass { .. } => {}
                Stmt::Break { .. } => return Ok(DirectFlow::Break),
                Stmt::Continue { .. } => return Ok(DirectFlow::Continue),
            }
        }
        Ok(DirectFlow::Normal)
    }

    fn direct_expr(
        &mut self,
        addr: &EntityAddr,
        entity: &str,
        state: &mut EntityState,
        locals: &mut BTreeMap<String, Value>,
        expr: &Expr,
        depth: usize,
    ) -> RuntimeResult<Value> {
        match expr {
            Expr::Call {
                recv: Some(var),
                method,
                args,
                ..
            } => {
                // Remote call: evaluate args, then recurse into the target
                // entity's state directly.
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.direct_expr(addr, entity, state, locals, arg, depth)?);
                }
                let target = locals
                    .get(var)
                    .ok_or_else(|| RuntimeError::new(format!("undefined variable `{var}`")))?
                    .clone();
                let target_addr = target.as_entity_ref()?.clone();
                if target_addr == *addr {
                    return Err(RuntimeError::new(
                        "direct (oracle) execution does not support calls back into the \
                         same entity instance",
                    ));
                }
                self.direct_invoke(&target_addr, method, &arg_values, depth + 1)
            }
            Expr::Call {
                recv: None,
                method,
                args,
                ..
            } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.direct_expr(addr, entity, state, locals, arg, depth)?);
                }
                // Local call on self: interpret the callee's *original AST*
                // against the same state — the oracle must never execute the
                // slot-resolved form it is the reference for.
                let op = self
                    .ir
                    .operator(entity)
                    .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?;
                interp::exec_simple_oracle(&self.ir, op, state, method, &arg_values)
            }
            // Everything without calls can be delegated to the block
            // interpreter's expression evaluator by temporarily rebuilding it;
            // simplest is to reuse the same logic through a tiny shim.
            _ => {
                // Rewrite sub-expressions that contain remote calls first.
                if expr_contains_remote_call(expr) {
                    self.direct_expr_decompose(addr, entity, state, locals, expr, depth)
                } else {
                    let op = self
                        .ir
                        .operator(entity)
                        .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?;
                    interp_eval_shim(&self.ir, op, state, locals, expr)
                }
            }
        }
    }

    /// Evaluate a compound expression that contains remote calls by
    /// structurally recursing with `direct_expr` on the pieces.
    fn direct_expr_decompose(
        &mut self,
        addr: &EntityAddr,
        entity: &str,
        state: &mut EntityState,
        locals: &mut BTreeMap<String, Value>,
        expr: &Expr,
        depth: usize,
    ) -> RuntimeResult<Value> {
        match expr {
            Expr::Binary {
                op, left, right, ..
            } => {
                let l = self.direct_expr(addr, entity, state, locals, left, depth)?;
                let r = self.direct_expr(addr, entity, state, locals, right, depth)?;
                Value::binary(*op, &l, &r)
            }
            Expr::Compare {
                op, left, right, ..
            } => {
                let l = self.direct_expr(addr, entity, state, locals, left, depth)?;
                let r = self.direct_expr(addr, entity, state, locals, right, depth)?;
                Value::compare(*op, &l, &r)
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.direct_expr(addr, entity, state, locals, operand, depth)?;
                Value::unary(*op, &v)
            }
            Expr::Builtin { name, args, .. } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.direct_expr(addr, entity, state, locals, a, depth)?);
                }
                // Builtins never see remote calls themselves.
                let op = self
                    .ir
                    .operator(entity)
                    .ok_or_else(|| RuntimeError::new(format!("unknown entity `{entity}`")))?;
                let span = entity_lang::Span::synthetic();
                let rebuilt = Expr::Builtin {
                    name: name.clone(),
                    args: vs
                        .iter()
                        .map(|v| value_to_literal(v, span))
                        .collect::<RuntimeResult<Vec<_>>>()?,
                    span,
                };
                interp_eval_shim(&self.ir, op, state, locals, &rebuilt)
            }
            Expr::List(items, _) => {
                let mut vs = Vec::with_capacity(items.len());
                for item in items {
                    vs.push(self.direct_expr(addr, entity, state, locals, item, depth)?);
                }
                Ok(Value::List(vs))
            }
            Expr::Index { obj, index, .. } => {
                let o = self.direct_expr(addr, entity, state, locals, obj, depth)?;
                let i = self
                    .direct_expr(addr, entity, state, locals, index, depth)?
                    .as_int()?;
                match o {
                    Value::List(items) => items
                        .get(usize::try_from(i).unwrap_or(usize::MAX))
                        .cloned()
                        .ok_or_else(|| RuntimeError::new("list index out of range")),
                    other => Err(RuntimeError::new(format!("cannot index into {other}"))),
                }
            }
            other => Err(RuntimeError::new(format!(
                "unsupported expression in oracle execution: {other:?}"
            ))),
        }
    }
}

/// Original bodies of composite methods, needed only by the oracle execution
/// mode; stored separately so the IR itself stays engine-portable.
impl LocalRuntime {
    /// Attach the original (unsplit) bodies of composite methods so
    /// [`LocalRuntime::call_direct`] can interpret them.
    pub fn with_original_bodies(
        mut self,
        bodies: BTreeMap<(ClassId, MethodId), Vec<Stmt>>,
    ) -> Self {
        self.original_bodies = bodies;
        self
    }
}

#[derive(Debug, Clone)]
enum DirectFlow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

fn assign_direct(
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    target: &Target,
    value: Value,
) {
    match target {
        Target::Name(n) => {
            locals.insert(n.clone(), value);
        }
        Target::SelfField(f) => {
            state.insert(f.clone(), value);
        }
    }
}

fn read_direct(
    state: &EntityState,
    locals: &BTreeMap<String, Value>,
    target: &Target,
) -> RuntimeResult<Value> {
    match target {
        Target::Name(n) => locals
            .get(n)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined variable `{n}`"))),
        Target::SelfField(f) => state
            .get(f)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined field `{f}`"))),
    }
}

fn expr_contains_remote_call(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Call { recv: Some(_), .. }) {
            found = true;
        }
    });
    found
}

fn value_to_literal(v: &Value, span: entity_lang::Span) -> RuntimeResult<Expr> {
    Ok(match v {
        Value::Int(i) => Expr::Int(*i, span),
        Value::Float(f) => Expr::Float(*f, span),
        Value::Bool(b) => Expr::Bool(*b, span),
        Value::Str(s) => Expr::Str(s.to_string(), span),
        Value::None => Expr::NoneLit(span),
        Value::List(items) => Expr::List(
            items
                .iter()
                .map(|i| value_to_literal(i, span))
                .collect::<RuntimeResult<Vec<_>>>()?,
            span,
        ),
        Value::EntityRef(_) => {
            return Err(RuntimeError::new(
                "entity references cannot be rebuilt as literals",
            ));
        }
    })
}

/// Evaluate a remote-call-free expression through the block interpreter's
/// evaluator by packaging it as a one-statement simple body.
fn interp_eval_shim(
    ir: &DataflowIR,
    op: &crate::ir::OperatorSpec,
    state: &mut EntityState,
    locals: &mut BTreeMap<String, Value>,
    expr: &Expr,
) -> RuntimeResult<Value> {
    // The interpreter exposes statement-level entry points; reuse the flat
    // statement executor with a synthetic assignment to a reserved local.
    let tmp = "__oracle_eval".to_string();
    let stmt = crate::split::FlatStmt::Assign {
        target: Target::Name(tmp.clone()),
        expr: expr.clone(),
    };
    crate::interp::eval_flat_for_oracle(ir, op, state, locals, &stmt)?;
    locals
        .remove(&tmp)
        .ok_or_else(|| RuntimeError::new("oracle evaluation produced no value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use entity_lang::corpus;

    fn runtime_for(src: &str) -> LocalRuntime {
        compile(src).unwrap().local_runtime()
    }

    #[test]
    fn create_and_call_simple_methods() {
        let mut rt = runtime_for(corpus::FIGURE1_SOURCE);
        rt.create("Item", &["apple".into(), Value::Int(10)])
            .unwrap();
        rt.create("User", &["alice".into()]).unwrap();
        assert_eq!(rt.instance_count(), 2);
        let v = rt
            .call(
                "User",
                Key::Str("alice".into()),
                "deposit",
                vec![Value::Int(100)],
            )
            .unwrap();
        assert_eq!(v, Value::Int(100));
        assert_eq!(
            rt.read_field("User", Key::Str("alice".into()), "balance"),
            Some(Value::Int(100))
        );
    }

    #[test]
    fn buy_item_end_to_end_through_the_dataflow() {
        let mut rt = runtime_for(corpus::FIGURE1_SOURCE);
        let item_ref = rt
            .create("Item", &["apple".into(), Value::Int(10)])
            .unwrap();
        rt.create("User", &["alice".into()]).unwrap();
        rt.call(
            "Item",
            Key::Str("apple".into()),
            "restock",
            vec![Value::Int(5)],
        )
        .unwrap();
        rt.call(
            "User",
            Key::Str("alice".into()),
            "deposit",
            vec![Value::Int(100)],
        )
        .unwrap();

        let ok = rt
            .call(
                "User",
                Key::Str("alice".into()),
                "buy_item",
                vec![Value::Int(3), item_ref.clone()],
            )
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
        assert_eq!(
            rt.read_field("User", Key::Str("alice".into()), "balance"),
            Some(Value::Int(70))
        );
        assert_eq!(
            rt.read_field("Item", Key::Str("apple".into()), "stock"),
            Some(Value::Int(2))
        );

        // Buying more than the stock fails and leaves state unchanged.
        let fail = rt
            .call(
                "User",
                Key::Str("alice".into()),
                "buy_item",
                vec![Value::Int(10), item_ref],
            )
            .unwrap();
        assert_eq!(fail, Value::Bool(false));
        assert_eq!(
            rt.read_field("Item", Key::Str("apple".into()), "stock"),
            Some(Value::Int(2))
        );
        assert_eq!(
            rt.read_field("User", Key::Str("alice".into()), "balance"),
            Some(Value::Int(70))
        );
    }

    #[test]
    fn account_transfer_moves_money() {
        let mut rt = runtime_for(corpus::ACCOUNT_SOURCE);
        rt.create("Account", &["a".into(), Value::Int(100), "x".into()])
            .unwrap();
        let b_ref = rt
            .create("Account", &["b".into(), Value::Int(10), "y".into()])
            .unwrap();
        let ok = rt
            .call(
                "Account",
                Key::Str("a".into()),
                "transfer",
                vec![Value::Int(40), b_ref.clone()],
            )
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
        assert_eq!(
            rt.read_field("Account", Key::Str("a".into()), "balance"),
            Some(Value::Int(60))
        );
        assert_eq!(
            rt.read_field("Account", Key::Str("b".into()), "balance"),
            Some(Value::Int(50))
        );
        // Insufficient funds: refused, nothing moves.
        let fail = rt
            .call(
                "Account",
                Key::Str("a".into()),
                "transfer",
                vec![Value::Int(1000), b_ref],
            )
            .unwrap();
        assert_eq!(fail, Value::Bool(false));
        assert_eq!(
            rt.read_field("Account", Key::Str("b".into()), "balance"),
            Some(Value::Int(50))
        );
    }

    #[test]
    fn split_execution_matches_direct_oracle() {
        let compiled = compile(corpus::FIGURE1_SOURCE).unwrap();
        let mut split_rt = compiled.local_runtime();
        let mut direct_rt = compiled.local_runtime();

        for rt in [&mut split_rt, &mut direct_rt] {
            rt.create("Item", &["apple".into(), Value::Int(7)]).unwrap();
            rt.create("User", &["alice".into()]).unwrap();
            rt.call(
                "Item",
                Key::Str("apple".into()),
                "restock",
                vec![Value::Int(10)],
            )
            .unwrap();
            rt.call(
                "User",
                Key::Str("alice".into()),
                "deposit",
                vec![Value::Int(200)],
            )
            .unwrap();
        }
        let item_ref = Value::entity_ref("Item", Key::Str("apple".into()));
        let via_dataflow = split_rt
            .call(
                "User",
                Key::Str("alice".into()),
                "buy_item",
                vec![Value::Int(4), item_ref.clone()],
            )
            .unwrap();
        let via_oracle = direct_rt
            .call_direct(
                "User",
                Key::Str("alice".into()),
                "buy_item",
                vec![Value::Int(4), item_ref],
            )
            .unwrap();
        assert_eq!(via_dataflow, via_oracle);
        assert_eq!(
            split_rt.read_field("User", Key::Str("alice".into()), "balance"),
            direct_rt.read_field("User", Key::Str("alice".into()), "balance"),
        );
        assert_eq!(
            split_rt.read_field("Item", Key::Str("apple".into()), "stock"),
            direct_rt.read_field("Item", Key::Str("apple".into()), "stock"),
        );
    }

    #[test]
    fn tpcc_payment_updates_three_entities() {
        let mut rt = runtime_for(corpus::TPCC_LITE_SOURCE);
        let w_ref = rt
            .create("Warehouse", &["w1".into(), Value::Int(5)])
            .unwrap();
        let d_ref = rt
            .create("District", &["d1".into(), Value::Int(3)])
            .unwrap();
        rt.create("Customer", &["c1".into(), Value::Int(0)])
            .unwrap();
        let balance = rt
            .call(
                "Customer",
                Key::Str("c1".into()),
                "payment",
                vec![Value::Int(250), d_ref, w_ref],
            )
            .unwrap();
        assert_eq!(balance, Value::Int(250));
        assert_eq!(
            rt.read_field("Warehouse", Key::Str("w1".into()), "ytd"),
            Some(Value::Int(250))
        );
        assert_eq!(
            rt.read_field("District", Key::Str("d1".into()), "ytd"),
            Some(Value::Int(250))
        );
    }

    #[test]
    fn cart_checkout_loops_over_remote_calls() {
        let mut rt = runtime_for(corpus::CART_SOURCE);
        let p_ref = rt
            .create("Product", &["sku1".into(), Value::Int(4), Value::Int(100)])
            .unwrap();
        rt.create("Cart", &["cart1".into()]).unwrap();
        let total = rt
            .call(
                "Cart",
                Key::Str("cart1".into()),
                "checkout_total",
                vec![
                    Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
                    p_ref,
                ],
            )
            .unwrap();
        // 4 * (1 + 2 + 3) = 24, with the price fetched remotely per iteration.
        assert_eq!(total, Value::Int(24));
        assert!(rt.events_processed >= 4);
    }

    #[test]
    fn missing_entity_is_an_error() {
        let mut rt = runtime_for(corpus::FIGURE1_SOURCE);
        let err = rt
            .call(
                "User",
                Key::Str("ghost".into()),
                "deposit",
                vec![Value::Int(1)],
            )
            .unwrap_err();
        assert!(err.message.contains("does not exist"));
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let mut rt = runtime_for(corpus::FIGURE1_SOURCE);
        rt.create("User", &["alice".into()]).unwrap();
        assert!(rt.create("User", &["alice".into()]).is_err());
    }
}
