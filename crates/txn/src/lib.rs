//! # txn
//!
//! Deterministic transaction protocol for transactional dataflows.
//!
//! The paper's StateFlow runtime "treats each function — and the state effects
//! it creates via calls to other functions — as a transaction with ACID
//! guarantees" and achieves consistency by implementing *an extension of Aria*
//! (Lu et al., VLDB 2020), a deterministic OLTP protocol. This crate
//! implements that batch protocol:
//!
//! 1. Transactions are collected into a **batch** and assigned a deterministic
//!    sequence number (arrival order).
//! 2. Every transaction in the batch executes against the *batch-start* state,
//!    buffering its writes and recording read/write **reservations**.
//! 3. A transaction commits unless it conflicts with a lower-sequence
//!    transaction in the same batch: it aborts on **WAW** (it writes a key an
//!    earlier transaction also writes) or **RAW** (it read a key an earlier
//!    transaction writes — it should have observed that write).
//! 4. Aborted transactions are not failed: they are **deferred** to the next
//!    batch at the front of the queue (deterministic fallback), so every
//!    transaction eventually commits — no coordination, no deadlocks.
//!
//! The crate also provides the epoch/marker alignment bookkeeping used by the
//! consistent-snapshot protocol (Chandy–Lamport) for exactly-once recovery.
//!
//! Conflict keys are **id-based** (PR 2): a [`KeyRef`] is `(ClassId, Key)`,
//! built from an [`EntityAddr`] with [`key_ref_addr`] — a refcount bump, not
//! a string clone — so reservation tables compare a `u32` before they ever
//! look at a partition key. The name-accepting [`key_ref`] remains as a
//! test/ingress shim.
//!
//! Two commit rules exist (PR 3): plain Aria ([`execute_batch`]), which is
//! serializable in *commit* order, and the **order-preserving** rule
//! ([`execute_batch_ordered`]), which additionally defers WAR pairs so every
//! history is equivalent to serial execution in *arrival* order. The sharded
//! multi-threaded runtime cuts its cross-shard batches with the
//! order-preserving rule, which is what makes a parallel run bit-for-bit
//! comparable to the sequential `LocalRuntime` oracle.
//!
//! ## Two-kind footprints (PR 4)
//!
//! An [`RwSet`] distinguishes **read-only** keys (`reads` only) from
//! **read-modify-write** keys (use [`RwSet::read_write`], or `writes` alone
//! for a blind write). The distinction matters under both rules: two
//! transactions whose shared keys are all read-only on both sides never
//! conflict — a hot-key *read storm* commits in a single batch — while any
//! pair with at least one write on a shared key keeps the usual RAW/WAW
//! (and, under the ordered rule, WAR) semantics and is deferred into arrival
//! order. The sharded runtime derives these kinds at compile time (the
//! `writes self?` analysis in `stateful_entities::effects`) and runs an
//! allocation-free specialization of the ordered rule over
//! `(ClassId, key hash)` pairs, property-tested against
//! [`execute_batch_ordered`] as the reference.
//!
//! ## Commutative write classes (PR 7)
//!
//! A third footprint kind, [`RwSet::comm_write`], marks a key written by a
//! *commutative* read-modify-write (an unguarded, state-independent counter
//! update — detected at compile time by `stateful_entities::effects`). Two
//! commutative writers of the same key commit in one batch like a read-read
//! pair: each applies a delta fixed by its own arguments, so any execution
//! order inside the batch yields the same final state. Every *mixed* pair on
//! a shared key keeps the exclusive semantics: a commutative write behaves
//! like a write against reads (the reader must not observe an intermediate
//! count out of arrival order) and against exclusive writes (a blind or
//! guarded write does not commute with anything).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use stateful_entities::{ClassId, EntityAddr, Key};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Transaction identifier (assigned by the client/ingress).
pub type TxnId = u64;

/// Deterministic position of a transaction within a batch.
pub type SeqNo = u64;

/// A state key touched by a transaction: `(class id, partition key)`.
///
/// Since PR 2 the entity class travels as its interned [`ClassId`], so
/// comparing two conflict keys starts with a single `u32` compare and never
/// clones a class-name `String` — reservation tables stay cheap even for
/// large batches.
pub type KeyRef = (ClassId, Key);

/// Build a [`KeyRef`] from an entity *name* (test/ingress shim; runtimes
/// derive footprints from id-based [`EntityAddr`]s via [`key_ref_addr`]).
pub fn key_ref(entity: &str, key: impl Into<Key>) -> KeyRef {
    (ClassId::intern(entity), key.into())
}

/// Build a [`KeyRef`] from an already-resolved address (hot path: a
/// refcount bump, no string in sight).
pub fn key_ref_addr(addr: &EntityAddr) -> KeyRef {
    (addr.class, addr.key().clone())
}

/// The read/write footprint of one transaction, discovered during its
/// execution phase.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RwSet {
    /// Keys read.
    pub reads: BTreeSet<KeyRef>,
    /// Keys written.
    pub writes: BTreeSet<KeyRef>,
    /// Keys updated by a *commutative* read-modify-write (see
    /// [`RwSet::comm_write`]). Disjoint semantics from `writes`: two
    /// commutative updates of the same key do not conflict with each other,
    /// but either direction of a mix with a plain read or write does.
    pub comm_writes: BTreeSet<KeyRef>,
}

impl RwSet {
    /// Create an empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read.
    pub fn read(&mut self, key: KeyRef) -> &mut Self {
        self.reads.insert(key);
        self
    }

    /// Record a write. A key only in `writes` is a *blind* write (no RAW
    /// exposure of its own); most state effects are read-modify-writes —
    /// use [`RwSet::read_write`] for those.
    pub fn write(&mut self, key: KeyRef) -> &mut Self {
        self.writes.insert(key);
        self
    }

    /// Record a read-modify-write: the key lands in both `reads` and
    /// `writes`, so the transaction both observes earlier writers (RAW) and
    /// blocks later ones (WAW/WAR).
    pub fn read_write(&mut self, key: KeyRef) -> &mut Self {
        self.reads.insert(key.clone());
        self.writes.insert(key);
        self
    }

    /// Record a **commutative** read-modify-write: an unguarded,
    /// state-independent delta (`self.count += n`). The key lands only in
    /// `comm_writes` — *not* in `reads` — because among commuting peers the
    /// internal read is invisible: whatever order the deltas apply in, the
    /// final state is the sum. Against a plain read or exclusive write the
    /// key still conflicts like a write (the compile-time analysis only
    /// grants this kind to methods whose return value does not leak the
    /// pre-update count in an order-dependent way *or* whose dispatch order
    /// within a batch is pinned FIFO by the runtime — see
    /// `stateful_entities::effects`).
    pub fn comm_write(&mut self, key: KeyRef) -> &mut Self {
        self.comm_writes.insert(key);
        self
    }

    /// True if the footprint contains no writes at all — such a transaction
    /// can share a batch with any other read-only transaction, even on
    /// identical keys.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty() && self.comm_writes.is_empty()
    }

    /// Total number of keys touched.
    pub fn footprint(&self) -> usize {
        self.reads.len() + self.writes.len() + self.comm_writes.len()
    }
}

/// A transaction submitted to the deterministic scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Client-visible id.
    pub id: TxnId,
    /// Read/write footprint.
    pub rw: RwSet,
}

impl Transaction {
    /// Create a transaction with a known footprint.
    pub fn new(id: TxnId, rw: RwSet) -> Self {
        Transaction { id, rw }
    }
}

/// Reservation tables for one batch: for every key, the lowest sequence number
/// that reserved it for writing / reading.
#[derive(Debug, Clone, Default)]
pub struct Reservations {
    write_res: BTreeMap<KeyRef, SeqNo>,
    read_res: BTreeMap<KeyRef, SeqNo>,
    comm_res: BTreeMap<KeyRef, SeqNo>,
}

impl Reservations {
    /// Create empty reservation tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve all keys of `txn` under sequence number `seq`.
    pub fn reserve(&mut self, seq: SeqNo, rw: &RwSet) {
        for key in &rw.writes {
            self.write_res
                .entry(key.clone())
                .and_modify(|s| *s = (*s).min(seq))
                .or_insert(seq);
        }
        for key in &rw.reads {
            self.read_res
                .entry(key.clone())
                .and_modify(|s| *s = (*s).min(seq))
                .or_insert(seq);
        }
        for key in &rw.comm_writes {
            self.comm_res
                .entry(key.clone())
                .and_modify(|s| *s = (*s).min(seq))
                .or_insert(seq);
        }
    }

    /// Does a lower-sequence transaction hold a write reservation on `key`?
    pub fn waw_conflict(&self, seq: SeqNo, key: &KeyRef) -> bool {
        self.write_res.get(key).is_some_and(|s| *s < seq)
    }

    /// Does a lower-sequence transaction write a key that `seq` read?
    pub fn raw_conflict(&self, seq: SeqNo, key: &KeyRef) -> bool {
        self.write_res.get(key).is_some_and(|s| *s < seq)
    }

    /// Does a lower-sequence transaction hold a *read* reservation on a key
    /// that `seq` writes (WAR)? Plain Aria lets the later writer commit —
    /// the batch is then serializable, but in *commit* order rather than
    /// arrival order. The order-preserving rule
    /// ([`execute_batch_ordered`]) defers the writer instead.
    pub fn war_conflict(&self, seq: SeqNo, key: &KeyRef) -> bool {
        self.read_res.get(key).is_some_and(|s| *s < seq)
    }

    /// Does a lower-sequence transaction hold a **commutative** write
    /// reservation on `key`? Used by plain readers (the count they would
    /// observe depends on how many earlier deltas have applied) and by
    /// exclusive writers (a blind or guarded write does not commute) — but
    /// *not* by other commutative writers, which is the whole point.
    pub fn comm_conflict(&self, seq: SeqNo, key: &KeyRef) -> bool {
        self.comm_res.get(key).is_some_and(|s| *s < seq)
    }
}

/// The result of committing one batch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Transactions that committed, in deterministic sequence order.
    pub committed: Vec<TxnId>,
    /// Transactions deferred to the next batch because of conflicts.
    pub deferred: Vec<TxnId>,
    /// Number of WAW conflicts observed.
    pub waw_conflicts: usize,
    /// Number of RAW conflicts observed.
    pub raw_conflicts: usize,
    /// Number of WAR conflicts observed (only counted — and only deferring —
    /// under [`execute_batch_ordered`]).
    pub war_conflicts: usize,
    /// Number of conflicts involving a commutative write on one side and a
    /// plain read or exclusive write on the other. Commutative-commutative
    /// pairs are *not* conflicts and are not counted.
    pub comm_conflicts: usize,
}

impl BatchOutcome {
    /// Fraction of the batch that had to be deferred (0.0–1.0).
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed.len() + self.deferred.len();
        if total == 0 {
            0.0
        } else {
            self.deferred.len() as f64 / total as f64
        }
    }
}

/// Run the Aria commit rule over a batch (transactions in deterministic
/// sequence order = their position in the slice).
pub fn execute_batch(txns: &[Transaction]) -> BatchOutcome {
    execute_batch_with_rule(txns, false)
}

/// Run the **order-preserving** commit rule over a batch: in addition to
/// Aria's WAW and RAW aborts, a transaction is deferred when it *writes* a
/// key that a lower-sequence transaction *reads* (WAR).
///
/// Plain Aria commits the later writer of a WAR pair, so the batch is
/// serializable in commit order — which can differ from arrival order when a
/// conflicting pair straddles a deferral. With the WAR rule added, any two
/// transactions that share a key with at least one write between them keep
/// their relative arrival order (the later one defers; reservations are
/// registered for *all* batch members including deferred ones, so chains of
/// conflicts defer together). Deferred transactions re-enter at the front of
/// the next batch in order, so by induction the whole history is equivalent
/// to serial execution in arrival order — exactly what a single-threaded
/// oracle computes. This is the rule the sharded runtime uses so that its
/// parallel execution is bit-for-bit comparable against `LocalRuntime`.
///
/// The cost is extra deferrals under read/write contention; latency-oriented
/// deployments that only need *some* serial order can keep plain
/// [`execute_batch`].
pub fn execute_batch_ordered(txns: &[Transaction]) -> BatchOutcome {
    execute_batch_with_rule(txns, true)
}

fn execute_batch_with_rule(txns: &[Transaction], preserve_order: bool) -> BatchOutcome {
    let mut reservations = Reservations::new();
    for (seq, txn) in txns.iter().enumerate() {
        reservations.reserve(seq as SeqNo, &txn.rw);
    }
    let mut outcome = BatchOutcome::default();
    for (seq, txn) in txns.iter().enumerate() {
        let seq = seq as SeqNo;
        let waw = txn
            .rw
            .writes
            .iter()
            .any(|k| reservations.waw_conflict(seq, k));
        let raw = txn
            .rw
            .reads
            .iter()
            .any(|k| reservations.raw_conflict(seq, k));
        let war = preserve_order
            && txn
                .rw
                .writes
                .iter()
                .any(|k| reservations.war_conflict(seq, k));
        // Commutative interactions: a plain read or exclusive write vs an
        // earlier commutative reservation defers, as does a commutative
        // write landing on a key an earlier transaction exclusively wrote
        // (or, under the ordered rule, read). Commutative-vs-commutative is
        // deliberately absent — those pile into one batch.
        let comm = txn
            .rw
            .writes
            .iter()
            .chain(txn.rw.reads.iter())
            .any(|k| reservations.comm_conflict(seq, k))
            || txn
                .rw
                .comm_writes
                .iter()
                .any(|k| reservations.waw_conflict(seq, k))
            || (preserve_order
                && txn
                    .rw
                    .comm_writes
                    .iter()
                    .any(|k| reservations.war_conflict(seq, k)));
        if waw {
            outcome.waw_conflicts += 1;
        }
        if raw {
            outcome.raw_conflicts += 1;
        }
        if war {
            outcome.war_conflicts += 1;
        }
        if comm {
            outcome.comm_conflicts += 1;
        }
        if waw || raw || war || comm {
            outcome.deferred.push(txn.id);
        } else {
            outcome.committed.push(txn.id);
        }
    }
    outcome
}

/// Collects transactions into fixed-size batches, runs the Aria commit rule,
/// and re-queues deferred transactions at the *front* of the next batch so
/// they are retried with the lowest sequence numbers (deterministic fallback,
/// guaranteeing progress).
#[derive(Debug, Clone)]
pub struct DeterministicScheduler {
    batch_size: usize,
    preserve_order: bool,
    queue: VecDeque<Transaction>,
    /// Batches executed so far.
    pub batches_executed: u64,
    /// Total transactions committed so far.
    pub committed_total: u64,
    /// Total deferrals (a transaction deferred twice counts twice).
    pub deferred_total: u64,
}

impl DeterministicScheduler {
    /// Create a scheduler with the given batch size, using the plain Aria
    /// commit rule (serializable in commit order).
    pub fn new(batch_size: usize) -> Self {
        Self::with_rule(batch_size, false)
    }

    /// Create a scheduler using the order-preserving commit rule
    /// ([`execute_batch_ordered`]): every history is equivalent to serial
    /// execution in *arrival* order, at the price of extra WAR deferrals.
    pub fn new_ordered(batch_size: usize) -> Self {
        Self::with_rule(batch_size, true)
    }

    fn with_rule(batch_size: usize, preserve_order: bool) -> Self {
        assert!(batch_size > 0);
        DeterministicScheduler {
            batch_size,
            preserve_order,
            queue: VecDeque::new(),
            batches_executed: 0,
            committed_total: 0,
            deferred_total: 0,
        }
    }

    /// Number of transactions waiting to be batched.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submit a transaction.
    pub fn submit(&mut self, txn: Transaction) {
        self.queue.push_back(txn);
    }

    /// Execute the next batch (up to `batch_size` pending transactions).
    /// Deferred transactions are put back at the front, preserving their
    /// relative order, so they get priority in the following batch.
    pub fn run_batch(&mut self) -> BatchOutcome {
        let take = self.batch_size.min(self.queue.len());
        let batch: Vec<Transaction> = self.queue.drain(..take).collect();
        let outcome = execute_batch_with_rule(&batch, self.preserve_order);
        self.batches_executed += 1;
        self.committed_total += outcome.committed.len() as u64;
        self.deferred_total += outcome.deferred.len() as u64;
        // Re-queue deferred transactions at the front, preserving order.
        let deferred_set: BTreeSet<TxnId> = outcome.deferred.iter().copied().collect();
        for txn in batch.into_iter().rev() {
            if deferred_set.contains(&txn.id) {
                self.queue.push_front(txn);
            }
        }
        outcome
    }

    /// Run batches until the queue drains; returns committed ids in commit order.
    pub fn drain(&mut self) -> Vec<TxnId> {
        let mut committed = Vec::new();
        let mut idle_rounds = 0;
        while !self.queue.is_empty() {
            let outcome = self.run_batch();
            if outcome.committed.is_empty() {
                idle_rounds += 1;
                // A batch consisting of a single transaction can never
                // conflict with itself, so this cannot loop forever unless the
                // batch size is zero (prevented in the constructor).
                assert!(
                    idle_rounds < 2,
                    "deterministic fallback failed to make progress"
                );
            } else {
                idle_rounds = 0;
            }
            committed.extend(outcome.committed);
        }
        committed
    }
}

/// Epoch/marker bookkeeping for the consistent-snapshot protocol: the
/// coordinator starts epoch `n`, every worker acknowledges once it has
/// snapshotted its partition, and the epoch completes when all workers acked.
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    workers: usize,
    acks: BTreeMap<u64, BTreeSet<usize>>,
    completed: BTreeSet<u64>,
}

impl EpochTracker {
    /// Create a tracker for `workers` workers.
    pub fn new(workers: usize) -> Self {
        EpochTracker {
            workers,
            acks: BTreeMap::new(),
            completed: BTreeSet::new(),
        }
    }

    /// Record worker `worker` finishing its snapshot of `epoch`. Returns true
    /// if this ack completed the epoch.
    pub fn ack(&mut self, epoch: u64, worker: usize) -> bool {
        let acks = self.acks.entry(epoch).or_default();
        acks.insert(worker);
        if acks.len() == self.workers {
            self.completed.insert(epoch);
            true
        } else {
            false
        }
    }

    /// The newest fully acknowledged epoch.
    pub fn latest_complete(&self) -> Option<u64> {
        self.completed.iter().next_back().copied()
    }

    /// True if `epoch` has been fully acknowledged.
    pub fn is_complete(&self, epoch: u64) -> bool {
        self.completed.contains(&epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(id: TxnId, from: &str, to: &str) -> Transaction {
        let mut rw = RwSet::new();
        rw.read(key_ref("Account", from))
            .read(key_ref("Account", to))
            .write(key_ref("Account", from))
            .write(key_ref("Account", to));
        Transaction::new(id, rw)
    }

    fn read_only(id: TxnId, key: &str) -> Transaction {
        let mut rw = RwSet::new();
        rw.read(key_ref("Account", key));
        Transaction::new(id, rw)
    }

    #[test]
    fn non_conflicting_batch_commits_everything() {
        let txns = vec![
            transfer(1, "a", "b"),
            transfer(2, "c", "d"),
            read_only(3, "e"),
        ];
        let outcome = execute_batch(&txns);
        assert_eq!(outcome.committed, vec![1, 2, 3]);
        assert!(outcome.deferred.is_empty());
        assert_eq!(outcome.abort_rate(), 0.0);
    }

    #[test]
    fn waw_conflict_defers_the_later_transaction() {
        let txns = vec![transfer(1, "a", "b"), transfer(2, "b", "c")];
        let outcome = execute_batch(&txns);
        assert_eq!(outcome.committed, vec![1]);
        assert_eq!(outcome.deferred, vec![2]);
        assert!(outcome.waw_conflicts >= 1);
    }

    #[test]
    fn raw_conflict_defers_the_reader() {
        let mut rw = RwSet::new();
        rw.write(key_ref("Account", "a"));
        let writer = Transaction::new(1, rw);
        let reader = read_only(2, "a");
        let outcome = execute_batch(&[writer, reader]);
        assert_eq!(outcome.committed, vec![1]);
        assert_eq!(outcome.deferred, vec![2]);
        assert!(outcome.raw_conflicts >= 1);
    }

    #[test]
    fn earlier_reader_is_not_deferred_by_later_writer() {
        // WAR is harmless under Aria: the reader is serialized first.
        let reader = read_only(1, "a");
        let mut rw = RwSet::new();
        rw.write(key_ref("Account", "a"));
        let writer = Transaction::new(2, rw);
        let outcome = execute_batch(&[reader, writer]);
        assert_eq!(outcome.committed, vec![1, 2]);
    }

    #[test]
    fn ordered_rule_defers_war_writers() {
        // Plain Aria: an earlier reader does not block a later writer (WAR is
        // harmless for *some* serial order). The order-preserving rule defers
        // the writer so the pair commits in arrival order.
        let reader = read_only(1, "a");
        let mut rw = RwSet::new();
        rw.write(key_ref("Account", "a"));
        let writer = Transaction::new(2, rw);

        let plain = execute_batch(&[reader.clone(), writer.clone()]);
        assert_eq!(plain.committed, vec![1, 2]);
        assert_eq!(plain.war_conflicts, 0);

        let ordered = execute_batch_ordered(&[reader, writer]);
        assert_eq!(ordered.committed, vec![1]);
        assert_eq!(ordered.deferred, vec![2]);
        assert_eq!(ordered.war_conflicts, 1);
    }

    #[test]
    fn ordered_commit_order_equals_arrival_order_for_conflicting_pairs() {
        // Arrival order: t1 writes a; t2 transfers a→b (defers on a);
        // t3 updates b. Under the ordered rule t3 must also defer (it
        // conflicts with the deferred t2), so the commit order of every
        // conflicting pair matches arrival order: 1, then 2, then 3.
        let mut w_a = RwSet::new();
        w_a.write(key_ref("Account", "a"));
        let t1 = Transaction::new(1, w_a);
        let t2 = transfer(2, "a", "b");
        let mut w_b = RwSet::new();
        w_b.write(key_ref("Account", "b"));
        let t3 = Transaction::new(3, w_b);

        let mut scheduler = DeterministicScheduler::new_ordered(8);
        for t in [t1, t2, t3] {
            scheduler.submit(t);
        }
        let first = scheduler.run_batch();
        assert_eq!(first.committed, vec![1]);
        assert_eq!(first.deferred, vec![2, 3]);
        let second = scheduler.run_batch();
        assert_eq!(second.committed, vec![2]);
        let third = scheduler.run_batch();
        assert_eq!(third.committed, vec![3]);
    }

    #[test]
    fn read_read_pairs_on_one_key_commit_in_one_batch() {
        // The two-kind footprint payoff: a pile of reads of the SAME hot key
        // never conflicts under either rule — the whole storm commits in a
        // single batch.
        let txns: Vec<Transaction> = (0..20).map(|i| read_only(i, "hot")).collect();
        for outcome in [execute_batch(&txns), execute_batch_ordered(&txns)] {
            assert_eq!(outcome.committed.len(), 20);
            assert!(outcome.deferred.is_empty());
            assert_eq!(outcome.waw_conflicts + outcome.raw_conflicts, 0);
            assert_eq!(outcome.war_conflicts, 0);
        }
    }

    fn comm_inc(id: TxnId, key: &str) -> Transaction {
        let mut rw = RwSet::new();
        rw.comm_write(key_ref("Account", key));
        Transaction::new(id, rw)
    }

    #[test]
    fn commutative_writers_on_one_key_commit_in_one_batch() {
        // The PR 7 payoff: a pile of commutative increments of the SAME hot
        // key behaves like a read storm — one batch under either rule.
        let txns: Vec<Transaction> = (0..20).map(|i| comm_inc(i, "hot")).collect();
        for outcome in [execute_batch(&txns), execute_batch_ordered(&txns)] {
            assert_eq!(outcome.committed.len(), 20);
            assert!(outcome.deferred.is_empty());
            assert_eq!(outcome.comm_conflicts, 0);
        }
    }

    #[test]
    fn reader_after_commutative_writer_defers() {
        // The count a plain reader observes depends on how many earlier
        // deltas applied — so it waits for the commutative pile to drain.
        let txns = vec![comm_inc(1, "hot"), read_only(2, "hot")];
        for outcome in [execute_batch(&txns), execute_batch_ordered(&txns)] {
            assert_eq!(outcome.committed, vec![1]);
            assert_eq!(outcome.deferred, vec![2]);
            assert_eq!(outcome.comm_conflicts, 1);
        }
    }

    #[test]
    fn commutative_writer_after_reader_defers_only_under_ordered_rule() {
        // Mirror of the WAR asymmetry: plain Aria serializes the reader
        // first and lets the delta commit; the order-preserving rule defers
        // the delta so arrival order is kept.
        let txns = vec![read_only(1, "hot"), comm_inc(2, "hot")];
        let plain = execute_batch(&txns);
        assert_eq!(plain.committed, vec![1, 2]);
        assert_eq!(plain.comm_conflicts, 0);
        let ordered = execute_batch_ordered(&txns);
        assert_eq!(ordered.committed, vec![1]);
        assert_eq!(ordered.deferred, vec![2]);
        assert_eq!(ordered.comm_conflicts, 1);
    }

    #[test]
    fn commutative_and_exclusive_writers_defer_in_arrival_order() {
        // Exclusive first: the deltas wait behind it.
        let txns = vec![transfer(1, "hot", "b"), comm_inc(2, "hot")];
        let outcome = execute_batch_ordered(&txns);
        assert_eq!(outcome.committed, vec![1]);
        assert_eq!(outcome.deferred, vec![2]);

        // Delta first: the exclusive writer waits behind it — under both
        // rules, since a guarded write must observe the settled count.
        let txns = vec![comm_inc(1, "hot"), transfer(2, "hot", "b")];
        for outcome in [execute_batch(&txns), execute_batch_ordered(&txns)] {
            assert_eq!(outcome.committed, vec![1]);
            assert_eq!(outcome.deferred, vec![2]);
            assert!(outcome.comm_conflicts >= 1);
        }
    }

    #[test]
    fn commutative_storm_with_one_reader_drains_in_two_batches() {
        // 10 increments, a reader in the middle, 10 more increments: the
        // ordered rule commits the leading 10 together, then the reader,
        // then the trailing 10 together — three batches for 21 hot-key
        // transactions instead of 21.
        let mut txns: Vec<Transaction> = (0..10).map(|i| comm_inc(i, "hot")).collect();
        txns.push(read_only(10, "hot"));
        txns.extend((11..21).map(|i| comm_inc(i, "hot")));

        let first = execute_batch_ordered(&txns);
        assert_eq!(first.committed, (0..10).collect::<Vec<_>>());
        assert_eq!(first.deferred, (10..21).collect::<Vec<_>>());

        let requeued: Vec<Transaction> = txns[10..].to_vec();
        let second = execute_batch_ordered(&requeued);
        assert_eq!(second.committed, vec![10]);
        assert_eq!(second.deferred, (11..21).collect::<Vec<_>>());

        let third = execute_batch_ordered(&requeued[1..]);
        assert_eq!(third.committed, (11..21).collect::<Vec<_>>());
        assert!(third.deferred.is_empty());
    }

    #[test]
    fn interleaved_writer_splits_a_read_storm_in_arrival_order() {
        // reads 0..5, then an RMW writer, then reads 6..10: under the
        // ordered rule the leading reads commit with the batch, the writer
        // defers behind nothing but blocks every read that arrived after it.
        let mut txns: Vec<Transaction> = (0..5).map(|i| read_only(i, "hot")).collect();
        let mut rw = RwSet::new();
        rw.read_write(key_ref("Account", "hot"));
        txns.push(Transaction::new(5, rw));
        txns.extend((6..11).map(|i| read_only(i, "hot")));

        let outcome = execute_batch_ordered(&txns);
        assert_eq!(outcome.committed, vec![0, 1, 2, 3, 4]);
        assert_eq!(outcome.deferred, vec![5, 6, 7, 8, 9, 10]);

        // Next batch: deferred front — the writer commits, trailing reads
        // defer again behind it (RAW), preserving arrival order end to end.
        let requeued: Vec<Transaction> = txns[5..].to_vec();
        let second = execute_batch_ordered(&requeued);
        assert_eq!(second.committed, vec![5]);
        assert_eq!(second.deferred, vec![6, 7, 8, 9, 10]);
        let third = execute_batch_ordered(&requeued[1..]);
        assert_eq!(third.committed, vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn rw_set_read_write_and_read_only_helpers() {
        let mut rw = RwSet::new();
        rw.read(key_ref("A", 1));
        assert!(rw.is_read_only());
        rw.read_write(key_ref("A", 2));
        assert!(!rw.is_read_only());
        assert!(rw.reads.contains(&key_ref("A", 2)));
        assert!(rw.writes.contains(&key_ref("A", 2)));
        assert_eq!(rw.footprint(), 3);
    }

    #[test]
    fn scheduler_eventually_commits_every_transaction() {
        let mut scheduler = DeterministicScheduler::new(8);
        // Ten transfers all touching account "hot": heavy conflicts.
        for i in 0..10 {
            scheduler.submit(transfer(i, "hot", &format!("other{i}")));
        }
        let committed = scheduler.drain();
        let mut sorted = committed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(
            scheduler.batches_executed >= 10,
            "hot-key conflicts force many batches"
        );
        assert_eq!(scheduler.committed_total, 10);
        assert!(scheduler.deferred_total > 0);
    }

    #[test]
    fn deferred_transactions_get_priority_next_batch() {
        let mut scheduler = DeterministicScheduler::new(2);
        scheduler.submit(transfer(1, "a", "b"));
        scheduler.submit(transfer(2, "b", "c"));
        scheduler.submit(transfer(3, "x", "y"));
        let first = scheduler.run_batch();
        assert_eq!(first.committed, vec![1]);
        assert_eq!(first.deferred, vec![2]);
        // Next batch starts with the deferred transaction 2, then 3.
        let second = scheduler.run_batch();
        assert_eq!(second.committed, vec![2, 3]);
    }

    #[test]
    fn committed_subset_is_conflict_free() {
        // The committed transactions of one batch must be pairwise free of
        // write-write and write-read overlaps, which makes "execute against
        // batch-start state, then apply buffered writes" equivalent to serial
        // execution in sequence order.
        let txns: Vec<Transaction> = (0..50)
            .map(|i| transfer(i, &format!("a{}", i % 7), &format!("b{}", i % 5)))
            .collect();
        let outcome = execute_batch(&txns);
        let committed: Vec<&Transaction> = txns
            .iter()
            .filter(|t| outcome.committed.contains(&t.id))
            .collect();
        for (i, t1) in committed.iter().enumerate() {
            for t2 in &committed[i + 1..] {
                assert!(
                    t1.rw.writes.is_disjoint(&t2.rw.writes),
                    "two committed transactions share a written key"
                );
                assert!(
                    t1.rw.writes.is_disjoint(&t2.rw.reads),
                    "a committed transaction read a key a committed earlier txn wrote"
                );
            }
        }
    }

    #[test]
    fn epoch_tracker_completes_when_all_workers_ack() {
        let mut tracker = EpochTracker::new(3);
        assert!(!tracker.ack(1, 0));
        assert!(!tracker.ack(1, 1));
        assert!(!tracker.is_complete(1));
        assert!(tracker.ack(1, 2));
        assert!(tracker.is_complete(1));
        assert_eq!(tracker.latest_complete(), Some(1));
        // Duplicate acks are idempotent.
        assert!(tracker.ack(1, 2));
        // A later epoch supersedes when complete.
        tracker.ack(2, 0);
        tracker.ack(2, 1);
        tracker.ack(2, 2);
        assert_eq!(tracker.latest_complete(), Some(2));
    }

    #[test]
    fn rw_set_footprint_counts_reads_and_writes() {
        let mut rw = RwSet::new();
        rw.read(key_ref("A", 1)).write(key_ref("A", 2));
        assert_eq!(rw.footprint(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_txn(id: TxnId) -> impl Strategy<Value = Transaction> {
        (
            prop::collection::btree_set(0u8..20, 0..4),
            prop::collection::btree_set(0u8..20, 0..4),
        )
            .prop_map(move |(reads, writes)| {
                let mut rw = RwSet::new();
                for r in reads {
                    rw.read(key_ref("K", r));
                }
                for w in writes {
                    rw.write(key_ref("K", w));
                }
                Transaction::new(id, rw)
            })
    }

    proptest! {
        /// Every submitted transaction commits exactly once, regardless of the
        /// conflict pattern (no loss, no duplication, no starvation).
        #[test]
        fn scheduler_commits_each_txn_exactly_once(
            txns in prop::collection::vec((0u64..1).prop_flat_map(|_| arb_txn(0)), 1..40),
            batch_size in 1usize..16,
        ) {
            let mut scheduler = DeterministicScheduler::new(batch_size);
            for (i, mut txn) in txns.into_iter().enumerate() {
                txn.id = i as TxnId;
                scheduler.submit(txn);
            }
            let expected: Vec<TxnId> = (0..scheduler.pending() as u64).collect();
            let mut committed = scheduler.drain();
            committed.sort_unstable();
            prop_assert_eq!(committed, expected);
        }

        /// The committed subset of any single batch is pairwise conflict-free.
        #[test]
        fn committed_subset_is_serializable(
            txns in prop::collection::vec((0u64..1).prop_flat_map(|_| arb_txn(0)), 1..40),
        ) {
            let txns: Vec<Transaction> = txns
                .into_iter()
                .enumerate()
                .map(|(i, mut t)| { t.id = i as TxnId; t })
                .collect();
            let outcome = execute_batch(&txns);
            let committed: Vec<&Transaction> =
                txns.iter().filter(|t| outcome.committed.contains(&t.id)).collect();
            for (i, t1) in committed.iter().enumerate() {
                for t2 in &committed[i + 1..] {
                    prop_assert!(t1.rw.writes.is_disjoint(&t2.rw.writes));
                    prop_assert!(t1.rw.writes.is_disjoint(&t2.rw.reads));
                }
            }
            // Every transaction is either committed or deferred, never both.
            for t in &txns {
                let c = outcome.committed.contains(&t.id);
                let d = outcome.deferred.contains(&t.id);
                prop_assert!(c ^ d);
            }
        }
    }
}
