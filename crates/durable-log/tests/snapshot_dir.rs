//! Snapshot-directory invariants: checksummed envelopes, the manifest as the
//! atomic commit point, crash injection mid-upload and mid-manifest-rename,
//! and garbage collection of unreferenced files.

use durable_log::testutil::TempDir;
use durable_log::{
    read_blob, write_blob, CrashPoint, DurableError, FaultInjector, Manifest, SnapKind, SnapshotDir,
};
use std::fs;

fn manifest(sealed: u64, files: Vec<(u64, u32, SnapKind)>) -> Manifest {
    Manifest {
        sealed_epoch: sealed,
        incarnation: 1,
        shards: 2,
        offsets: vec![10, 20],
        files,
    }
}

#[test]
fn put_get_round_trips_every_kind() {
    let tmp = TempDir::new("snapdir-rt");
    let dir = SnapshotDir::open(tmp.path(), &FaultInjector::new()).unwrap();
    for (i, kind) in [SnapKind::Full, SnapKind::Delta, SnapKind::Merged]
        .into_iter()
        .enumerate()
    {
        let payload = vec![i as u8; 100 + i];
        dir.put(3, i as u32, kind, &payload).unwrap();
        assert_eq!(dir.get(3, i as u32, kind).unwrap(), payload);
    }
    assert_eq!(dir.snapshot_file_count().unwrap(), 3);
}

#[test]
fn flipped_payload_byte_is_a_typed_corruption_error() {
    let tmp = TempDir::new("snapdir-flip");
    let dir = SnapshotDir::open(tmp.path(), &FaultInjector::new()).unwrap();
    dir.put(7, 1, SnapKind::Full, b"snapshot-bytes").unwrap();
    let file = tmp.path().join("e7-p1-full.snap");
    let mut data = fs::read(&file).unwrap();
    let last = data.len() - 1;
    data[last] ^= 0x01;
    fs::write(&file, &data).unwrap();
    match dir.get(7, 1, SnapKind::Full).unwrap_err() {
        DurableError::CorruptSnapshotFile {
            epoch, partition, ..
        } => {
            assert_eq!(epoch, 7);
            assert_eq!(partition, 1);
        }
        other => panic!("expected CorruptSnapshotFile, got {other:?}"),
    }
}

#[test]
fn manifest_commit_is_atomic_and_replayable() {
    let tmp = TempDir::new("snapdir-manifest");
    let fault = FaultInjector::new();
    let dir = SnapshotDir::open(tmp.path(), &fault).unwrap();
    assert_eq!(
        dir.load_manifest().unwrap(),
        None,
        "fresh dir has no manifest"
    );

    let m1 = manifest(4, vec![(3, 0, SnapKind::Full), (4, 0, SnapKind::Merged)]);
    dir.commit_manifest(&m1).unwrap();
    assert_eq!(dir.load_manifest().unwrap(), Some(m1.clone()));

    // A crash mid-rename leaves the previous manifest as the commit point.
    fault.arm(CrashPoint::MidManifestRename, 0);
    let m2 = manifest(5, vec![(5, 0, SnapKind::Full)]);
    let err = dir.commit_manifest(&m2).unwrap_err();
    assert_eq!(
        err,
        DurableError::CrashInjected {
            point: CrashPoint::MidManifestRename
        }
    );
    assert!(
        tmp.path().join("MANIFEST.tmp").exists(),
        "the temp file was left behind"
    );
    assert_eq!(
        dir.load_manifest().unwrap(),
        Some(m1),
        "the old manifest survives the torn commit"
    );
    assert!(
        !tmp.path().join("MANIFEST.tmp").exists(),
        "recovery removes the leftover temp file"
    );

    // Retrying the commit (a fresh seal after restart) succeeds.
    dir.commit_manifest(&m2).unwrap();
    assert_eq!(dir.load_manifest().unwrap(), Some(m2));
}

#[test]
fn corrupt_manifest_is_a_typed_error_naming_the_path() {
    let tmp = TempDir::new("snapdir-badmanifest");
    let dir = SnapshotDir::open(tmp.path(), &FaultInjector::new()).unwrap();
    dir.commit_manifest(&manifest(1, vec![])).unwrap();
    let path = tmp.path().join("MANIFEST");
    let mut data = fs::read(&path).unwrap();
    data[6] ^= 0xFF;
    fs::write(&path, &data).unwrap();
    match dir.load_manifest().unwrap_err() {
        DurableError::CorruptManifest { path: p, .. } => {
            assert!(
                p.ends_with("MANIFEST"),
                "error names the manifest path: {p}"
            );
        }
        other => panic!("expected CorruptManifest, got {other:?}"),
    }
}

#[test]
fn mid_upload_crash_leaves_garbage_the_manifest_never_references() {
    let tmp = TempDir::new("snapdir-midupload");
    let fault = FaultInjector::new();
    let dir = SnapshotDir::open(tmp.path(), &fault).unwrap();
    dir.put(1, 0, SnapKind::Full, b"anchor").unwrap();
    let committed = manifest(1, vec![(1, 0, SnapKind::Full)]);
    dir.commit_manifest(&committed).unwrap();

    fault.arm(CrashPoint::MidUpload, 0);
    let err = dir
        .put(2, 0, SnapKind::Delta, b"next-epoch-bytes")
        .unwrap_err();
    assert_eq!(
        err,
        DurableError::CrashInjected {
            point: CrashPoint::MidUpload
        }
    );
    // The half-written file is on disk but unreferenced; reading it back is
    // a typed corruption error, and GC against the committed manifest reaps it.
    assert!(dir.get(2, 0, SnapKind::Delta).is_err());
    let removed = dir.gc(&committed).unwrap();
    assert_eq!(removed, 1);
    assert_eq!(dir.get(1, 0, SnapKind::Full).unwrap(), b"anchor".to_vec());
    assert_eq!(dir.snapshot_file_count().unwrap(), 1);
}

#[test]
fn gc_keeps_exactly_the_referenced_files() {
    let tmp = TempDir::new("snapdir-gc");
    let dir = SnapshotDir::open(tmp.path(), &FaultInjector::new()).unwrap();
    for epoch in 1..=4u64 {
        dir.put(epoch, 0, SnapKind::Delta, b"d").unwrap();
    }
    dir.put(4, 0, SnapKind::Full, b"anchor").unwrap();
    let keep = manifest(4, vec![(4, 0, SnapKind::Full)]);
    let removed = dir.gc(&keep).unwrap();
    assert_eq!(removed, 4, "superseded deltas are reaped");
    assert_eq!(dir.snapshot_file_count().unwrap(), 1);
    assert!(dir.get(4, 0, SnapKind::Full).is_ok());
}

#[test]
fn delete_is_idempotent() {
    let tmp = TempDir::new("snapdir-del");
    let dir = SnapshotDir::open(tmp.path(), &FaultInjector::new()).unwrap();
    dir.put(1, 0, SnapKind::Full, b"x").unwrap();
    assert!(dir.delete(1, 0, SnapKind::Full).unwrap());
    assert!(!dir.delete(1, 0, SnapKind::Full).unwrap());
}

#[test]
fn spill_blobs_round_trip_and_detect_corruption() {
    let tmp = TempDir::new("snapdir-blob");
    let path = tmp.path().join("s0-e3.spill");
    write_blob(&path, b"spilled capture bytes").unwrap();
    assert_eq!(read_blob(&path).unwrap(), b"spilled capture bytes".to_vec());
    let mut data = fs::read(&path).unwrap();
    let last = data.len() - 1;
    data[last] ^= 0x10;
    fs::write(&path, &data).unwrap();
    assert!(matches!(
        read_blob(&path),
        Err(DurableError::CorruptSnapshotFile { .. })
    ));
}
