//! Durable-codec coverage (satellite 3): property-based round-trips over the
//! segmented log — arbitrary record sizes including 0-byte and
//! larger-than-segment records — plus a "garbage at every byte offset" sweep
//! asserting that decoding never panics and always produces a typed error
//! naming the segment and offset.

use durable_log::testutil::TempDir;
use durable_log::{
    CrashPoint, DurableError, FaultInjector, LogConfig, LogPartition, SEGMENT_HEADER_LEN,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn small_cfg(window: usize) -> LogConfig {
    LogConfig {
        group_commit_window: window,
        segment_max_bytes: 200,
    }
}

fn segment_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    /// Round trip: append arbitrary records (0-byte payloads and payloads
    /// several times the segment cap included), reopen cold, and read back
    /// bit-for-bit from every starting offset.
    fn roundtrip_survives_cold_reopen(
        records in prop::collection::vec(
            (0u64..1000, prop::collection::vec(0u8..255, 0..700)),
            1..30,
        ),
        window in 1usize..10,
    ) {
        let tmp = TempDir::new("dlog-prop");
        let fault = FaultInjector::new();
        {
            let mut log = LogPartition::create(tmp.path(), small_cfg(window), fault.clone()).unwrap();
            for (i, (key, payload)) in records.iter().enumerate() {
                let off = log.append(*key, payload).unwrap();
                prop_assert_eq!(off, i as u64);
            }
            log.sync().unwrap();
        }
        // Cold reopen with everything sealed: nothing may be trimmed.
        let mut log =
            LogPartition::open(tmp.path(), small_cfg(window), fault, records.len() as u64).unwrap();
        prop_assert_eq!(log.next_offset(), records.len() as u64);
        for from in 0..=records.len() {
            let got = log.read_from(from as u64, usize::MAX).unwrap();
            prop_assert_eq!(got.len(), records.len() - from);
            for (rec, (key, payload)) in got.iter().zip(records[from..].iter()) {
                prop_assert_eq!(rec.key, *key);
                prop_assert_eq!(&rec.payload, payload);
            }
        }
    }
}

#[test]
fn oversized_record_gets_its_own_segment_and_round_trips() {
    let tmp = TempDir::new("dlog-oversize");
    let fault = FaultInjector::new();
    let big = vec![0xAB; 5 * 200]; // 5× segment_max_bytes
    let mut log = LogPartition::create(tmp.path(), small_cfg(1), fault.clone()).unwrap();
    log.append(1, b"small").unwrap();
    log.append(2, &big).unwrap();
    log.append(3, b"").unwrap(); // 0-byte payload after the giant
    assert!(
        log.segment_count() >= 3,
        "the oversized record must roll into its own segment"
    );
    drop(log);
    let mut log = LogPartition::open(tmp.path(), small_cfg(1), fault, 3).unwrap();
    let got = log.read_from(0, 10).unwrap();
    assert_eq!(got.len(), 3);
    assert_eq!(got[1].payload, big);
    assert_eq!(got[2].payload, Vec::<u8>::new());
}

#[test]
fn group_commit_window_gates_the_durable_offset() {
    let tmp = TempDir::new("dlog-window");
    let mut log = LogPartition::create(tmp.path(), small_cfg(4), FaultInjector::new()).unwrap();
    for i in 0..3u64 {
        log.append(i, b"x").unwrap();
    }
    assert_eq!(
        log.durable_offset(),
        0,
        "below the window nothing is synced"
    );
    log.append(3, b"x").unwrap();
    assert_eq!(
        log.durable_offset(),
        4,
        "the 4th append triggers the group fsync"
    );
    log.append(4, b"x").unwrap();
    assert_eq!(log.durable_offset(), 4);
    log.sync().unwrap();
    assert_eq!(log.durable_offset(), 5, "explicit sync catches up");
}

#[test]
fn garbage_at_every_byte_offset_is_a_typed_error_never_a_panic() {
    // Build a two-segment log, seal everything, then flip every single byte
    // of every segment file in turn. With the full log sealed, *any*
    // corruption must surface as CorruptLogRecord naming the segment and a
    // record offset — no panics, no silent trims.
    let tmp = TempDir::new("dlog-sweep");
    let fault = FaultInjector::new();
    let mut committed = 0u64;
    {
        let mut log = LogPartition::create(tmp.path(), small_cfg(1), fault.clone()).unwrap();
        for i in 0..8u64 {
            log.append(i, format!("payload-{i}-{}", "x".repeat(40)).as_bytes())
                .unwrap();
            committed += 1;
        }
    }
    let files = segment_files(tmp.path());
    assert!(files.len() >= 2, "the sweep must cover a non-final segment");

    let mut sweeps = 0usize;
    for file in &files {
        let pristine = fs::read(file).unwrap();
        for pos in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[pos] ^= 0xFF;
            fs::write(file, &bad).unwrap();

            let result = LogPartition::open(tmp.path(), small_cfg(1), fault.clone(), committed);
            match result {
                Err(DurableError::CorruptLogRecord {
                    segment,
                    offset,
                    detail,
                }) => {
                    assert!(
                        !segment.is_empty(),
                        "byte {pos} of {file:?}: the error must name the segment"
                    );
                    assert!(
                        offset <= committed,
                        "byte {pos} of {file:?}: offset {offset} out of range ({detail})"
                    );
                }
                Err(other) => panic!("byte {pos} of {file:?}: unexpected error {other:?}"),
                Ok(_) => panic!(
                    "byte {pos} of {file:?}: corruption below the sealed offset was accepted"
                ),
            }
            sweeps += 1;
            fs::write(file, &pristine).unwrap();
        }
    }
    assert!(sweeps > 2 * SEGMENT_HEADER_LEN, "sanity: the sweep ran");
    // Pristine bytes restored: the log must open cleanly again.
    LogPartition::open(tmp.path(), small_cfg(1), fault, committed).unwrap();
}

#[test]
fn torn_tail_past_the_sealed_offset_is_trimmed_silently() {
    let tmp = TempDir::new("dlog-torn");
    let fault = FaultInjector::new();
    {
        let mut log = LogPartition::create(tmp.path(), small_cfg(1), fault.clone()).unwrap();
        for i in 0..4u64 {
            log.append(i, b"sealed-record").unwrap();
        }
        log.append(4, b"unsealed-tail-record").unwrap();
    }
    // Tear the final record: chop off its last 5 bytes.
    let file = segment_files(tmp.path()).pop().unwrap();
    let data = fs::read(&file).unwrap();
    fs::write(&file, &data[..data.len() - 5]).unwrap();

    // Only 4 records sealed: the torn 5th is past the commit point → trim.
    let mut log = LogPartition::open(tmp.path(), small_cfg(1), fault.clone(), 4).unwrap();
    assert_eq!(log.next_offset(), 4, "the torn record is gone");
    assert_eq!(log.read_from(0, 10).unwrap().len(), 4);
    // Appends continue at the trimmed offset.
    assert_eq!(log.append(9, b"fresh").unwrap(), 4);
    drop(log);

    // Same torn bytes but sealed through offset 5: now it is corruption.
    let data = fs::read(&file).unwrap();
    fs::write(&file, &data[..data.len() - 5]).unwrap();
    let err = LogPartition::open(tmp.path(), small_cfg(1), fault, 5).unwrap_err();
    match err {
        DurableError::CorruptLogRecord { offset, .. } => assert_eq!(offset, 4),
        other => panic!("expected CorruptLogRecord, got {other:?}"),
    }
}

#[test]
fn truncate_before_deletes_whole_segments_and_reopens_clean() {
    let tmp = TempDir::new("dlog-gc");
    let fault = FaultInjector::new();
    let mut log = LogPartition::create(tmp.path(), small_cfg(1), fault.clone()).unwrap();
    for i in 0..20u64 {
        log.append(i, &[0u8; 60]).unwrap();
    }
    let segments_before = log.segment_count();
    assert!(segments_before >= 4);
    let end = log.next_offset();
    let removed = log.truncate_before(end).unwrap();
    assert!(
        removed >= segments_before - 1,
        "all but the active segment go"
    );
    assert!(log.first_offset() > 0, "the GC'd prefix is gone");
    let first = log.first_offset();
    let tail = log.read_from(0, 100).unwrap();
    assert_eq!(tail.first().unwrap().offset, first);
    drop(log);

    // Reopen after GC: offsets keep counting from where the log left off.
    let mut log = LogPartition::open(tmp.path(), small_cfg(1), fault.clone(), end).unwrap();
    assert_eq!(log.next_offset(), end);
    assert_eq!(log.append(99, b"after-gc").unwrap(), end);
    drop(log);

    // A fully GC'd (empty) partition resumes at the sealed offset.
    let empty = TempDir::new("dlog-empty");
    let log = LogPartition::open(empty.path(), small_cfg(1), fault, 7).unwrap();
    assert_eq!(log.next_offset(), 7);
    assert_eq!(log.first_offset(), 7);
}

#[test]
fn mid_append_crash_leaves_a_trimmable_torn_write() {
    let tmp = TempDir::new("dlog-midappend");
    let fault = FaultInjector::new();
    let mut log = LogPartition::create(tmp.path(), small_cfg(1), fault.clone()).unwrap();
    for i in 0..3u64 {
        log.append(i, b"durable").unwrap();
    }
    fault.arm(CrashPoint::MidAppend, 0);
    let err = log.append(3, b"torn-away").unwrap_err();
    assert_eq!(
        err,
        DurableError::CrashInjected {
            point: CrashPoint::MidAppend
        }
    );
    drop(log);
    // Recovery with 3 sealed: the torn 4th record is trimmed, not an error.
    let mut log = LogPartition::open(tmp.path(), small_cfg(1), fault, 3).unwrap();
    assert_eq!(log.next_offset(), 3);
    assert_eq!(log.read_from(0, 10).unwrap().len(), 3);
}

#[test]
fn mid_fsync_crash_keeps_flushed_bytes_but_not_durability() {
    let tmp = TempDir::new("dlog-midfsync");
    let fault = FaultInjector::new();
    let mut log = LogPartition::create(tmp.path(), small_cfg(100), fault.clone()).unwrap();
    log.append(0, b"first").unwrap();
    log.sync().unwrap();
    log.append(1, b"second").unwrap();
    fault.arm(CrashPoint::MidFsync, 0);
    let err = log.sync().unwrap_err();
    assert_eq!(
        err,
        DurableError::CrashInjected {
            point: CrashPoint::MidFsync
        }
    );
    assert_eq!(
        log.durable_offset(),
        1,
        "the skipped fsync must not advance durability"
    );
    drop(log);
    // The bytes did reach the file (flush happened): recovery keeps them —
    // they are past the sealed offset, intact, and replayable.
    let mut log = LogPartition::open(tmp.path(), small_cfg(100), fault, 1).unwrap();
    assert_eq!(log.read_from(0, 10).unwrap().len(), 2);
}
