//! Durable snapshot directory: checksummed per-partition snapshot files plus
//! an atomically committed manifest.
//!
//! Files are named `e{epoch}-p{partition}-{kind}.snap` and carry a
//! checksummed envelope; the `MANIFEST` file is the **commit point** — it is
//! written to a temp file, fsynced, renamed into place, and the directory
//! fsynced, so on disk an epoch is *sealed* exactly when a valid manifest
//! references it. Files not referenced by the current manifest are garbage
//! (half-uploaded snapshots from a crash, superseded chains) and are removed
//! by [`SnapshotDir::gc`].

use crate::crc::crc32;
use crate::fault::{CrashPoint, FaultInjector};
use crate::{io_err, DurableError};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot envelope.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SESN";
/// Magic bytes opening the manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"SEMF";
/// Magic bytes opening a spill blob.
pub const BLOB_MAGIC: [u8; 4] = *b"SEBL";
/// On-disk format version for all three envelopes.
pub const SNAP_VERSION: u32 = 1;

const MANIFEST_NAME: &str = "MANIFEST";

/// What a snapshot file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SnapKind {
    /// A full partition image (an anchor).
    Full,
    /// A dirty-set delta against the previous epoch.
    Delta,
    /// A lazily merged delta chain (amortized store), replacing the
    /// individual deltas since the anchor.
    Merged,
}

impl SnapKind {
    fn tag(self) -> u8 {
        match self {
            SnapKind::Full => 0,
            SnapKind::Delta => 1,
            SnapKind::Merged => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SnapKind::Full),
            1 => Some(SnapKind::Delta),
            2 => Some(SnapKind::Merged),
            _ => None,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            SnapKind::Full => "full",
            SnapKind::Delta => "delta",
            SnapKind::Merged => "merged",
        }
    }
}

/// The manifest: which epoch is sealed on disk, where the log stood at that
/// seal, and exactly which snapshot files the sealed state is made of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The latest sealed epoch.
    pub sealed_epoch: u64,
    /// Coordinator incarnation that wrote the manifest.
    pub incarnation: u64,
    /// Partition (= shard) count the snapshots were taken with.
    pub shards: u32,
    /// Per-partition ingress offsets at the sealed epoch's cut (exclusive).
    pub offsets: Vec<u64>,
    /// Snapshot files the sealed state references: `(epoch, partition, kind)`.
    pub files: Vec<(u64, u32, SnapKind)>,
}

fn snap_file_name(epoch: u64, partition: u32, kind: SnapKind) -> String {
    format!("e{epoch}-p{partition}-{}.snap", kind.suffix())
}

fn parse_snap_file_name(name: &str) -> Option<(u64, u32, SnapKind)> {
    let rest = name.strip_suffix(".snap")?;
    let mut parts = rest.split('-');
    let epoch = parts.next()?.strip_prefix('e')?.parse().ok()?;
    let partition = parts.next()?.strip_prefix('p')?.parse().ok()?;
    let kind = match parts.next()? {
        "full" => SnapKind::Full,
        "delta" => SnapKind::Delta,
        "merged" => SnapKind::Merged,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some((epoch, partition, kind))
}

/// Write `bytes` to `path` fully fsynced (no atomicity — callers that need
/// the commit-point property go through the manifest).
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(|e| io_err(path, &e))?;
    file.write_all(bytes).map_err(|e| io_err(path, &e))?;
    file.sync_data().map_err(|e| io_err(path, &e))?;
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<(), DurableError> {
    // Directory fsync makes the rename itself durable. On platforms where
    // opening a directory for sync is unsupported, the rename is still atomic.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A directory of checksummed snapshot files with an atomically-replaced
/// manifest as the seal commit point.
#[derive(Debug)]
pub struct SnapshotDir {
    dir: PathBuf,
    fault: FaultInjector,
}

impl SnapshotDir {
    /// Open (creating if absent) the snapshot directory.
    pub fn open(dir: impl Into<PathBuf>, fault: &FaultInjector) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        Ok(SnapshotDir {
            dir,
            fault: fault.clone(),
        })
    }

    /// Root directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Upload one partition's snapshot bytes for an epoch. The file is fully
    /// fsynced before returning; it only becomes *referenced* (and thus part
    /// of sealed state) once a later [`commit_manifest`](Self::commit_manifest)
    /// names it.
    pub fn put(
        &self,
        epoch: u64,
        partition: u32,
        kind: SnapKind,
        payload: &[u8],
    ) -> Result<(), DurableError> {
        let path = self.dir.join(snap_file_name(epoch, partition, kind));
        let mut bytes = Vec::with_capacity(29 + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        bytes.extend_from_slice(&epoch.to_le_bytes());
        bytes.extend_from_slice(&partition.to_le_bytes());
        bytes.push(kind.tag());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        if let Err(crash) = self.fault.check(CrashPoint::MidUpload) {
            // Torn upload: half the envelope lands on disk. The manifest does
            // not reference this file yet, so recovery GCs it.
            let torn = &bytes[..bytes.len() / 2];
            write_synced(&path, torn)?;
            return Err(crash);
        }
        write_synced(&path, &bytes)
    }

    /// Read back one snapshot file, verifying the envelope and checksum.
    pub fn get(&self, epoch: u64, partition: u32, kind: SnapKind) -> Result<Vec<u8>, DurableError> {
        let path = self.dir.join(snap_file_name(epoch, partition, kind));
        let corrupt = |detail: String| DurableError::CorruptSnapshotFile {
            path: path.to_string_lossy().into_owned(),
            epoch,
            partition: partition as usize,
            detail,
        };
        let data = fs::read(&path).map_err(|e| io_err(&path, &e))?;
        if data.len() < 29 {
            return Err(corrupt(format!(
                "truncated envelope ({} of at least 29 bytes)",
                data.len()
            )));
        }
        if data[0..4] != SNAPSHOT_MAGIC {
            return Err(corrupt(format!("bad magic {:02x?}", &data[0..4])));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        let file_epoch = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let file_partition = u32::from_le_bytes(data[16..20].try_into().unwrap());
        let file_kind = SnapKind::from_tag(data[20]);
        if file_epoch != epoch || file_partition != partition || file_kind != Some(kind) {
            return Err(corrupt(format!(
                "envelope identifies epoch {file_epoch} partition {file_partition} kind {:?}",
                file_kind
            )));
        }
        let len = u32::from_le_bytes(data[21..25].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(data[25..29].try_into().unwrap());
        if data.len() != 29 + len {
            return Err(corrupt(format!(
                "payload length {len} does not match file size {}",
                data.len()
            )));
        }
        let payload = &data[29..];
        let actual = crc32(payload);
        if actual != stored_crc {
            return Err(corrupt(format!(
                "payload checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Delete one snapshot file if present; returns whether it existed.
    pub fn delete(&self, epoch: u64, partition: u32, kind: SnapKind) -> Result<bool, DurableError> {
        let path = self.dir.join(snap_file_name(epoch, partition, kind));
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err(&path, &e)),
        }
    }

    /// Atomically replace the manifest: write a temp file, fsync it, rename
    /// over `MANIFEST`, fsync the directory. Until the rename lands, the
    /// previous manifest (and the sealed epoch it names) stays current.
    pub fn commit_manifest(&self, manifest: &Manifest) -> Result<(), DurableError> {
        assert_eq!(
            manifest.offsets.len(),
            manifest.shards as usize,
            "one sealed offset per partition"
        );
        let mut body = Vec::new();
        body.extend_from_slice(&MANIFEST_MAGIC);
        body.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        body.extend_from_slice(&manifest.sealed_epoch.to_le_bytes());
        body.extend_from_slice(&manifest.incarnation.to_le_bytes());
        body.extend_from_slice(&manifest.shards.to_le_bytes());
        for &off in &manifest.offsets {
            body.extend_from_slice(&off.to_le_bytes());
        }
        body.extend_from_slice(&(manifest.files.len() as u32).to_le_bytes());
        for &(epoch, partition, kind) in &manifest.files {
            body.extend_from_slice(&epoch.to_le_bytes());
            body.extend_from_slice(&partition.to_le_bytes());
            body.push(kind.tag());
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());

        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        write_synced(&tmp, &body)?;
        // The crash lands after the temp file is durable but before the
        // rename: the previous manifest remains the commit point.
        self.fault.check(CrashPoint::MidManifestRename)?;
        let target = self.dir.join(MANIFEST_NAME);
        fs::rename(&tmp, &target).map_err(|e| io_err(&target, &e))?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Load the current manifest. `Ok(None)` means no manifest was ever
    /// committed (a fresh directory). Leftover `.tmp` files from a crash
    /// mid-commit are removed. Corruption is a typed error naming the path.
    pub fn load_manifest(&self) -> Result<Option<Manifest>, DurableError> {
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| io_err(&tmp, &e))?;
        }
        let path = self.dir.join(MANIFEST_NAME);
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, &e)),
        };
        let corrupt = |detail: String| DurableError::CorruptManifest {
            path: path.to_string_lossy().into_owned(),
            detail,
        };
        if data.len() < 4 {
            return Err(corrupt("truncated manifest".to_string()));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let actual = crc32(body);
        if actual != stored_crc {
            return Err(corrupt(format!(
                "manifest checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            )));
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DurableError> {
            if *pos + n > body.len() {
                return Err(corrupt("manifest body truncated".to_string()));
            }
            let s = &body[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MANIFEST_MAGIC {
            return Err(corrupt("bad manifest magic".to_string()));
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if version != SNAP_VERSION {
            return Err(corrupt(format!("unsupported manifest version {version}")));
        }
        let sealed_epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let incarnation = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let shards = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut offsets = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            offsets.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        }
        let n_files = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut files = Vec::with_capacity(n_files as usize);
        for _ in 0..n_files {
            let epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let partition = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let tag = take(&mut pos, 1)?[0];
            let kind = SnapKind::from_tag(tag)
                .ok_or_else(|| corrupt(format!("unknown snapshot kind tag {tag}")))?;
            files.push((epoch, partition, kind));
        }
        if pos != body.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after manifest body",
                body.len() - pos
            )));
        }
        Ok(Some(Manifest {
            sealed_epoch,
            incarnation,
            shards,
            offsets,
            files,
        }))
    }

    /// Remove every `.snap` file not referenced by `manifest` (half-uploaded
    /// files from a crash, superseded delta chains, rolled-back epochs).
    /// Returns the number of files removed.
    pub fn gc(&self, manifest: &Manifest) -> Result<usize, DurableError> {
        let referenced: std::collections::BTreeSet<(u64, u32, SnapKind)> =
            manifest.files.iter().copied().collect();
        let mut removed = 0;
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let stale = match parse_snap_file_name(&name) {
                Some(key) => !referenced.contains(&key),
                None => name.ends_with(".snap"),
            };
            if stale {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| io_err(&path, &e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Number of `.snap` files currently in the directory.
    pub fn snapshot_file_count(&self) -> Result<usize, DurableError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, &e))?;
        let mut count = 0;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, &e))?;
            if entry.file_name().to_string_lossy().ends_with(".snap") {
                count += 1;
            }
        }
        Ok(count)
    }
}

/// Write a standalone checksummed blob (used for capture spilling). The file
/// is fully written and fsynced before returning.
pub fn write_blob(path: &Path, payload: &[u8]) -> Result<(), DurableError> {
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(&BLOB_MAGIC);
    bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    write_synced(path, &bytes)
}

/// Read back a blob written by [`write_blob`], verifying magic and checksum.
pub fn read_blob(path: &Path) -> Result<Vec<u8>, DurableError> {
    let corrupt = |detail: String| DurableError::CorruptSnapshotFile {
        path: path.to_string_lossy().into_owned(),
        epoch: 0,
        partition: 0,
        detail,
    };
    let data = fs::read(path).map_err(|e| io_err(path, &e))?;
    if data.len() < 16 {
        return Err(corrupt(format!("truncated blob ({} bytes)", data.len())));
    }
    if data[0..4] != BLOB_MAGIC {
        return Err(corrupt(format!("bad blob magic {:02x?}", &data[0..4])));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(corrupt(format!("unsupported blob version {version}")));
    }
    let len = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
    if data.len() != 16 + len {
        return Err(corrupt(format!(
            "payload length {len} does not match file size {}",
            data.len()
        )));
    }
    let payload = &data[16..];
    let actual = crc32(payload);
    if actual != stored_crc {
        return Err(corrupt(format!(
            "blob checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(payload.to_vec())
}
