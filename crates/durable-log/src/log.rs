//! The segmented, checksummed, append-only ingress log.
//!
//! One [`LogPartition`] per ingress partition, each its own directory of
//! segment files (see the crate docs for the byte-level format). Appends go
//! through a buffered writer with **group-commit fsync**: every
//! `group_commit_window` appends the buffer is flushed and `fdatasync`ed, and
//! only then does the durable offset advance. [`DurableLog`] bundles the
//! partitions of one topic and mirrors the offset-addressed read/truncate
//! surface of the in-memory `mq::Broker`.

use crate::crc::crc32;
use crate::fault::{CrashPoint, FaultInjector};
use crate::{io_err, DurableError};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Offset of a record within a partition (dense, starts at 0, survives GC).
pub type Offset = u64;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"SELG";
/// On-disk format version written into every segment header.
pub const SEGMENT_VERSION: u32 = 1;
/// Segment header: magic (4) + version (4) + base offset (8).
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Per-record header: body length (4) + body crc (4).
pub const RECORD_HEADER_LEN: usize = 8;

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Offset within the partition.
    pub offset: Offset,
    /// Partitioning key the producer supplied.
    pub key: u64,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Fsync after this many appends (1 = sync every append). The tail past
    /// the last sync is *not* durable and may be torn by a crash.
    pub group_commit_window: usize,
    /// Roll to a new segment once the active one exceeds this size. A single
    /// record larger than the limit gets a segment of its own.
    pub segment_max_bytes: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            group_commit_window: 8,
            segment_max_bytes: 64 * 1024,
        }
    }
}

#[derive(Debug)]
struct Segment {
    base: Offset,
    records: u64,
    bytes: u64,
    path: PathBuf,
}

impl Segment {
    fn end(&self) -> Offset {
        self.base + self.records
    }

    fn file_name(&self) -> String {
        self.path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }
}

fn segment_file_name(base: Offset) -> String {
    // Zero-padded so lexicographic order equals offset order.
    format!("segment-{base:020}.seg")
}

fn parse_segment_base(name: &str) -> Option<Offset> {
    name.strip_prefix("segment-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn encode_header(base: Offset) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[0..4].copy_from_slice(&SEGMENT_MAGIC);
    h[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&base.to_le_bytes());
    h
}

/// Encode one record: `[body len][body crc][key][payload]`, crc over the body
/// (`key ‖ payload`).
fn encode_record(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&key.to_le_bytes());
    body.extend_from_slice(payload);
    let mut rec = Vec::with_capacity(RECORD_HEADER_LEN + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// Decode the record starting at `pos`. Returns `(key, payload, next_pos)` or
/// a human-readable reason why the bytes are not a valid record.
fn decode_record_at(data: &[u8], pos: usize) -> Result<(u64, Vec<u8>, usize), String> {
    let remaining = data.len() - pos;
    if remaining < RECORD_HEADER_LEN {
        return Err(format!(
            "truncated record header ({remaining} of {RECORD_HEADER_LEN} bytes)"
        ));
    }
    let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
    if len < 8 {
        return Err(format!("record body length {len} is shorter than its key"));
    }
    let stored_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
    let body_start = pos + RECORD_HEADER_LEN;
    let Some(body_end) = body_start.checked_add(len).filter(|&e| e <= data.len()) else {
        return Err(format!(
            "record body of {len} bytes extends past the end of the segment"
        ));
    };
    let body = &data[body_start..body_end];
    let actual = crc32(body);
    if actual != stored_crc {
        return Err(format!(
            "record checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
        ));
    }
    let key = u64::from_le_bytes(body[0..8].try_into().unwrap());
    Ok((key, body[8..].to_vec(), body_end))
}

/// One partition of the durable ingress log: a directory of segment files
/// plus an open writer on the newest (active) segment.
#[derive(Debug)]
pub struct LogPartition {
    dir: PathBuf,
    cfg: LogConfig,
    fault: FaultInjector,
    segments: Vec<Segment>,
    writer: Option<BufWriter<File>>,
    next_offset: Offset,
    durable_offset: Offset,
    pending_appends: usize,
}

impl LogPartition {
    /// Create a fresh partition at `dir` (created if absent, must hold no
    /// segments yet — otherwise this is equivalent to `open` at offset 0).
    pub fn create(
        dir: impl Into<PathBuf>,
        cfg: LogConfig,
        fault: FaultInjector,
    ) -> Result<Self, DurableError> {
        Self::open(dir, cfg, fault, 0)
    }

    /// Open (recover) a partition from `dir`.
    ///
    /// `committed` is the partition's last *sealed* offset (exclusive): every
    /// record below it is part of recovered state and must decode, so any
    /// corruption there is a typed [`DurableError::CorruptLogRecord`]. A
    /// decode failure at or past `committed`, in the **final** segment only,
    /// is a torn tail from a crash mid-write: it is silently truncated to the
    /// last whole record. If the directory is empty the partition resumes at
    /// `committed` (a fully garbage-collected log).
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: LogConfig,
        fault: FaultInjector,
        committed: Offset,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;

        let mut files: Vec<(Offset, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(base) = parse_segment_base(&name) {
                files.push((base, entry.path()));
            }
        }
        files.sort_by_key(|(base, _)| *base);

        let mut segments: Vec<Segment> = Vec::new();
        let mut next_offset: Offset = if files.is_empty() { committed } else { 0 };
        for (idx, (base, path)) in files.iter().enumerate() {
            let is_last = idx + 1 == files.len();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let corrupt = |offset: Offset, detail: String| DurableError::CorruptLogRecord {
                segment: name.clone(),
                offset,
                detail,
            };

            if segments.is_empty() {
                if *base > committed {
                    return Err(corrupt(
                        *base,
                        format!("first segment starts at {base} but only {committed} is sealed"),
                    ));
                }
            } else if *base != next_offset {
                return Err(corrupt(
                    *base,
                    format!("segment base {base} does not follow previous end {next_offset}"),
                ));
            }

            let data = fs::read(path).map_err(|e| io_err(path, &e))?;
            if let Err(detail) = validate_header(&data, *base) {
                // A torn header can only happen on a freshly rolled final
                // segment whose records are all past the sealed offset.
                if is_last && *base >= committed {
                    fs::remove_file(path).map_err(|e| io_err(path, &e))?;
                    break;
                }
                return Err(corrupt(*base, detail));
            }

            let mut pos = SEGMENT_HEADER_LEN;
            let mut offset = *base;
            let mut records = 0u64;
            let mut good_len = SEGMENT_HEADER_LEN;
            while pos < data.len() {
                match decode_record_at(&data, pos) {
                    Ok((_key, _payload, next_pos)) => {
                        records += 1;
                        offset += 1;
                        pos = next_pos;
                        good_len = next_pos;
                    }
                    Err(detail) => {
                        if is_last && offset >= committed {
                            // Torn tail past the commit point: trim in place.
                            let file = OpenOptions::new()
                                .write(true)
                                .open(path)
                                .map_err(|e| io_err(path, &e))?;
                            file.set_len(good_len as u64)
                                .map_err(|e| io_err(path, &e))?;
                            file.sync_data().map_err(|e| io_err(path, &e))?;
                            break;
                        }
                        return Err(corrupt(offset, detail));
                    }
                }
            }
            next_offset = *base + records;
            segments.push(Segment {
                base: *base,
                records,
                bytes: good_len as u64,
                path: path.clone(),
            });
        }

        if next_offset < committed {
            let segment = segments
                .last()
                .map(|s| s.file_name())
                .unwrap_or_else(|| "<missing>".to_string());
            return Err(DurableError::CorruptLogRecord {
                segment,
                offset: next_offset,
                detail: format!("log ends at offset {next_offset} but {committed} is sealed"),
            });
        }

        let writer = match segments.last() {
            Some(seg) => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(&seg.path)
                    .map_err(|e| io_err(&seg.path, &e))?;
                Some(BufWriter::new(file))
            }
            None => None,
        };

        Ok(LogPartition {
            dir,
            cfg,
            fault,
            segments,
            writer,
            next_offset,
            durable_offset: next_offset,
            pending_appends: 0,
        })
    }

    /// The offset the next append will receive.
    pub fn next_offset(&self) -> Offset {
        self.next_offset
    }

    /// The offset up to which records are known fsync-durable (exclusive).
    pub fn durable_offset(&self) -> Offset {
        self.durable_offset
    }

    /// The oldest offset still present (after GC).
    pub fn first_offset(&self) -> Offset {
        self.segments
            .first()
            .map(|s| s.base)
            .unwrap_or(self.next_offset)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn start_segment(&mut self) -> Result<(), DurableError> {
        let base = self.next_offset;
        let path = self.dir.join(segment_file_name(base));
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        let mut writer = BufWriter::new(file);
        writer
            .write_all(&encode_header(base))
            .map_err(|e| io_err(&path, &e))?;
        self.segments.push(Segment {
            base,
            records: 0,
            bytes: SEGMENT_HEADER_LEN as u64,
            path,
        });
        self.writer = Some(writer);
        Ok(())
    }

    /// Append one record. The write is buffered; every
    /// `group_commit_window` appends the group is flushed and fsynced. The
    /// returned offset is **not durable** until the next [`sync`](Self::sync)
    /// (implicit via the window, or explicit).
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<Offset, DurableError> {
        let record = encode_record(key, payload);

        // Roll once the active segment is full — unless it is empty, in which
        // case the (oversized) record becomes a single-record segment.
        let must_roll = match self.segments.last() {
            Some(seg) if self.writer.is_some() => {
                seg.records > 0
                    && seg.bytes + record.len() as u64 > self.cfg.segment_max_bytes as u64
            }
            _ => false,
        };
        if must_roll {
            self.sync()?;
            self.writer = None;
        }
        if self.writer.is_none() {
            self.start_segment()?;
        }

        let seg = self.segments.last_mut().expect("active segment exists");
        let path = seg.path.clone();
        let writer = self.writer.as_mut().expect("active writer exists");

        if let Err(crash) = self.fault.check(CrashPoint::MidAppend) {
            // Torn write: half the record's bytes reach the file, then the
            // process "dies". The tail past the durable offset now fails its
            // checksum and must be trimmed on recovery.
            let torn = &record[..record.len() / 2];
            writer.write_all(torn).map_err(|e| io_err(&path, &e))?;
            writer.flush().map_err(|e| io_err(&path, &e))?;
            return Err(crash);
        }

        writer.write_all(&record).map_err(|e| io_err(&path, &e))?;
        seg.records += 1;
        seg.bytes += record.len() as u64;
        let offset = self.next_offset;
        self.next_offset += 1;
        self.pending_appends += 1;
        if self.pending_appends >= self.cfg.group_commit_window.max(1) {
            self.sync()?;
        }
        Ok(offset)
    }

    /// Flush buffered appends and fsync the active segment; on success the
    /// durable offset catches up to the append head. This is the
    /// group-commit point: a record may only be *dispatched* once a sync has
    /// covered it.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.durable_offset == self.next_offset {
            self.pending_appends = 0;
            return Ok(());
        }
        if let Some(writer) = self.writer.as_mut() {
            let path = self
                .segments
                .last()
                .map(|s| s.path.clone())
                .unwrap_or_default();
            writer.flush().map_err(|e| io_err(&path, &e))?;
            // The crash lands after the data reached the file but before the
            // fsync: the bytes are intact on disk yet not durably committed.
            self.fault.check(CrashPoint::MidFsync)?;
            writer
                .get_ref()
                .sync_data()
                .map_err(|e| io_err(&path, &e))?;
        }
        self.durable_offset = self.next_offset;
        self.pending_appends = 0;
        Ok(())
    }

    /// Read up to `max` records starting at `from` — offset-addressed and
    /// group-free, mirroring `mq::Broker::read_from`. Buffered appends are
    /// flushed first so reads observe every append.
    pub fn read_from(&mut self, from: Offset, max: usize) -> Result<Vec<LogRecord>, DurableError> {
        if let Some(writer) = self.writer.as_mut() {
            let path = self
                .segments
                .last()
                .map(|s| s.path.clone())
                .unwrap_or_default();
            writer.flush().map_err(|e| io_err(&path, &e))?;
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.end() <= from || out.len() >= max {
                continue;
            }
            let data = fs::read(&seg.path).map_err(|e| io_err(&seg.path, &e))?;
            let mut pos = SEGMENT_HEADER_LEN;
            let mut offset = seg.base;
            while pos < data.len() && out.len() < max {
                match decode_record_at(&data, pos) {
                    Ok((key, payload, next_pos)) => {
                        if offset >= from {
                            out.push(LogRecord {
                                offset,
                                key,
                                payload,
                            });
                        }
                        offset += 1;
                        pos = next_pos;
                    }
                    Err(detail) => {
                        return Err(DurableError::CorruptLogRecord {
                            segment: seg.file_name(),
                            offset,
                            detail,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Garbage-collect: delete whole segments whose records all precede
    /// `offset`. The active segment is never deleted. Returns the number of
    /// segment files removed.
    pub fn truncate_before(&mut self, offset: Offset) -> Result<usize, DurableError> {
        let mut removed = 0;
        while self.segments.len() > 1 {
            let seg = &self.segments[0];
            if seg.end() > offset {
                break;
            }
            fs::remove_file(&seg.path).map_err(|e| io_err(&seg.path, &e))?;
            self.segments.remove(0);
            removed += 1;
        }
        Ok(removed)
    }
}

/// The partitions of one durable topic, routed exactly like the in-memory
/// broker (`key % partitions`).
#[derive(Debug)]
pub struct DurableLog {
    parts: Vec<LogPartition>,
}

impl DurableLog {
    /// Create a fresh log under `dir` with one subdirectory per partition.
    pub fn create(
        dir: &Path,
        partitions: usize,
        cfg: LogConfig,
        fault: &FaultInjector,
    ) -> Result<Self, DurableError> {
        Self::open(dir, partitions, cfg, fault, &vec![0; partitions])
    }

    /// Open (recover) the log with the given per-partition sealed offsets
    /// gating torn-tail truncation.
    pub fn open(
        dir: &Path,
        partitions: usize,
        cfg: LogConfig,
        fault: &FaultInjector,
        committed: &[Offset],
    ) -> Result<Self, DurableError> {
        assert!(partitions > 0, "a log needs at least one partition");
        assert_eq!(
            committed.len(),
            partitions,
            "one sealed offset per partition"
        );
        let mut parts = Vec::with_capacity(partitions);
        for (p, &sealed) in committed.iter().enumerate() {
            parts.push(LogPartition::open(
                dir.join(format!("p{p}")),
                cfg,
                fault.clone(),
                sealed,
            )?);
        }
        Ok(DurableLog { parts })
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Append keyed by `key`; the partition is `key % partitions`, matching
    /// the in-memory broker's routing so replay lands identically. Returns
    /// `(partition, offset)`.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<(usize, Offset), DurableError> {
        let partition = (key % self.parts.len() as u64) as usize;
        let offset = self.parts[partition].append(key, payload)?;
        Ok((partition, offset))
    }

    /// Fsync every partition; afterwards every appended record is durable.
    pub fn sync_all(&mut self) -> Result<(), DurableError> {
        for part in &mut self.parts {
            part.sync()?;
        }
        Ok(())
    }

    /// Offset-addressed read from one partition (see [`LogPartition::read_from`]).
    pub fn read_from(
        &mut self,
        partition: usize,
        from: Offset,
        max: usize,
    ) -> Result<Vec<LogRecord>, DurableError> {
        self.parts[partition].read_from(from, max)
    }

    /// GC one partition up to `offset` (whole segments only).
    pub fn truncate_before(
        &mut self,
        partition: usize,
        offset: Offset,
    ) -> Result<usize, DurableError> {
        self.parts[partition].truncate_before(offset)
    }

    /// The offset the next append to `partition` will receive.
    pub fn next_offset(&self, partition: usize) -> Offset {
        self.parts[partition].next_offset()
    }

    /// The oldest offset still present in `partition`.
    pub fn first_offset(&self, partition: usize) -> Offset {
        self.parts[partition].first_offset()
    }

    /// Total number of segment files across partitions.
    pub fn segment_count(&self) -> usize {
        self.parts.iter().map(|p| p.segment_count()).sum()
    }
}

fn validate_header(data: &[u8], expected_base: Offset) -> Result<(), String> {
    if data.len() < SEGMENT_HEADER_LEN {
        return Err(format!(
            "truncated segment header ({} of {SEGMENT_HEADER_LEN} bytes)",
            data.len()
        ));
    }
    if data[0..4] != SEGMENT_MAGIC {
        return Err(format!(
            "bad segment magic {:02x?} (expected {:02x?})",
            &data[0..4],
            SEGMENT_MAGIC
        ));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(format!(
            "unsupported segment version {version} (expected {SEGMENT_VERSION})"
        ));
    }
    let base = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if base != expected_base {
        return Err(format!(
            "segment header base {base} does not match file name base {expected_base}"
        ));
    }
    Ok(())
}
