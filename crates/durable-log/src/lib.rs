//! # durable-log
//!
//! The durable tier of the sharded runtime: a **segmented, checksummed,
//! append-only ingress log** ([`DurableLog`]) plus a **durable snapshot
//! directory** with an atomically committed manifest ([`SnapshotDir`]). This
//! is what lets the engine survive actual process death — the paper's
//! recovery story (durable replayable stream + coordinated snapshots) made
//! concrete on a local filesystem.
//!
//! ## Segment format
//!
//! Each log partition is a directory of segment files named
//! `segment-{base:020}.seg`, where `base` is the offset of the segment's
//! first record (zero-padded so lexicographic order is offset order):
//!
//! ```text
//! ┌───────────────────────── segment header (16 bytes) ─────────────────────┐
//! │ magic "SELG" (4) │ version u32 LE (4) │ base offset u64 LE (8)          │
//! ├──────────────────────────── record 0 ───────────────────────────────────┤
//! │ body len u32 LE (4) │ body crc32 u32 LE (4) │ key u64 LE (8) │ payload  │
//! ├──────────────────────────── record 1 ───────────────────────────────────┤
//! │ ...                                                                     │
//! └─────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The CRC covers the body (`key ‖ payload`); the length field is
//! bounds-checked before anything is sliced, so *no* byte flip or truncation
//! can make decoding panic — corruption always surfaces as
//! [`DurableError::CorruptLogRecord`] naming the segment file and record
//! offset. A record larger than `segment_max_bytes` gets a single-record
//! segment of its own.
//!
//! ## Fsync & commit-point invariants
//!
//! * **Group commit** — appends are buffered and fsynced every
//!   `group_commit_window` appends ([`LogConfig`]). A record may only be
//!   *dispatched* to workers once a sync has covered it; consequently every
//!   record below a sealed offset is durable by construction.
//! * **Torn tail** — on recovery ([`LogPartition::open`]), a decode failure
//!   in the *final* segment at an offset at or past the sealed offset is a
//!   torn write from the crash and is silently truncated; any failure below
//!   the sealed offset, or in a non-final segment, is a typed error — never
//!   silent data loss.
//! * **What "sealed" means on disk** — the snapshot directory's `MANIFEST`
//!   is the single commit point. Snapshot files are uploaded first (each
//!   individually fsynced), then the manifest naming them is written to a
//!   temp file, fsynced, renamed into place, and the directory fsynced. An
//!   epoch is sealed on disk **iff** the current manifest names it; anything
//!   the manifest does not reference (half-uploaded files, superseded
//!   chains, rolled-back epochs) is garbage and reaped by
//!   [`SnapshotDir::gc`]. A crash before the rename leaves the previous
//!   manifest — and therefore the previous sealed epoch — fully intact.
//!
//! ## Fault injection
//!
//! [`FaultInjector`] arms a one-shot [`CrashPoint`] — mid-append, mid-fsync,
//! mid-upload, or mid-manifest-rename. The primitive simulates the torn
//! on-disk state of a process dying at that instant and returns
//! [`DurableError::CrashInjected`]; recovery then proceeds from the
//! directory alone.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod crc;
mod fault;
mod log;
mod snap;
pub mod testutil;

pub use crate::log::{
    DurableLog, LogConfig, LogPartition, LogRecord, Offset, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
    SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use crc::crc32;
pub use fault::{CrashPoint, FaultInjector};
pub use snap::{
    read_blob, write_blob, Manifest, SnapKind, SnapshotDir, BLOB_MAGIC, MANIFEST_MAGIC,
    SNAPSHOT_MAGIC, SNAP_VERSION,
};

use std::path::Path;

/// Everything that can go wrong in the durable tier. Corruption variants name
/// the file and offset/epoch involved; nothing in this crate panics on bad
/// bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Stringified `io::Error`.
        detail: String,
    },
    /// A log record (or segment header) failed validation below the sealed
    /// offset — real corruption, not a trimmable torn tail.
    CorruptLogRecord {
        /// Segment file name.
        segment: String,
        /// Offset of the record that failed to decode.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A snapshot file failed envelope or checksum validation.
    CorruptSnapshotFile {
        /// Path of the snapshot file.
        path: String,
        /// Epoch the file was expected to hold.
        epoch: u64,
        /// Partition the file was expected to hold.
        partition: usize,
        /// What exactly failed.
        detail: String,
    },
    /// The manifest failed checksum or structural validation.
    CorruptManifest {
        /// Path of the manifest.
        path: String,
        /// What exactly failed.
        detail: String,
    },
    /// An armed [`FaultInjector`] fired: the simulated process death.
    CrashInjected {
        /// Where the crash landed.
        point: CrashPoint,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { path, detail } => write!(f, "i/o error at {path}: {detail}"),
            DurableError::CorruptLogRecord {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt log record in {segment} at offset {offset}: {detail}"
            ),
            DurableError::CorruptSnapshotFile {
                path,
                epoch,
                partition,
                detail,
            } => write!(
                f,
                "corrupt snapshot file {path} (epoch {epoch}, partition {partition}): {detail}"
            ),
            DurableError::CorruptManifest { path, detail } => {
                write!(f, "corrupt manifest {path}: {detail}")
            }
            DurableError::CrashInjected { point } => {
                write!(f, "injected crash at {point}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

pub(crate) fn io_err(path: &Path, e: &std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.to_string_lossy().into_owned(),
        detail: e.to_string(),
    }
}
