//! Table-driven CRC-32 (IEEE 802.3 / zlib polynomial), hand-rolled so the
//! durable tier stays dependency-free. The table is built at compile time.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 (IEEE) of `bytes`, with the standard init/final inversion — matches
/// zlib's `crc32(0, buf, len)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn is_sensitive_to_every_byte() {
        let base = crc32(b"hello world");
        for i in 0..11 {
            let mut copy = b"hello world".to_vec();
            copy[i] ^= 0x01;
            assert_ne!(crc32(&copy), base, "flip at byte {i} must change the crc");
        }
    }
}
