//! A minimal self-deleting temporary directory for tests — the workspace is
//! offline, so there is no `tempfile` crate to lean on.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `"$TMPDIR/{prefix}-{pid}-{nanos}-{counter}"`.
    pub fn new(prefix: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let path =
            std::env::temp_dir().join(format!("{prefix}-{}-{nanos}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
