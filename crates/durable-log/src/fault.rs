//! Crash-point fault injection for the durable tier.
//!
//! A [`FaultInjector`] is shared (cheaply cloned) between the runtime and the
//! durable-log primitives. Arming it with a [`CrashPoint`] and a hit count
//! makes the matching I/O primitive simulate a process death at that exact
//! point: a *torn write* is left on disk (partial record bytes, a skipped
//! fsync, a half-uploaded snapshot, or an un-renamed manifest temp file) and
//! the typed [`DurableError::CrashInjected`] error propagates upward. The
//! caller is expected to abort the run — recovery then happens from the
//! directory alone, exactly as after a real `kill -9`.

use crate::DurableError;
use std::sync::{Arc, Mutex};

/// Where in the durable write path a simulated crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashPoint {
    /// Mid `append`: only a prefix of the record's bytes reach the segment
    /// file (a torn write past the committed offset).
    MidAppend,
    /// Mid group-commit `sync`: buffered bytes reach the file, but the fsync
    /// never happens, so the tail is not yet part of the durable prefix.
    MidFsync,
    /// Mid snapshot upload: only a prefix of the snapshot envelope reaches
    /// its `.snap` file; the manifest still references the previous files.
    MidUpload,
    /// Mid manifest commit: the temp file is fully written and fsynced but
    /// the atomic rename never happens; the previous manifest stays current.
    MidManifestRename,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CrashPoint::MidAppend => "mid-append",
            CrashPoint::MidFsync => "mid-fsync",
            CrashPoint::MidUpload => "mid-upload",
            CrashPoint::MidManifestRename => "mid-manifest-rename",
        };
        f.write_str(name)
    }
}

#[derive(Debug)]
struct Armed {
    point: CrashPoint,
    remaining: u64,
}

/// Shared, clonable crash trigger. `Default`/`new` build a disarmed injector
/// that never fires.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Mutex<Option<Armed>>>,
}

impl FaultInjector {
    /// A disarmed injector (never fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the injector: the crash fires on the `(skip_hits + 1)`-th time the
    /// write path passes through `point`. Re-arming replaces any previous
    /// plan; each armed plan fires at most once.
    pub fn arm(&self, point: CrashPoint, skip_hits: u64) {
        *self.inner.lock().unwrap() = Some(Armed {
            point,
            remaining: skip_hits,
        });
    }

    /// Disarm without firing.
    pub fn disarm(&self) {
        *self.inner.lock().unwrap() = None;
    }

    /// Called by the I/O primitives at each crash point. Returns
    /// `Err(CrashInjected)` exactly when the armed plan fires.
    pub fn check(&self, point: CrashPoint) -> Result<(), DurableError> {
        let mut guard = self.inner.lock().unwrap();
        if let Some(armed) = guard.as_mut() {
            if armed.point == point {
                if armed.remaining == 0 {
                    *guard = None;
                    return Err(DurableError::CrashInjected { point });
                }
                armed.remaining -= 1;
            }
        }
        Ok(())
    }

    /// The currently armed crash point, if any (fires pending).
    pub fn armed(&self) -> Option<CrashPoint> {
        self.inner.lock().unwrap().as_ref().map(|a| a.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_after_the_requested_number_of_hits() {
        let f = FaultInjector::new();
        f.arm(CrashPoint::MidFsync, 2);
        assert!(f.check(CrashPoint::MidAppend).is_ok(), "other points pass");
        assert!(f.check(CrashPoint::MidFsync).is_ok());
        assert!(f.check(CrashPoint::MidFsync).is_ok());
        let err = f.check(CrashPoint::MidFsync).unwrap_err();
        assert_eq!(
            err,
            DurableError::CrashInjected {
                point: CrashPoint::MidFsync
            }
        );
        // One-shot: after firing the injector is disarmed.
        assert!(f.check(CrashPoint::MidFsync).is_ok());
        assert_eq!(f.armed(), None);
    }

    #[test]
    fn clones_share_the_same_plan() {
        let f = FaultInjector::new();
        let clone = f.clone();
        clone.arm(CrashPoint::MidUpload, 0);
        assert!(f.check(CrashPoint::MidUpload).is_err());
    }
}
