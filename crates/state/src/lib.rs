//! # state-backend
//!
//! Managed operator state for stateful dataflow operators: a partitioned
//! key→entity-state store with **dirty tracking**, a compact **binary
//! snapshot codec**, and a snapshot store implementing the state side of the
//! consistent-snapshot (Chandy–Lamport style) fault-tolerance protocol the
//! paper's StateFlow runtime relies on for exactly-once guarantees.
//!
//! ## Incremental snapshot protocol
//!
//! The seed implementation serialized *every* partition through `serde_json`
//! at *every* epoch, stalling workers proportionally to total state size.
//! Snapshots are now incremental and binary:
//!
//! * [`PartitionState`] tracks which entities were written (or removed) since
//!   the last snapshot in a dirty set — `put`, `get_mut`, and `take` mark it;
//! * at an epoch boundary the runtime emits either a **full** snapshot
//!   ([`PartitionState::snapshot_full`]) or a **delta**
//!   ([`PartitionState::snapshot_delta`]) containing only dirty entities and
//!   tombstones for removals; both clear the dirty set, re-basing the next
//!   delta on the epoch just captured;
//! * the runtime takes a full snapshot every N epochs (the *rebase interval*)
//!   and deltas in between, bounding recovery-chain length;
//! * recovery rebuilds a partition with [`SnapshotStore::reconstruct`]:
//!   latest full snapshot at-or-before the target epoch, plus every delta
//!   after it, applied in epoch order.
//!
//! The wire format is length-prefixed binary (see [`stateful_entities::binary`]),
//! version 2: a **class dictionary** (each distinct entity-class name written
//! once per snapshot), a layout dictionary (each distinct [`FieldLayout`]
//! encoded once), then one record per entity — class dictionary index (`u32`),
//! key, layout index, and the slot values in layout order. Addresses inside a
//! snapshot are therefore pure ids; class names appear exactly once however
//! many entities share them. Numeric [`ClassId`]s never hit the wire (they
//! are process-local); decode re-interns the dictionary names. No JSON is
//! produced on this path; the `BTreeMap` debug view of [`EntityState`]
//! remains available for human inspection.
//!
//! ## Capture vs. encode (off-barrier snapshots)
//!
//! Since PR 5 the *cut* and the *materialization* of a snapshot are separate
//! steps. [`PartitionState::capture_full`] / [`PartitionState::capture_delta`]
//! move the (dirty) entities' current values into a [`SnapshotCapture`] — a
//! copy-on-write buffer: entity values are `Arc`-shared, so the capture walk
//! is a refcount walk plus one small `Vec` per entity, not a deep copy — and
//! re-base the dirty set exactly like the eager `snapshot_*` methods do.
//! [`SnapshotCapture::encode`] then runs the exact-size encoder at any later
//! point, off the runtime's quiescent barrier. The eager
//! [`PartitionState::snapshot_full`] / [`PartitionState::snapshot_delta`]
//! remain for callers that want capture + encode in one step.
//!
//! ## Pending vs. sealed epochs
//!
//! With snapshot bytes arriving asynchronously, an epoch's snapshots can be
//! *in flight* while the runtime keeps processing. [`SnapshotStore`] therefore
//! distinguishes **pending** epochs (announced via
//! [`SnapshotStore::begin_epoch`], or with some partitions' bytes arrived)
//! from **sealed** epochs (every partition's bytes stored). Epochs seal
//! strictly in epoch order, and only sealed epochs are eligible as recovery
//! points: [`SnapshotStore::latest_sealed_epoch`] names the rollback target,
//! [`SnapshotStore::reconstruct`] reads sealed snapshots only, and
//! [`SnapshotStore::truncate_after`] drops pending arrivals along with stale
//! sealed epochs.
//!
//! ## Bounding recovery chains
//!
//! Long delta chains can be bounded independently of the rebase interval in
//! two ways. [`SnapshotStore::compact`] (PR 2) merges adjacent encoded deltas
//! per partition after the fact, so every full snapshot is followed by at most
//! one delta — but re-folding at every epoch costs O(cumulative dirty set) of
//! codec work per barrier. A store built with
//! [`SnapshotStore::new_amortized`] instead keeps the merged delta in
//! **decoded** form per partition and folds each newly *sealed* delta into it
//! incrementally — O(that epoch's dirty set) per epoch, zero encoding — and
//! encodes the merged form lazily only when someone asks for bytes
//! ([`SnapshotStore::merged_delta_bytes`]). Recovery applies the decoded
//! merged delta directly on the full anchor, with no codec round-trip.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use stateful_entities::binary::{
    get_key, get_layout, get_str, get_u32, get_value, put_key, put_layout, put_str, put_u32,
    put_value, CodecError, CodecResult,
};
use stateful_entities::{ClassId, EntityAddr, EntityState, FieldLayout, Key, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An epoch identifier: snapshots are aligned on epoch boundaries.
pub type EpochId = u64;

/// An optional [`racecheck::Monitor`] attachment carried by monitored state
/// objects. Unarmed (the default) every hook call is two `Option` checks —
/// the unmonitored hot path stays as before. Compares equal regardless of
/// arming: monitor identity is instrumentation, not logical state.
#[derive(Debug, Clone, Default)]
struct MonitorHook {
    monitor: Option<Arc<racecheck::Monitor>>,
    resource: Option<racecheck::Resource>,
}

impl PartialEq for MonitorHook {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl MonitorHook {
    fn arm(&mut self, monitor: Arc<racecheck::Monitor>, resource: racecheck::Resource) {
        self.monitor = Some(monitor);
        self.resource = Some(resource);
    }

    #[inline]
    fn observe(&self, kind: racecheck::AccessKind, context: &'static str) {
        if let (Some(monitor), Some(resource)) = (&self.monitor, self.resource) {
            monitor.access_current(resource, kind, context);
        }
    }

    #[inline]
    fn read(&self, context: &'static str) {
        self.observe(racecheck::AccessKind::Read, context);
    }

    #[inline]
    fn write(&self, context: &'static str) {
        self.observe(racecheck::AccessKind::Write, context);
    }
}

/// Binary snapshot format version. Version 2 (PR 2) introduced the class
/// dictionary: every distinct entity-class name is written once per
/// snapshot and entity records refer to it by `u32` index — addresses inside
/// a snapshot are pure ids, never repeated strings.
const SNAPSHOT_VERSION: u8 = 2;
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Whether a snapshot captures the whole partition or only the entities
/// written since the previous snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotKind {
    /// Complete partition contents (a rebase point for delta chains).
    Full,
    /// Dirty entities + tombstones since the previous snapshot.
    Delta,
}

/// A per-partition intern pool for the `Arc<str>` payloads of hot
/// [`Key::Str`] keys.
///
/// Every ingress call materializes a fresh `Arc<str>` for its target key, so
/// a hot key hit N times would otherwise keep N live allocations of the same
/// bytes spread across the entity map, the dirty set, continuation frames,
/// and snapshot captures. Interning collapses them to one allocation per
/// distinct key per partition: a lookup is a `BTreeSet` probe (borrowed as
/// `&str`, no allocation), and a hit swaps the incoming `Arc` for the pooled
/// one — dropping the duplicate when the caller releases its copy.
///
/// The pool is partition-local on purpose: partitions are owned by one worker
/// thread each, so interning needs no synchronization, and a partition only
/// ever sees keys that hash to it. The counters make the win measurable:
/// [`KeyInterner::saved_bytes`] is the cumulative size of duplicate
/// allocations avoided, [`KeyInterner::resident_bytes`] the pool's own
/// footprint.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner {
    strings: BTreeSet<Arc<str>>,
    hits: u64,
    saved_bytes: u64,
}

impl KeyInterner {
    /// Return the pooled equivalent of `key`: the canonical `Arc` if the
    /// string was seen before (the duplicate is dropped), `key` itself —
    /// newly pooled — otherwise. Non-string keys pass through untouched.
    pub fn intern(&mut self, key: Key) -> Key {
        match key {
            Key::Str(s) => {
                if let Some(existing) = self.strings.get(&*s) {
                    if !Arc::ptr_eq(existing, &s) {
                        self.hits += 1;
                        self.saved_bytes += s.len() as u64;
                    }
                    Key::Str(Arc::clone(existing))
                } else {
                    self.strings.insert(Arc::clone(&s));
                    Key::Str(s)
                }
            }
            other => other,
        }
    }

    /// Number of distinct string keys pooled.
    pub fn unique_keys(&self) -> usize {
        self.strings.len()
    }

    /// Bytes held by the pool itself (sum of distinct key lengths).
    pub fn resident_bytes(&self) -> u64 {
        self.strings.iter().map(|s| s.len() as u64).sum()
    }

    /// Lookups that found an existing (non-identical) allocation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative bytes of duplicate key allocations avoided: each hit frees
    /// the incoming copy of the key once the caller drops it.
    pub fn saved_bytes(&self) -> u64 {
        self.saved_bytes
    }
}

/// The state owned by one worker/partition: every entity instance whose key
/// hashes to this partition, across all operators.
#[derive(Debug, Clone, Default)]
pub struct PartitionState {
    entities: BTreeMap<EntityAddr, EntityState>,
    /// Entities written since the last snapshot.
    dirty: BTreeSet<EntityAddr>,
    /// Entities removed since the last snapshot.
    tombstones: BTreeSet<EntityAddr>,
    /// Pool of this partition's hot string keys (see [`KeyInterner`]).
    interner: KeyInterner,
    /// Optional race-detector attachment (see [`PartitionState::arm_monitor`]).
    hook: MonitorHook,
}

impl PartialEq for PartitionState {
    fn eq(&self, other: &Self) -> bool {
        // Equality is by contents; dirty/tombstone bookkeeping is relative to
        // the last snapshot, not part of the logical state.
        self.entities == other.entities
    }
}

impl PartitionState {
    /// Create an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a race monitor: every subsequent read/write of this partition
    /// reports to it as [`racecheck::Resource::Partition`]`(partition)` on
    /// the calling thread's registered role. A partition deserialized by
    /// [`PartitionState::from_bytes`] comes back unarmed — the adopting
    /// worker re-arms it (the bytes themselves crossed a stamped channel).
    pub fn arm_monitor(&mut self, monitor: Arc<racecheck::Monitor>, partition: usize) {
        self.hook
            .arm(monitor, racecheck::Resource::Partition(partition));
    }

    /// Install (or overwrite) an entity instance. String keys are interned:
    /// the stored address shares this partition's pooled allocation.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        self.hook.write("PartitionState::put");
        let addr = self.intern_addr(addr);
        self.tombstones.remove(&addr);
        if !self.dirty.contains(&addr) {
            self.dirty.insert(addr.clone());
        }
        self.entities.insert(addr, state);
    }

    /// Swap a string-keyed address for one sharing the partition's pooled
    /// key allocation (see [`KeyInterner`]). The hot-path use is interning an
    /// ingress call's freshly allocated target key before executing against
    /// it, so repeated calls on a hot key cost refcount bumps, not duplicate
    /// string allocations. Non-string keys pass through untouched.
    pub fn intern_addr(&mut self, addr: EntityAddr) -> EntityAddr {
        match addr.key() {
            Key::Str(_) => {
                let key = self.interner.intern(addr.key().clone());
                EntityAddr::from_ids(addr.class, key)
            }
            _ => addr,
        }
    }

    /// This partition's key pool and its hit/savings counters.
    pub fn key_interner(&self) -> &KeyInterner {
        &self.interner
    }

    /// Remove and return the state of an entity instance.
    pub fn take(&mut self, addr: &EntityAddr) -> Option<EntityState> {
        self.hook.write("PartitionState::take");
        let removed = self.entities.remove(addr);
        if removed.is_some() {
            self.dirty.remove(addr);
            self.tombstones.insert(addr.clone());
        }
        removed
    }

    /// Read-only access to an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.hook.read("PartitionState::get");
        self.entities.get(addr)
    }

    /// Mutable access to an entity instance (marks it dirty).
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        self.hook.write("PartitionState::get_mut");
        if !self.entities.contains_key(addr) {
            return None;
        }
        // Clone the address into the dirty set only on the first write since
        // the last snapshot — hot entities stay allocation-free per access.
        if !self.dirty.contains(addr) {
            self.dirty.insert(addr.clone());
        }
        self.entities.get_mut(addr)
    }

    /// Run `f` against an entity's state **in place**, marking the entity
    /// dirty only if `f` actually wrote a field (checked through the state's
    /// O(1) write marker, which is cleared before `f` runs).
    ///
    /// This is the per-hop execution path of the sharded runtime: a worker
    /// thread owns its partition outright, so a hop can execute directly on
    /// the stored state — no per-hop clone — while read-only invocations
    /// still stay out of the dirty set and keep delta snapshots proportional
    /// to the write set. Returns `None` (without calling `f`) if the entity
    /// does not exist.
    pub fn update_with<R>(
        &mut self,
        addr: &EntityAddr,
        f: impl FnOnce(&mut EntityState) -> R,
    ) -> Option<R> {
        self.hook.write("PartitionState::update_with");
        let state = self.entities.get_mut(addr)?;
        state.clear_written();
        let result = f(state);
        if state.was_written() && !self.dirty.contains(addr) {
            self.dirty.insert(addr.clone());
        }
        Some(result)
    }

    /// True if the instance exists.
    pub fn contains(&self, addr: &EntityAddr) -> bool {
        self.entities.contains_key(addr)
    }

    /// Number of entity instances.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if the partition holds no instances.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Number of entities written since the last snapshot.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Iterate over all instances.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityAddr, &EntityState)> {
        self.hook.read("PartitionState::iter");
        self.entities.iter()
    }

    /// Approximate serialized size of the partition in bytes (addresses are
    /// fixed-width class ids + keys under the v2 codec).
    pub fn approx_size(&self) -> usize {
        self.entities
            .iter()
            .map(|(addr, state)| {
                4 + key_size(addr.key())
                    + state
                        .iter()
                        .map(|(f, v)| f.len() + v.approx_size())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Serialize the complete partition (binary, without touching the dirty
    /// set — use [`PartitionState::snapshot_full`] at epoch boundaries).
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(KIND_FULL, self.entities.iter(), &[])
    }

    /// Restore from bytes produced by [`PartitionState::to_bytes`] or
    /// [`PartitionState::snapshot_full`]. The restored partition is clean
    /// (nothing dirty).
    pub fn from_bytes(bytes: &[u8]) -> CodecResult<Self> {
        let (kind, entities, tombstones) = decode(bytes)?;
        if kind != KIND_FULL {
            return Err(CodecError::new(
                "expected a full snapshot, found a delta (apply it with apply_delta)",
            ));
        }
        if !tombstones.is_empty() {
            return Err(CodecError::new(
                "malformed full snapshot: carries tombstones",
            ));
        }
        Ok(PartitionState {
            entities,
            dirty: BTreeSet::new(),
            tombstones: BTreeSet::new(),
            interner: KeyInterner::default(),
            hook: MonitorHook::default(),
        })
    }

    /// Capture a full snapshot and re-base: the dirty set is cleared, so the
    /// next [`PartitionState::snapshot_delta`] is relative to this capture.
    pub fn snapshot_full(&mut self) -> Vec<u8> {
        self.hook.write("PartitionState::snapshot_full");
        self.dirty.clear();
        self.tombstones.clear();
        encode(KIND_FULL, self.entities.iter(), &[])
    }

    /// Capture only the entities written (and removed) since the previous
    /// snapshot, then clear the dirty set.
    pub fn snapshot_delta(&mut self) -> Vec<u8> {
        self.hook.write("PartitionState::snapshot_delta");
        let dirty_entities = self
            .dirty
            .iter()
            .filter_map(|addr| self.entities.get(addr).map(|s| (addr, s)));
        let tombstones: Vec<EntityAddr> = self.tombstones.iter().cloned().collect();
        let bytes = encode(KIND_DELTA, dirty_entities, &tombstones);
        self.dirty.clear();
        self.tombstones.clear();
        bytes
    }

    /// Apply a delta produced by [`PartitionState::snapshot_delta`] on top of
    /// this partition (recovery path).
    pub fn apply_delta(&mut self, bytes: &[u8]) -> CodecResult<()> {
        self.hook.write("PartitionState::apply_delta");
        let (kind, entities, tombstones) = decode(bytes)?;
        if kind != KIND_DELTA {
            return Err(CodecError::new(
                "expected a delta snapshot, found a full one",
            ));
        }
        for (addr, state) in entities {
            self.entities.insert(addr, state);
        }
        for addr in tombstones {
            self.entities.remove(&addr);
        }
        Ok(())
    }

    /// Capture the complete partition into a [`SnapshotCapture`] **without
    /// encoding** and re-base (the dirty set is cleared, exactly like
    /// [`PartitionState::snapshot_full`]). Entity values are `Arc`-shared, so
    /// this is a refcount walk, not a deep copy.
    pub fn capture_full(&mut self) -> SnapshotCapture {
        self.hook.write("PartitionState::capture_full");
        self.dirty.clear();
        self.tombstones.clear();
        SnapshotCapture {
            kind: SnapshotKind::Full,
            entities: self
                .entities
                .iter()
                .map(|(a, s)| (a.clone(), s.clone()))
                .collect(),
            tombstones: Vec::new(),
        }
    }

    /// Capture only the entities written (and removed) since the previous
    /// capture/snapshot into a [`SnapshotCapture`] without encoding, then
    /// clear the dirty set — the next delta re-bases on this cut whether or
    /// not its bytes have been materialized yet.
    pub fn capture_delta(&mut self) -> SnapshotCapture {
        self.hook.write("PartitionState::capture_delta");
        let entities = self
            .dirty
            .iter()
            .filter_map(|addr| self.entities.get(addr).map(|s| (addr.clone(), s.clone())))
            .collect();
        let tombstones: Vec<EntityAddr> = self.tombstones.iter().cloned().collect();
        self.dirty.clear();
        self.tombstones.clear();
        SnapshotCapture {
            kind: SnapshotKind::Delta,
            entities,
            tombstones,
        }
    }
}

/// A copy-on-write snapshot cut: the captured entities' values at barrier
/// time, held in decoded form so the (comparatively expensive) encoding can
/// run later, off the runtime's quiescent point. Values inside are
/// `Arc`-shared with the live partition — a subsequent write to the live
/// entity replaces its slot value, it never mutates the shared payload — so
/// the capture stays a consistent cut at zero copy cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotCapture {
    kind: SnapshotKind,
    entities: Vec<(EntityAddr, EntityState)>,
    tombstones: Vec<EntityAddr>,
}

impl SnapshotCapture {
    /// Whether this capture is a full partition cut or a dirty delta.
    pub fn kind(&self) -> SnapshotKind {
        self.kind
    }

    /// Number of entity records in the capture.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of tombstones in the capture.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Materialize the capture through the exact-size encoder. Byte-for-byte
    /// identical to what the eager `snapshot_*` method would have produced at
    /// capture time.
    pub fn encode(&self) -> Vec<u8> {
        let kind = match self.kind {
            SnapshotKind::Full => KIND_FULL,
            SnapshotKind::Delta => KIND_DELTA,
        };
        encode(
            kind,
            self.entities.iter().map(|(a, s)| (a, s)),
            &self.tombstones,
        )
    }
}

/// Process-wide codec invocation counters, for *structural* cost pins: a test
/// can assert that an operation performs O(dirty set) codec work — or none at
/// all — without depending on machine timings (the same idea as the counting
/// allocator in `tests/codec_alloc.rs`). Counters only ever increase; callers
/// measure deltas. Relaxed atomics: the counts are statistics, not
/// synchronization.
pub mod codec_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static ENCODE_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static ENCODED_ENTITIES: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DECODE_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DECODED_ENTITIES: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time reading of the codec counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CodecStats {
        /// Snapshot encodes performed since process start.
        pub encode_calls: u64,
        /// Entity records written across all encodes.
        pub encoded_entities: u64,
        /// Snapshot decodes performed since process start.
        pub decode_calls: u64,
        /// Entity records read across all decodes.
        pub decoded_entities: u64,
    }

    impl CodecStats {
        /// Counter-wise difference `self - earlier`.
        pub fn since(&self, earlier: &CodecStats) -> CodecStats {
            CodecStats {
                encode_calls: self.encode_calls - earlier.encode_calls,
                encoded_entities: self.encoded_entities - earlier.encoded_entities,
                decode_calls: self.decode_calls - earlier.decode_calls,
                decoded_entities: self.decoded_entities - earlier.decoded_entities,
            }
        }
    }

    /// Read the current counters.
    pub fn current() -> CodecStats {
        CodecStats {
            encode_calls: ENCODE_CALLS.load(Ordering::Relaxed),
            encoded_entities: ENCODED_ENTITIES.load(Ordering::Relaxed),
            decode_calls: DECODE_CALLS.load(Ordering::Relaxed),
            decoded_entities: DECODED_ENTITIES.load(Ordering::Relaxed),
        }
    }
}

/// Encode a snapshot: header, class dictionary, layout dictionary, entity
/// records, tombstones. Each distinct class *name* is written exactly once
/// (numeric [`ClassId`]s are process-local, so the wire format carries names
/// in the dictionary and `u32` dictionary indices everywhere else).
///
/// Two passes: the first builds the dictionaries and sums exact record sizes
/// (see `binary::value_len` and friends), the second writes everything into
/// **one exactly-sized buffer**. The earlier single-pass encoder grew a
/// transient `records` vector by doubling and then copied it into the output
/// — for a 50 KB entity that meant a 64 KB+ doubling allocation crossing the
/// allocator's mmap threshold and a fresh page-faulted mapping per snapshot
/// (the "50 KB codec anomaly": state access 6 µs → 15 µs). The exact-size
/// pass performs one heap allocation per snapshot, of the final length.
fn encode<'a>(
    kind: u8,
    entities: impl Iterator<Item = (&'a EntityAddr, &'a EntityState)>,
    tombstones: &[EntityAddr],
) -> Vec<u8> {
    use stateful_entities::binary::{key_len, layout_len, str_len, value_len};
    use std::sync::atomic::Ordering;

    let entities: Vec<(&EntityAddr, &EntityState)> = entities.collect();
    codec_stats::ENCODE_CALLS.fetch_add(1, Ordering::Relaxed);
    codec_stats::ENCODED_ENTITIES.fetch_add(entities.len() as u64, Ordering::Relaxed);
    let mut classes: Vec<ClassId> = Vec::new();
    let class_idx = |classes: &mut Vec<ClassId>, class: ClassId| -> u32 {
        match classes.iter().position(|c| *c == class) {
            Some(i) => i as u32,
            None => {
                classes.push(class);
                (classes.len() - 1) as u32
            }
        }
    };

    // Pass 1: dictionaries + exact byte counts.
    let mut layouts: Vec<&FieldLayout> = Vec::new();
    let mut records_size = 0usize;
    for (addr, state) in &entities {
        class_idx(&mut classes, addr.class);
        // Dictionary lookup: pointer identity first (all instances of a class
        // share one Arc), content equality as the ad-hoc-state fallback.
        let layout: &'a FieldLayout = state.layout();
        if !layouts
            .iter()
            .any(|l| std::ptr::eq(*l, layout) || *l == layout)
        {
            layouts.push(layout);
        }
        records_size +=
            4 + key_len(addr.key()) + 4 + state.slots().iter().map(value_len).sum::<usize>();
    }
    let mut tomb_size = 0usize;
    for addr in tombstones {
        class_idx(&mut classes, addr.class);
        tomb_size += 4 + key_len(addr.key());
    }
    let total = 2 // version + kind
        + 4 + classes.iter().map(|c| str_len(c.name())).sum::<usize>()
        + 4 + layouts.iter().map(|l| layout_len(l)).sum::<usize>()
        + 4 + records_size
        + 4 + tomb_size;

    // Pass 2: write into the single exactly-sized buffer.
    let mut out = Vec::with_capacity(total);
    out.push(SNAPSHOT_VERSION);
    out.push(kind);
    put_u32(&mut out, classes.len() as u32);
    for class in &classes {
        put_str(&mut out, class.name());
    }
    put_u32(&mut out, layouts.len() as u32);
    for layout in &layouts {
        put_layout(&mut out, layout);
    }
    put_u32(&mut out, entities.len() as u32);
    for (addr, state) in &entities {
        put_u32(&mut out, class_idx(&mut classes, addr.class));
        put_key(&mut out, addr.key());
        let layout: &'a FieldLayout = state.layout();
        let idx = layouts
            .iter()
            .position(|l| std::ptr::eq(*l, layout) || *l == layout)
            .expect("pass 1 registered every layout");
        put_u32(&mut out, idx as u32);
        for value in state.slots() {
            put_value(&mut out, value);
        }
    }
    put_u32(&mut out, tombstones.len() as u32);
    for addr in tombstones {
        put_u32(&mut out, class_idx(&mut classes, addr.class));
        put_key(&mut out, addr.key());
    }
    debug_assert_eq!(out.len(), total, "exact-size accounting must be exact");
    out
}

/// A decoded snapshot image: the entity map plus tombstones, with the kind
/// made explicit. This is the consumer-facing view of the codec — the
/// service tier's read view and CDC egress decode sealed epoch bytes with
/// it instead of re-implementing the wire format.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// Full partition image or dirty-set delta.
    pub kind: SnapshotKind,
    /// Decoded entities (for a delta: exactly the dirty set of the cut).
    pub entities: BTreeMap<EntityAddr, EntityState>,
    /// Entities deleted since the previous cut (always empty for a full).
    pub tombstones: Vec<EntityAddr>,
}

/// Decode any snapshot payload (full or delta) into a [`DecodedImage`].
pub fn decode_snapshot(bytes: &[u8]) -> CodecResult<DecodedImage> {
    let (kind, entities, tombstones) = decode(bytes)?;
    let kind = if kind == KIND_FULL {
        SnapshotKind::Full
    } else {
        // decode() rejects anything other than KIND_FULL / KIND_DELTA.
        SnapshotKind::Delta
    };
    Ok(DecodedImage {
        kind,
        entities,
        tombstones,
    })
}

type DecodedSnapshot = (u8, BTreeMap<EntityAddr, EntityState>, Vec<EntityAddr>);

fn decode(bytes: &[u8]) -> CodecResult<DecodedSnapshot> {
    codec_stats::DECODE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let input = &mut &bytes[..];
    let header: &[u8] = {
        if input.len() < 2 {
            return Err(CodecError::new("snapshot too short for header"));
        }
        let (h, rest) = input.split_at(2);
        *input = rest;
        h
    };
    if header[0] != SNAPSHOT_VERSION {
        return Err(CodecError::new(format!(
            "unsupported snapshot version {}",
            header[0]
        )));
    }
    let kind = header[1];
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(CodecError::new(format!("invalid snapshot kind {kind}")));
    }

    // Parse the class dictionary as plain strings first: interning happens
    // only after the *whole* snapshot has decoded successfully, and only for
    // names the records actually reference — corrupt or hostile bytes must
    // never grow the process-global (never-pruned) interner.
    let class_count = get_u32(input)? as usize;
    if class_count > input.len() / 4 + 1 {
        return Err(CodecError::new(format!(
            "class dictionary claims {class_count} entries, input too short"
        )));
    }
    let mut class_names: Vec<String> = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        class_names.push(get_str(input)?);
    }
    let check_idx = |idx: usize| -> CodecResult<usize> {
        if idx < class_names.len() {
            Ok(idx)
        } else {
            Err(CodecError::new(format!("bad class index {idx}")))
        }
    };

    let layout_count = get_u32(input)? as usize;
    let mut layouts: Vec<Arc<FieldLayout>> = Vec::with_capacity(layout_count.min(1 << 12));
    for _ in 0..layout_count {
        layouts.push(Arc::new(get_layout(input)?));
    }

    let entity_count = get_u32(input)? as usize;
    codec_stats::DECODED_ENTITIES
        .fetch_add(entity_count as u64, std::sync::atomic::Ordering::Relaxed);
    let mut raw_entities: Vec<(usize, Key, EntityState)> =
        Vec::with_capacity(entity_count.min(1 << 16));
    for _ in 0..entity_count {
        let class_idx = check_idx(get_u32(input)? as usize)?;
        let key = get_key(input)?;
        let layout_idx = get_u32(input)? as usize;
        let layout = layouts
            .get(layout_idx)
            .ok_or_else(|| CodecError::new(format!("bad layout index {layout_idx}")))?
            .clone();
        let mut slots = Vec::with_capacity(layout.len());
        for _ in 0..layout.len() {
            slots.push(get_value(input)?);
        }
        raw_entities.push((class_idx, key, EntityState::from_parts(layout, slots)));
    }

    let tombstone_count = get_u32(input)? as usize;
    let mut raw_tombstones: Vec<(usize, Key)> = Vec::with_capacity(tombstone_count.min(1 << 16));
    for _ in 0..tombstone_count {
        let class_idx = check_idx(get_u32(input)? as usize)?;
        let key = get_key(input)?;
        raw_tombstones.push((class_idx, key));
    }
    if !input.is_empty() {
        return Err(CodecError::new(format!(
            "{} trailing bytes after snapshot",
            input.len()
        )));
    }

    // The snapshot is structurally valid: intern referenced names (memoised
    // per dictionary slot) and materialise the addresses.
    let mut interned: Vec<Option<ClassId>> = vec![None; class_names.len()];
    let mut class_at = |idx: usize| -> ClassId {
        *interned[idx].get_or_insert_with(|| ClassId::intern(&class_names[idx]))
    };
    let mut entities = BTreeMap::new();
    for (class_idx, key, state) in raw_entities {
        entities.insert(EntityAddr::from_ids(class_at(class_idx), key), state);
    }
    let tombstones = raw_tombstones
        .into_iter()
        .map(|(class_idx, key)| EntityAddr::from_ids(class_at(class_idx), key))
        .collect();
    Ok((kind, entities, tombstones))
}

/// Fold an ordered (oldest-first) chain of delta snapshots into one merged
/// delta, decoding each input once and encoding once. Applying the result is
/// equivalent to applying the inputs in order:
/// `final = (((base + A) − tombA) + B) − tombB …`, so the merged delta is
/// `entities = (A ∪ B ∪ …, later wins) − later tombstones` and
/// `tombstones = (earlier tombs − later entity keys) ∪ later tombs` —
/// entity sets and tombstones stay disjoint.
fn fold_delta_bytes<'a>(deltas: impl Iterator<Item = &'a [u8]>) -> CodecResult<Vec<u8>> {
    let mut entities: BTreeMap<EntityAddr, EntityState> = BTreeMap::new();
    let mut tombs: BTreeSet<EntityAddr> = BTreeSet::new();
    for bytes in deltas {
        let (kind, delta_entities, delta_tombs) = decode(bytes)?;
        if kind != KIND_DELTA {
            return Err(CodecError::new("can only merge delta snapshots"));
        }
        for (addr, state) in delta_entities {
            tombs.remove(&addr);
            entities.insert(addr, state);
        }
        for addr in delta_tombs {
            entities.remove(&addr);
            tombs.insert(addr);
        }
    }
    let tombs: Vec<EntityAddr> = tombs.into_iter().collect();
    Ok(encode(KIND_DELTA, entities.iter(), &tombs))
}

fn key_size(key: &Key) -> usize {
    match key {
        Key::Int(_) => 8,
        Key::Str(s) => s.len() + 8,
    }
}

/// A partitioned state store: `partitions` instances of [`PartitionState`],
/// with routing by the entity key's stable hash — mirroring how the paper
/// partitions operator state across parallel instances using `__key__`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateStore {
    partitions: Vec<PartitionState>,
}

impl StateStore {
    /// Create a store with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        StateStore {
            partitions: vec![PartitionState::new(); partitions],
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Which partition a key belongs to.
    pub fn partition_of(&self, key: &Key) -> usize {
        key.partition(self.partitions.len())
    }

    /// Which partition an address belongs to (uses the hash cached in the
    /// address — no key bytes are re-walked).
    #[inline]
    pub fn partition_of_addr(&self, addr: &EntityAddr) -> usize {
        addr.partition(self.partitions.len())
    }

    /// Access one partition.
    pub fn partition(&self, idx: usize) -> &PartitionState {
        &self.partitions[idx]
    }

    /// Mutable access to one partition.
    pub fn partition_mut(&mut self, idx: usize) -> &mut PartitionState {
        &mut self.partitions[idx]
    }

    /// Install an entity instance in the right partition.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        let idx = self.partition_of_addr(&addr);
        self.partitions[idx].put(addr, state);
    }

    /// Read an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.partitions[self.partition_of_addr(addr)].get(addr)
    }

    /// Mutably access an entity instance (marks it dirty in its partition).
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        let idx = self.partition_of_addr(addr);
        self.partitions[idx].get_mut(addr)
    }

    /// Total number of entity instances across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(PartitionState::len).sum()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one field of one entity (dashboard/test helper).
    pub fn read_field(&self, addr: &EntityAddr, field: &str) -> Option<Value> {
        self.get(addr).and_then(|s| s.get(field).cloned())
    }
}

/// A snapshot of one partition at an epoch boundary, together with the source
/// offsets that had been fully processed when the snapshot was taken — the
/// pair is what makes recovery exactly-once: restore the state, rewind the
/// replayable source to the recorded offsets, and re-process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Epoch this snapshot terminates.
    pub epoch: EpochId,
    /// Partition index.
    pub partition: usize,
    /// Full capture or dirty delta.
    pub kind: SnapshotKind,
    /// Binary-encoded partition state (full) or dirty delta.
    pub state: Vec<u8>,
    /// Source offsets processed (exclusive) per source partition.
    pub source_offsets: BTreeMap<usize, u64>,
}

/// The decoded merged delta of one partition's chain (amortized compaction):
/// every delta sealed since the partition's newest full anchor, folded
/// together in decoded form. Folding a newly sealed delta costs one decode of
/// *that* delta plus O(its dirty set) map inserts — never a re-encode of the
/// accumulated merge. Bytes are produced lazily on request and cached.
#[derive(Debug, Clone, Default, PartialEq)]
struct FoldedDelta {
    /// Epoch of the newest delta folded in (`None` = empty chain).
    epoch: Option<EpochId>,
    entities: BTreeMap<EntityAddr, EntityState>,
    tombstones: BTreeSet<EntityAddr>,
    /// Lazily cached encoding of the merged delta (invalidated by each fold).
    encoded: Option<Vec<u8>>,
}

impl FoldedDelta {
    fn clear(&mut self) {
        self.epoch = None;
        self.entities.clear();
        self.tombstones.clear();
        self.encoded = None;
    }

    /// Fold one decoded delta (sealed at `epoch`) on top of the merge —
    /// same later-wins / tombstone ordering as [`fold_delta_bytes`].
    fn fold(
        &mut self,
        epoch: EpochId,
        entities: BTreeMap<EntityAddr, EntityState>,
        tombstones: Vec<EntityAddr>,
    ) {
        for (addr, state) in entities {
            self.tombstones.remove(&addr);
            self.entities.insert(addr, state);
        }
        for addr in tombstones {
            self.entities.remove(&addr);
            self.tombstones.insert(addr);
        }
        self.epoch = Some(epoch);
        self.encoded = None;
    }
}

/// Stores snapshots per epoch, with an explicit **pending → sealed** epoch
/// lifecycle. A snapshot arrives per partition ([`SnapshotStore::add`]); an
/// epoch **seals** once every expected partition has reported *and* every
/// older epoch has sealed (cut order — a newer consistent cut cannot become
/// the recovery point while an older one is still materializing). Only sealed
/// epochs are recovery points; see [`SnapshotStore::latest_sealed_epoch`].
///
/// A store built with [`SnapshotStore::new_amortized`] additionally keeps
/// each partition's post-anchor delta chain folded in decoded form (see
/// [`FoldedDelta`]), bounding both recovery replay depth (full + at most one
/// merged delta) and per-epoch compaction work (O(that epoch's dirty set)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStore {
    /// Sealed epochs' snapshots. In amortized mode this holds only full
    /// anchors (and any delta that failed to decode at seal time, kept raw so
    /// recovery surfaces the corruption); healthy deltas are folded away.
    snapshots: BTreeMap<EpochId, BTreeMap<usize, Snapshot>>,
    /// Arrived-but-unsealed snapshots per epoch (async captures in flight).
    /// An entry may be empty: [`SnapshotStore::begin_epoch`] announces a cut
    /// before any bytes exist.
    pending: BTreeMap<EpochId, BTreeMap<usize, Snapshot>>,
    /// The authoritative set of sealed epochs (`snapshots` may hold no bytes
    /// for a sealed epoch whose deltas were all folded away).
    sealed: BTreeSet<EpochId>,
    /// Source offsets recorded per sealed epoch (survives delta folding).
    offsets: BTreeMap<EpochId, BTreeMap<usize, u64>>,
    expected_partitions: usize,
    /// Per-partition decoded merged delta — `Some` iff amortized mode.
    folded: Option<Vec<FoldedDelta>>,
    /// Deltas folded *into an existing merge* (i.e. merged away) so far.
    deltas_merged: u64,
    /// `(epoch, partition)` snapshots dropped from the store — by rollback
    /// truncation and by amortized anchor pruning — awaiting
    /// [`SnapshotStore::take_pruned`]. The durable tier drains this to
    /// delete the matching on-disk artifacts.
    pruned: Vec<(EpochId, usize)>,
    /// Optional race-detector attachment (see [`SnapshotStore::arm_monitor`]).
    hook: MonitorHook,
}

impl SnapshotStore {
    /// Create a store expecting `expected_partitions` partitions per epoch.
    /// Epochs seal as their snapshots arrive; delta chains stay as recorded
    /// (bound them after the fact with [`SnapshotStore::compact`]).
    pub fn new(expected_partitions: usize) -> Self {
        SnapshotStore {
            expected_partitions,
            ..SnapshotStore::default()
        }
    }

    /// Create a store with **amortized compaction**: each delta is folded
    /// into its partition's decoded merged delta the moment its epoch seals,
    /// and its raw bytes are dropped — the recovery chain is permanently
    /// `full anchor + at most one merged delta` at O(new dirty set) cost per
    /// epoch. The per-epoch captures between the anchor and the newest seal
    /// are not individually reconstructible (same granularity trade as
    /// [`SnapshotStore::compact`]).
    pub fn new_amortized(expected_partitions: usize) -> Self {
        SnapshotStore {
            expected_partitions,
            folded: Some(vec![FoldedDelta::default(); expected_partitions]),
            ..SnapshotStore::default()
        }
    }

    /// Attach a race monitor: every subsequent mutation of this store reports
    /// as a write to [`racecheck::Resource::SnapshotStore`] — a single-writer
    /// tripwire proving all snapshot bookkeeping stays on the coordinator's
    /// happens-before timeline.
    pub fn arm_monitor(&mut self, monitor: Arc<racecheck::Monitor>) {
        self.hook.arm(monitor, racecheck::Resource::SnapshotStore);
    }

    /// Announce an epoch whose cut has been taken but whose bytes are still
    /// being materialized. The epoch shows up as pending immediately, so a
    /// crash in the capture→encode window is visible: recovery ignores it
    /// and newer epochs cannot seal past it.
    pub fn begin_epoch(&mut self, epoch: EpochId) {
        self.hook.write("SnapshotStore::begin_epoch");
        if !self.sealed.contains(&epoch) {
            self.pending.entry(epoch).or_default();
        }
    }

    /// Record a partition snapshot for an epoch. Returns how many epochs this
    /// arrival sealed (0 while the epoch — or an older one — is still waiting
    /// on other partitions).
    ///
    /// A sealed epoch is immutable: a duplicate or late arrival for one is
    /// dropped. Without this guard a stray re-add would either park an
    /// unfillable entry at the head of the pending queue (blocking every
    /// future seal) or, in amortized mode, re-fold stale data over newer
    /// merged values.
    pub fn add(&mut self, snapshot: Snapshot) -> u64 {
        self.hook.write("SnapshotStore::add");
        if self.sealed.contains(&snapshot.epoch) {
            return 0;
        }
        self.pending
            .entry(snapshot.epoch)
            .or_default()
            .insert(snapshot.partition, snapshot);
        let mut sealed_now = 0;
        while let Some(entry) = self.pending.first_entry() {
            if entry.get().len() != self.expected_partitions {
                break;
            }
            let (epoch, parts) = self.pending.pop_first().expect("peeked first entry");
            self.seal(epoch, parts);
            sealed_now += 1;
        }
        sealed_now
    }

    /// Move one complete epoch from pending to sealed. In amortized mode
    /// deltas are folded (decoded) instead of stored, a full anchor retires
    /// the partition's older history, and per-epoch metadata (`sealed`,
    /// `offsets`) below the oldest surviving anchor is dropped — a
    /// long-running job's store stays O(live state), not O(epochs run).
    fn seal(&mut self, epoch: EpochId, parts: BTreeMap<usize, Snapshot>) {
        self.sealed.insert(epoch);
        if let Some(any) = parts.values().next() {
            self.offsets.insert(epoch, any.source_offsets.clone());
        }
        let Some(folded) = &mut self.folded else {
            self.snapshots.insert(epoch, parts);
            return;
        };
        for (partition, snap) in parts {
            let Some(chain) = folded.get_mut(partition) else {
                // Out-of-range partition (test-made store): keep it raw.
                self.snapshots
                    .entry(epoch)
                    .or_default()
                    .insert(partition, snap);
                continue;
            };
            match snap.kind {
                SnapshotKind::Full => {
                    // New anchor: the folded chain and every older capture of
                    // this partition are superseded.
                    chain.clear();
                    let pruned = &mut self.pruned;
                    self.snapshots.retain(|&e, epoch_parts| {
                        if e < epoch && epoch_parts.remove(&partition).is_some() {
                            pruned.push((e, partition));
                        }
                        !epoch_parts.is_empty()
                    });
                    self.snapshots
                        .entry(epoch)
                        .or_default()
                        .insert(partition, snap);
                }
                SnapshotKind::Delta => match decode(&snap.state) {
                    Ok((_, entities, tombstones)) => {
                        if chain.epoch.is_some() {
                            self.deltas_merged += 1;
                        }
                        chain.fold(epoch, entities, tombstones);
                    }
                    // An undecodable delta is kept raw: folding would mask
                    // the corruption, while reconstruction through the raw
                    // chain surfaces the decode error with full context.
                    Err(_) => {
                        self.snapshots
                            .entry(epoch)
                            .or_default()
                            .insert(partition, snap);
                    }
                },
            }
        }
        // Nothing below the oldest surviving stored epoch (every partition's
        // anchor is at or above it) is reconstructible any more; drop the
        // matching sealed/offsets entries so metadata cannot grow one entry
        // per epoch forever. The latest sealed epoch always survives: it is
        // >= every anchor.
        if let Some((&oldest_stored, _)) = self.snapshots.first_key_value() {
            self.sealed = self.sealed.split_off(&oldest_stored);
            self.offsets = self.offsets.split_off(&oldest_stored);
        }
    }

    /// The newest **sealed** epoch — the epoch a recovering job rolls back
    /// to, if any. An epoch with bytes still in flight (or any older epoch
    /// unsealed) never qualifies.
    pub fn latest_sealed_epoch(&self) -> Option<EpochId> {
        self.sealed.last().copied()
    }

    /// Whether `epoch` has sealed (every partition's bytes arrived, all older
    /// epochs sealed).
    pub fn is_sealed(&self, epoch: EpochId) -> bool {
        self.sealed.contains(&epoch)
    }

    /// Number of epochs announced or partially arrived but not yet sealed.
    pub fn unsealed_epochs(&self) -> usize {
        self.pending.len()
    }

    /// Source offsets recorded when `epoch` sealed (available even after its
    /// deltas were folded away).
    pub fn epoch_offsets(&self, epoch: EpochId) -> Option<&BTreeMap<usize, u64>> {
        self.offsets.get(&epoch)
    }

    /// All stored partition snapshots of a sealed epoch. In amortized mode
    /// folded deltas are gone — only anchors (and corrupt leftovers) remain.
    pub fn epoch(&self, epoch: EpochId) -> Option<&BTreeMap<usize, Snapshot>> {
        self.snapshots.get(&epoch)
    }

    /// Number of epochs tracked: sealed plus pending.
    pub fn epoch_count(&self) -> usize {
        self.sealed.len() + self.pending.len()
    }

    /// Deltas merged away so far — by [`SnapshotStore::compact`] runs and/or
    /// amortized folds into a non-empty merge.
    pub fn deltas_merged(&self) -> u64 {
        self.deltas_merged
    }

    /// Total bytes held across sealed and pending snapshots (decoded folded
    /// state is not bytes and is not counted).
    pub fn total_bytes(&self) -> usize {
        self.snapshots
            .values()
            .chain(self.pending.values())
            .flat_map(|parts| parts.values())
            .map(|s| s.state.len())
            .sum()
    }

    /// Rebuild `partition`'s state as of a **sealed** `epoch`: the latest
    /// full snapshot at-or-before `epoch`, plus every delta after it up to
    /// `epoch`, applied in order. Pending (unsealed) arrivals are never
    /// consulted — an epoch whose bytes are still in flight must not leak
    /// into a recovery image. In amortized mode the partition's decoded
    /// merged delta substitutes for the folded raw chain, applied directly
    /// with no codec round-trip.
    ///
    /// Returns `Ok(None)` if no full snapshot anchors the chain, and `Err`
    /// if a snapshot in the chain fails to decode (or the requested epoch's
    /// history was folded past) — corruption must stay distinguishable from
    /// a merely missing anchor.
    pub fn reconstruct(
        &self,
        partition: usize,
        epoch: EpochId,
    ) -> CodecResult<Option<PartitionState>> {
        let mut deltas: Vec<&Snapshot> = Vec::new();
        let mut base: Option<&Snapshot> = None;
        for (_, parts) in self.snapshots.range(..=epoch).rev() {
            let Some(snap) = parts.get(&partition) else {
                // This epoch has no capture for the partition (e.g. it was
                // recorded by a test, not the runtime loop); it contributes
                // nothing to the chain.
                continue;
            };
            match snap.kind {
                SnapshotKind::Full => {
                    base = Some(snap);
                    break;
                }
                SnapshotKind::Delta => deltas.push(snap),
            }
        }
        let Some(base) = base else {
            return Ok(None);
        };
        let mut state = PartitionState::from_bytes(&base.state)?;
        // Amortized mode: the decoded merge covers (anchor, folded.epoch].
        // Raw deltas can coexist only as corrupt leftovers kept at seal time;
        // applying them below will surface the decode error.
        if let Some(chain) = self.folded.as_ref().and_then(|f| f.get(partition)) {
            if let Some(folded_epoch) = chain.epoch {
                if folded_epoch > epoch {
                    return Err(CodecError::new(format!(
                        "partition {partition}'s history at epoch {epoch} was \
                         folded away (merged delta covers up to {folded_epoch})"
                    )));
                }
                for (addr, entity) in &chain.entities {
                    state.entities.insert(addr.clone(), entity.clone());
                }
                for addr in &chain.tombstones {
                    state.entities.remove(addr);
                }
            }
        }
        for snap in deltas.iter().rev() {
            state.apply_delta(&snap.state)?;
        }
        Ok(Some(state))
    }

    /// Drop every snapshot recorded for an epoch newer than `epoch` — sealed
    /// **and pending**: a crash in the capture→encode window leaves partial
    /// arrivals for epochs that will be re-cut by the recovered timeline, and
    /// a stale arrival left behind would corrupt the chain (a delta re-taken
    /// at epoch `e+1` must re-base on the *recovered* `e`, not mix with
    /// captures from the failed timeline).
    ///
    /// Callers in amortized mode must truncate at the latest sealed epoch
    /// (the only recovery point) — a folded merge cannot be unfolded to an
    /// older epoch.
    ///
    /// Returns the number of partition snapshots dropped (pending ones
    /// included).
    pub fn truncate_after(&mut self, epoch: EpochId) -> usize {
        self.hook.write("SnapshotStore::truncate_after");
        if let Some(folded) = &self.folded {
            debug_assert!(
                folded
                    .iter()
                    .all(|chain| chain.epoch.is_none_or(|fe| fe <= epoch)),
                "amortized truncation below the folded merge loses history"
            );
        }
        let stale = self.snapshots.split_off(&(epoch + 1));
        let stale_pending = self.pending.split_off(&(epoch + 1));
        self.sealed.split_off(&(epoch + 1));
        self.offsets.split_off(&(epoch + 1));
        for (&e, parts) in &stale {
            for &p in parts.keys() {
                self.pruned.push((e, p));
            }
        }
        stale.values().map(|parts| parts.len()).sum::<usize>()
            + stale_pending
                .values()
                .map(|parts| parts.len())
                .sum::<usize>()
    }

    /// Drain the `(epoch, partition)` pairs whose snapshots were dropped from
    /// the in-memory store since the last call — by
    /// [`SnapshotStore::truncate_after`] (rollback) and by the amortized
    /// store's anchor pruning at seal time. A durable backend mirrors these
    /// as deletions of the corresponding on-disk files; leaving them behind
    /// on rollback would leak disk forever.
    pub fn take_pruned(&mut self) -> Vec<(EpochId, usize)> {
        std::mem::take(&mut self.pruned)
    }

    /// Number of delta snapshots [`SnapshotStore::reconstruct`] would apply
    /// on top of the full anchor to rebuild `partition` at `epoch` — i.e.
    /// the recovery replay depth. [`SnapshotStore::compact`] (after the
    /// fact) and amortized folding (continuously) both exist to bound this
    /// at 1 regardless of the rebase cadence; the sharded runtime asserts
    /// that invariant after every barrier.
    pub fn delta_chain_len(&self, partition: usize, epoch: EpochId) -> usize {
        let mut deltas = 0usize;
        for (_, parts) in self.snapshots.range(..=epoch).rev() {
            let Some(snap) = parts.get(&partition) else {
                continue;
            };
            match snap.kind {
                SnapshotKind::Full => break,
                SnapshotKind::Delta => deltas += 1,
            }
        }
        if let Some(chain) = self.folded.as_ref().and_then(|f| f.get(partition)) {
            if chain.epoch.is_some_and(|fe| fe <= epoch) {
                deltas += 1;
            }
        }
        deltas
    }

    /// The raw stored chain [`SnapshotStore::reconstruct`] would read for
    /// `partition` at `epoch`, oldest first: the full anchor, then every raw
    /// delta after it. A durable backend uploads exactly these files (plus
    /// the amortized merge from [`SnapshotStore::merged_delta_bytes`], which
    /// is not a stored snapshot and is never listed here). Empty when no full
    /// snapshot anchors the chain.
    pub fn chain_epochs(&self, partition: usize, epoch: EpochId) -> Vec<(EpochId, SnapshotKind)> {
        let mut chain: Vec<(EpochId, SnapshotKind)> = Vec::new();
        for (&e, parts) in self.snapshots.range(..=epoch).rev() {
            let Some(snap) = parts.get(&partition) else {
                continue;
            };
            chain.push((e, snap.kind));
            if snap.kind == SnapshotKind::Full {
                chain.reverse();
                return chain;
            }
        }
        Vec::new()
    }

    /// The encoded bytes of `partition`'s merged delta (amortized mode),
    /// materialized lazily on first request and cached until the next fold.
    /// `None` when the store is not amortized or the partition's chain is
    /// empty (anchor only).
    pub fn merged_delta_bytes(&mut self, partition: usize) -> Option<&[u8]> {
        let chain = self.folded.as_mut()?.get_mut(partition)?;
        chain.epoch?;
        if chain.encoded.is_none() {
            let tombs: Vec<EntityAddr> = chain.tombstones.iter().cloned().collect();
            chain.encoded = Some(encode(KIND_DELTA, chain.entities.iter(), &tombs));
        }
        chain.encoded.as_deref()
    }

    /// Merge adjacent delta snapshots so every full snapshot is followed by at
    /// most one delta per partition. Long-running jobs accumulate one delta
    /// per epoch until the next rebase; compaction bounds recovery replay work
    /// independently of the rebase interval (`full_snapshot_every`).
    ///
    /// A merged delta lives at the *newest* epoch of its run and carries that
    /// snapshot's source offsets; [`SnapshotStore::reconstruct`] at or after
    /// that epoch returns exactly the state the uncompacted chain would have
    /// produced. Intermediate epochs of a merged run lose their per-epoch
    /// capture (the granularity is traded for bounded chain length).
    ///
    /// Returns the number of delta snapshots merged away.
    ///
    /// In amortized mode this is a no-op (`Ok(0)`): the invariant is
    /// maintained continuously by folding at seal time, at O(new dirty set)
    /// per epoch instead of this method's O(cumulative dirty set) re-fold.
    pub fn compact(&mut self) -> CodecResult<usize> {
        self.hook.write("SnapshotStore::compact");
        if self.folded.is_some() {
            return Ok(0);
        }
        let mut removed_total = 0usize;
        let partitions: BTreeSet<usize> = self
            .snapshots
            .values()
            .flat_map(|parts| parts.keys().copied())
            .collect();
        for partition in partitions {
            // The partition's chain, oldest first.
            let chain: Vec<(EpochId, SnapshotKind)> = self
                .snapshots
                .iter()
                .filter_map(|(epoch, parts)| parts.get(&partition).map(|s| (*epoch, s.kind)))
                .collect();
            // Collect maximal runs of consecutive deltas.
            let mut runs: Vec<Vec<EpochId>> = Vec::new();
            let mut current: Vec<EpochId> = Vec::new();
            for (epoch, kind) in chain {
                match kind {
                    SnapshotKind::Delta => current.push(epoch),
                    SnapshotKind::Full => {
                        if current.len() > 1 {
                            runs.push(std::mem::take(&mut current));
                        } else {
                            current.clear();
                        }
                    }
                }
            }
            if current.len() > 1 {
                runs.push(current);
            }
            for run in runs {
                let (&last_epoch, earlier) = run.split_last().expect("run has >= 2 entries");
                // One decode per delta, one encode for the merged result —
                // a K-delta run costs O(K) codec work, not O(K²).
                let merged = fold_delta_bytes(
                    run.iter()
                        .map(|epoch| self.snapshots[epoch][&partition].state.as_slice()),
                )?;
                let last = self
                    .snapshots
                    .get_mut(&last_epoch)
                    .and_then(|parts| parts.get_mut(&partition))
                    .expect("last run epoch present");
                last.state = merged;
                for &epoch in earlier {
                    if let Some(parts) = self.snapshots.get_mut(&epoch) {
                        parts.remove(&partition);
                        removed_total += 1;
                        if parts.is_empty() {
                            self.snapshots.remove(&epoch);
                        }
                    }
                }
            }
        }
        self.deltas_merged += removed_total as u64;
        Ok(removed_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateful_entities::Value;

    fn addr(entity: &str, key: &str) -> EntityAddr {
        EntityAddr::new(entity, Key::Str(key.to_string().into()))
    }

    fn account(balance: i64) -> EntityState {
        let mut s = EntityState::new();
        s.insert("balance".into(), Value::Int(balance));
        s.insert("payload".into(), Value::Str("x".repeat(16).into()));
        s
    }

    #[test]
    fn put_get_routes_by_key_hash() {
        let mut store = StateStore::new(4);
        for i in 0..100 {
            store.put(addr("Account", &format!("acc{i}")), account(i));
        }
        assert_eq!(store.len(), 100);
        assert_eq!(
            store.read_field(&addr("Account", "acc7"), "balance"),
            Some(Value::Int(7))
        );
        // Every instance is in exactly the partition its key hashes to.
        for i in 0..100 {
            let a = addr("Account", &format!("acc{i}"));
            let p = store.partition_of(a.key());
            assert!(store.partition(p).contains(&a));
        }
        // Partitioning is reasonably balanced (no partition empty for 100 keys).
        for p in 0..store.partition_count() {
            assert!(!store.partition(p).is_empty());
        }
    }

    #[test]
    fn key_interner_pools_hot_string_keys() {
        let mut part = PartitionState::new();
        part.put(addr("Account", "hot"), account(1));
        assert_eq!(part.key_interner().unique_keys(), 1);
        assert_eq!(part.key_interner().resident_bytes(), 3);
        assert_eq!(part.key_interner().hits(), 0);

        // A fresh allocation of the same key collapses onto the pooled Arc.
        let interned = part.intern_addr(addr("Account", "hot"));
        assert_eq!(part.key_interner().hits(), 1);
        assert_eq!(part.key_interner().saved_bytes(), 3);
        let pooled_ptr = match interned.key() {
            Key::Str(s) => Arc::as_ptr(s),
            _ => unreachable!(),
        };

        // Re-interning the pooled address is pointer-identical and free.
        let again = part.intern_addr(interned.clone());
        assert_eq!(part.key_interner().hits(), 1, "ptr-equal keys are not hits");
        match again.key() {
            Key::Str(s) => assert_eq!(Arc::as_ptr(s), pooled_ptr),
            _ => unreachable!(),
        }

        // Non-string keys pass through untouched.
        let int_addr = EntityAddr::new("Account", Key::Int(7));
        assert_eq!(part.intern_addr(int_addr.clone()), int_addr);
        assert_eq!(part.key_interner().unique_keys(), 1);
    }

    #[test]
    fn partition_state_roundtrips_through_bytes() {
        let mut part = PartitionState::new();
        part.put(addr("Account", "a"), account(10));
        part.put(addr("User", "u"), account(20));
        let bytes = part.to_bytes();
        let restored = PartitionState::from_bytes(&bytes).unwrap();
        assert_eq!(part, restored);
        assert!(part.approx_size() > 32);
    }

    #[test]
    fn binary_snapshot_is_compact() {
        let mut part = PartitionState::new();
        for i in 0..50 {
            part.put(addr("Account", &format!("acc{i}")), account(i));
        }
        let bytes = part.to_bytes();
        // 50 entities × (addr ~12B + layout idx + int + 16-char payload) plus
        // one shared layout record — far below a JSON encoding (~100B/entity).
        assert!(
            bytes.len() < 50 * 80,
            "binary snapshot too large: {}",
            bytes.len()
        );
        let restored = PartitionState::from_bytes(&bytes).unwrap();
        assert_eq!(part, restored);
    }

    #[test]
    fn take_and_put_back() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let state = part.take(&addr("A", "k")).unwrap();
        assert!(part.take(&addr("A", "k")).is_none());
        part.put(addr("A", "k"), state);
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn dirty_tracking_marks_writes_and_clears_on_snapshot() {
        let mut part = PartitionState::new();
        part.put(addr("A", "x"), account(1));
        part.put(addr("A", "y"), account(2));
        assert_eq!(part.dirty_len(), 2);
        let _ = part.snapshot_full();
        assert_eq!(part.dirty_len(), 0);

        // A read does not dirty; a write does.
        assert!(part.get(&addr("A", "x")).is_some());
        assert_eq!(part.dirty_len(), 0);
        part.get_mut(&addr("A", "x"))
            .unwrap()
            .insert("balance".into(), Value::Int(9));
        assert_eq!(part.dirty_len(), 1);

        let delta = part.snapshot_delta();
        assert_eq!(part.dirty_len(), 0);
        // The delta carries one entity, not the whole partition.
        assert!(delta.len() < part.to_bytes().len());
    }

    #[test]
    fn update_with_marks_dirty_only_on_writes() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let _ = part.snapshot_full();
        assert_eq!(part.dirty_len(), 0);

        // A read-only closure leaves the entity clean.
        let balance = part
            .update_with(&addr("A", "k"), |s| s["balance"].clone())
            .unwrap();
        assert_eq!(balance, Value::Int(1));
        assert_eq!(part.dirty_len(), 0);

        // A writing closure dirties it (and the write sticks).
        part.update_with(&addr("A", "k"), |s| {
            s.insert("balance".into(), Value::Int(7));
        })
        .unwrap();
        assert_eq!(part.dirty_len(), 1);
        assert_eq!(part.get(&addr("A", "k")).unwrap()["balance"], Value::Int(7));

        // Missing entities return None without running the closure.
        assert!(part.update_with(&addr("A", "ghost"), |_| ()).is_none());
    }

    #[test]
    fn delta_roundtrip_with_tombstones() {
        let mut part = PartitionState::new();
        part.put(addr("A", "keep"), account(1));
        part.put(addr("A", "gone"), account(2));
        let base = part.snapshot_full();

        part.get_mut(&addr("A", "keep"))
            .unwrap()
            .insert("balance".into(), Value::Int(42));
        part.take(&addr("A", "gone"));
        let delta = part.snapshot_delta();

        let mut restored = PartitionState::from_bytes(&base).unwrap();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored, part);
        assert!(!restored.contains(&addr("A", "gone")));
        assert_eq!(
            restored.get(&addr("A", "keep")).unwrap()["balance"],
            Value::Int(42)
        );
    }

    #[test]
    fn full_and_delta_snapshots_are_distinguished() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let full = part.snapshot_full();
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(2));
        let delta = part.snapshot_delta();
        assert!(PartitionState::from_bytes(&delta).is_err());
        assert!(PartitionState::new().apply_delta(&full).is_err());
    }

    #[test]
    fn corrupted_snapshots_error() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let mut bytes = part.to_bytes();
        assert!(PartitionState::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        bytes[0] = 99; // bad version
        assert!(PartitionState::from_bytes(&bytes).is_err());
        assert!(PartitionState::from_bytes(&[]).is_err());
    }

    #[test]
    fn hostile_class_dictionary_is_rejected_without_interning() {
        // A snapshot claiming a 4-billion-entry class dictionary (or carrying
        // garbage names) must fail cleanly *before* anything reaches the
        // process-global interner — corrupt bytes must not leak memory.
        let mut bytes = vec![2u8, 0u8]; // version 2, full snapshot
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd class count
        assert!(PartitionState::from_bytes(&bytes).is_err());

        let mut bytes = vec![2u8, 0u8];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one dictionary entry
        bytes.extend_from_slice(&7u32.to_le_bytes()); // name of length 7
        bytes.extend_from_slice(b"__EvilX"); // ...then truncated input
        assert!(PartitionState::from_bytes(&bytes).is_err());
        // The parsed-but-failed snapshot never interned its dictionary name.
        assert!(stateful_entities::ClassId::lookup("__EvilX").is_none());
    }

    #[test]
    fn snapshot_store_tracks_complete_epochs() {
        let mut store = SnapshotStore::new(2);
        assert_eq!(store.latest_sealed_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: vec![1, 2, 3],
            source_offsets: BTreeMap::from([(0, 10)]),
        });
        // Only one of two partitions reported: epoch 1 is not complete.
        assert_eq!(store.latest_sealed_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 1,
            kind: SnapshotKind::Full,
            state: vec![4],
            source_offsets: BTreeMap::from([(1, 7)]),
        });
        assert_eq!(store.latest_sealed_epoch(), Some(1));
        // A partial newer epoch does not advance the recovery point.
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: vec![9],
            source_offsets: BTreeMap::new(),
        });
        assert_eq!(store.latest_sealed_epoch(), Some(1));
        assert_eq!(store.epoch_count(), 2);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.epoch(1).unwrap().len(), 2);
    }

    #[test]
    fn reconstruct_applies_base_plus_deltas() {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);

        part.put(addr("A", "x"), account(1));
        part.put(addr("A", "y"), account(2));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });

        part.get_mut(&addr("A", "x"))
            .unwrap()
            .insert("balance".into(), Value::Int(10));
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        part.take(&addr("A", "y"));
        part.put(addr("B", "z"), account(3));
        store.add(Snapshot {
            epoch: 3,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        // Reconstructing at each epoch matches the state the partition had.
        let at2 = store.reconstruct(0, 2).unwrap().unwrap();
        assert_eq!(at2.get(&addr("A", "x")).unwrap()["balance"], Value::Int(10));
        assert!(at2.contains(&addr("A", "y")));

        let at3 = store.reconstruct(0, 3).unwrap().unwrap();
        assert_eq!(at3, part);
        assert!(!at3.contains(&addr("A", "y")));
        assert!(at3.contains(&addr("B", "z")));

        // Without a full anchor there is nothing to reconstruct from.
        assert!(SnapshotStore::new(1).reconstruct(0, 3).unwrap().is_none());

        // A corrupted snapshot in the chain surfaces as a decode error, not
        // as a missing anchor.
        let mut corrupt = store.clone();
        let bad = corrupt.snapshots.get_mut(&2).unwrap().get_mut(&0).unwrap();
        bad.state.truncate(bad.state.len() / 2);
        assert!(corrupt.reconstruct(0, 3).is_err());
    }

    #[test]
    fn truncate_after_drops_stale_epochs() {
        let (mut store, _) = delta_chain_store(6);
        assert_eq!(store.epoch_count(), 6);
        // Rolling back to epoch 4 drops epochs 5 and 6 (one partition each).
        assert_eq!(store.truncate_after(4), 2);
        assert_eq!(store.epoch_count(), 4);
        assert!(store.epoch(5).is_none() && store.epoch(6).is_none());
        // The surviving chain still reconstructs.
        assert!(store.reconstruct(0, 4).unwrap().is_some());
        // Truncating at-or-above the newest epoch is a no-op.
        assert_eq!(store.truncate_after(10), 0);
        assert_eq!(store.latest_sealed_epoch(), Some(4));
    }

    #[test]
    fn take_pruned_reports_rollback_and_anchor_drops() {
        // Rollback truncation reports each dropped sealed snapshot once.
        let (mut store, _) = delta_chain_store(6);
        assert_eq!(store.take_pruned(), vec![], "nothing dropped yet");
        store.truncate_after(4);
        assert_eq!(store.take_pruned(), vec![(5, 0), (6, 0)]);
        assert_eq!(store.take_pruned(), vec![], "drained on take");

        // Amortized anchor pruning reports the superseded epochs too.
        let mut part = PartitionState::new();
        part.put(addr("A", "x"), account(1));
        let mut store = SnapshotStore::new_amortized(1);
        for epoch in 1..=3u64 {
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind: SnapshotKind::Full,
                state: part.snapshot_full(),
                source_offsets: BTreeMap::new(),
            });
        }
        let mut pruned = store.take_pruned();
        pruned.sort_unstable();
        assert_eq!(
            pruned,
            vec![(1, 0), (2, 0)],
            "each superseded anchor is reported exactly once"
        );
    }

    #[test]
    fn state_size_scales_with_payload() {
        let mut small = PartitionState::new();
        let mut big = PartitionState::new();
        let mut s = EntityState::new();
        s.insert("payload".into(), Value::Str("x".repeat(50).into()));
        small.put(addr("A", "k"), s.clone());
        let mut b = EntityState::new();
        b.insert("payload".into(), Value::Str("x".repeat(200_000).into()));
        big.put(addr("A", "k"), b);
        assert!(big.approx_size() > small.approx_size() * 100);
    }

    /// Build a store with one full snapshot at epoch 1 and a delta per epoch
    /// after it, mutating/removing/creating entities along the way. Returns
    /// the store together with the live partition (the expected final state).
    fn delta_chain_store(epochs: u64) -> (SnapshotStore, PartitionState) {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        for i in 0..6 {
            part.put(addr("A", &format!("k{i}")), account(i));
        }
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::from([(0, 100)]),
        });
        for epoch in 2..=epochs {
            let e = epoch as i64;
            let target = addr("A", &format!("k{}", e % 6));
            match part.get_mut(&target) {
                Some(state) => state.insert("balance".into(), Value::Int(e * 10)),
                // An earlier epoch may have tombstoned this key; re-create it.
                None => part.put(target, account(e * 10)),
            }
            if epoch % 3 == 0 {
                part.take(&addr("A", &format!("k{}", (e + 1) % 6)));
            }
            if epoch % 4 == 0 {
                part.put(addr("B", &format!("fresh{e}")), account(e));
            }
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind: SnapshotKind::Delta,
                state: part.snapshot_delta(),
                source_offsets: BTreeMap::from([(0, 100 * epoch)]),
            });
        }
        (store, part)
    }

    #[test]
    fn compacted_chain_reconstructs_identically_to_raw_chain() {
        let (raw, live) = delta_chain_store(9);
        let mut compacted = raw.clone();
        let merged = compacted.compact().unwrap();
        assert!(merged > 0, "a 8-delta chain must have something to merge");

        let from_raw = raw.reconstruct(0, 9).unwrap().unwrap();
        let from_compacted = compacted.reconstruct(0, 9).unwrap().unwrap();
        assert_eq!(from_raw, from_compacted);
        assert_eq!(from_compacted, live);

        // After compaction, each full is followed by at most one delta: the
        // chain at the final epoch is exactly [full, merged delta].
        let chain: Vec<SnapshotKind> = compacted
            .snapshots
            .values()
            .filter_map(|parts| parts.get(&0).map(|s| s.kind))
            .collect();
        assert_eq!(chain, vec![SnapshotKind::Full, SnapshotKind::Delta]);
        // The merged delta carries the newest source offsets of its run.
        let last = compacted.epoch(9).unwrap().get(&0).unwrap();
        assert_eq!(last.source_offsets[&0], 900);
        // Compaction is idempotent.
        assert_eq!(compacted.compact().unwrap(), 0);
    }

    #[test]
    fn delta_chain_len_reports_recovery_replay_depth() {
        let (raw, _) = delta_chain_store(9);
        // Uncompacted: epochs 2..=9 each appended one delta on the epoch-1
        // full anchor.
        assert_eq!(raw.delta_chain_len(0, 9), 8);
        assert_eq!(raw.delta_chain_len(0, 4), 3);
        assert_eq!(raw.delta_chain_len(0, 1), 0, "a full anchors the chain");
        // A partition with no captures reports an empty chain.
        assert_eq!(raw.delta_chain_len(7, 9), 0);

        let mut compacted = raw.clone();
        compacted.compact().unwrap();
        assert_eq!(
            compacted.delta_chain_len(0, 9),
            1,
            "compaction bounds replay depth at full + one merged delta"
        );
    }

    #[test]
    fn compaction_preserves_tombstone_and_reinsert_ordering() {
        // k removed in one delta and re-created in a later one must survive;
        // k removed *after* being written must stay gone.
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        part.put(addr("A", "revived"), account(1));
        part.put(addr("A", "doomed"), account(2));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });
        part.take(&addr("A", "revived"));
        part.get_mut(&addr("A", "doomed"))
            .unwrap()
            .insert("balance".into(), Value::Int(9));
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });
        part.put(addr("A", "revived"), account(42));
        part.take(&addr("A", "doomed"));
        store.add(Snapshot {
            epoch: 3,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        let expected = store.reconstruct(0, 3).unwrap().unwrap();
        store.compact().unwrap();
        let compacted = store.reconstruct(0, 3).unwrap().unwrap();
        assert_eq!(expected, compacted);
        assert_eq!(
            compacted.get(&addr("A", "revived")).unwrap()["balance"],
            Value::Int(42)
        );
        assert!(!compacted.contains(&addr("A", "doomed")));
    }

    #[test]
    fn compaction_does_not_cross_full_snapshots() {
        // delta, FULL, delta, delta: only the trailing pair may merge — a
        // delta must never be folded across the rebase point it precedes.
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        part.put(addr("A", "k"), account(0));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });
        for (epoch, kind) in [
            (2, SnapshotKind::Delta),
            (3, SnapshotKind::Full),
            (4, SnapshotKind::Delta),
            (5, SnapshotKind::Delta),
        ] {
            part.get_mut(&addr("A", "k"))
                .unwrap()
                .insert("balance".into(), Value::Int(epoch as i64));
            let state = match kind {
                SnapshotKind::Full => part.snapshot_full(),
                SnapshotKind::Delta => part.snapshot_delta(),
            };
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind,
                state,
                source_offsets: BTreeMap::new(),
            });
        }
        let expected = store.reconstruct(0, 5).unwrap().unwrap();
        assert_eq!(
            store.compact().unwrap(),
            1,
            "only the trailing delta pair merges"
        );
        let chain: Vec<(EpochId, SnapshotKind)> = store
            .snapshots
            .iter()
            .filter_map(|(e, parts)| parts.get(&0).map(|s| (*e, s.kind)))
            .collect();
        assert_eq!(
            chain,
            vec![
                (1, SnapshotKind::Full),
                (2, SnapshotKind::Delta),
                (3, SnapshotKind::Full),
                (5, SnapshotKind::Delta),
            ]
        );
        assert_eq!(store.reconstruct(0, 5).unwrap().unwrap(), expected);
    }

    #[test]
    fn capture_then_encode_equals_eager_snapshot() {
        // Capture must produce byte-identical output to the eager path, for
        // both kinds, and re-base the dirty set exactly the same way.
        let mut eager = PartitionState::new();
        let mut lazy = PartitionState::new();
        for i in 0..5 {
            eager.put(addr("A", &format!("k{i}")), account(i));
            lazy.put(addr("A", &format!("k{i}")), account(i));
        }
        let full_capture = lazy.capture_full();
        assert_eq!(full_capture.kind(), SnapshotKind::Full);
        assert_eq!(full_capture.entity_count(), 5);
        assert_eq!(eager.snapshot_full(), full_capture.encode());
        assert_eq!(lazy.dirty_len(), 0);

        for part in [&mut eager, &mut lazy] {
            part.get_mut(&addr("A", "k1"))
                .unwrap()
                .insert("balance".into(), Value::Int(99));
            part.take(&addr("A", "k3"));
        }
        let delta_capture = lazy.capture_delta();
        assert_eq!(delta_capture.kind(), SnapshotKind::Delta);
        assert_eq!(delta_capture.entity_count(), 1);
        assert_eq!(delta_capture.tombstone_count(), 1);
        assert_eq!(eager.snapshot_delta(), delta_capture.encode());
        assert_eq!(lazy.dirty_len(), 0);
    }

    #[test]
    fn capture_is_a_consistent_cut_under_later_writes() {
        // Writes performed AFTER the capture must not leak into its encoding
        // — the capture is the barrier-time cut, encoded later.
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let capture = part.capture_full();
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(777));
        let restored = PartitionState::from_bytes(&capture.encode()).unwrap();
        assert_eq!(
            restored.get(&addr("A", "k")).unwrap()["balance"],
            Value::Int(1),
            "post-capture write leaked into the capture"
        );
    }

    #[test]
    fn epochs_seal_in_order_and_pending_never_recovers() {
        let mut store = SnapshotStore::new(2);
        let snap = |epoch, partition, kind| Snapshot {
            epoch,
            partition,
            kind,
            state: vec![epoch as u8],
            source_offsets: BTreeMap::from([(0, epoch * 10)]),
        };
        assert_eq!(store.add(snap(1, 0, SnapshotKind::Full)), 0);
        assert_eq!(store.add(snap(1, 1, SnapshotKind::Full)), 1);
        assert!(store.is_sealed(1));
        assert_eq!(store.epoch_offsets(1), Some(&BTreeMap::from([(0, 10)])));

        // Announce epoch 2 (cut taken, no bytes yet): visible as pending.
        store.begin_epoch(2);
        assert_eq!(store.unsealed_epochs(), 1);
        assert_eq!(store.latest_sealed_epoch(), Some(1));

        // Epoch 3's bytes fully arrive while epoch 2 is still pending: the
        // seal must wait — a newer cut cannot become the recovery point
        // while an older one is still materializing.
        assert_eq!(store.add(snap(3, 0, SnapshotKind::Delta)), 0);
        assert_eq!(store.add(snap(3, 1, SnapshotKind::Delta)), 0);
        assert_eq!(store.latest_sealed_epoch(), Some(1));
        assert!(!store.is_sealed(3));

        // Epoch 2 completes: both seal, in order, from one arrival.
        assert_eq!(store.add(snap(2, 0, SnapshotKind::Delta)), 0);
        assert_eq!(store.add(snap(2, 1, SnapshotKind::Delta)), 2);
        assert_eq!(store.latest_sealed_epoch(), Some(3));
        assert_eq!(store.unsealed_epochs(), 0);
    }

    #[test]
    fn sealed_epochs_are_immutable_to_late_arrivals() {
        // A duplicate/late add for a sealed epoch must be dropped: parking it
        // in `pending` would block every future seal, and re-folding it
        // (amortized) would regress the merge with stale data.
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let full = part.snapshot_full();
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(2));
        let epoch2 = part.snapshot_delta();
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(3));
        let epoch3 = part.snapshot_delta();

        let snap = |epoch, kind, state: &Vec<u8>| Snapshot {
            epoch,
            partition: 0,
            kind,
            state: state.clone(),
            source_offsets: BTreeMap::new(),
        };
        let mut store = SnapshotStore::new_amortized(1);
        store.add(snap(1, SnapshotKind::Full, &full));
        store.add(snap(2, SnapshotKind::Delta, &epoch2));
        store.add(snap(3, SnapshotKind::Delta, &epoch3));
        assert_eq!(store.latest_sealed_epoch(), Some(3));

        // Re-adding sealed epoch 2 seals nothing, blocks nothing, and does
        // not regress the merge below epoch 3's value.
        assert_eq!(store.add(snap(2, SnapshotKind::Delta, &epoch2)), 0);
        assert_eq!(store.unsealed_epochs(), 0);
        store.add(snap(4, SnapshotKind::Delta, &part.snapshot_delta()));
        assert_eq!(store.latest_sealed_epoch(), Some(4), "seals keep flowing");
        let rebuilt = store.reconstruct(0, 4).unwrap().unwrap();
        assert_eq!(
            rebuilt.get(&addr("A", "k")).unwrap()["balance"],
            Value::Int(3)
        );
    }

    #[test]
    fn amortized_metadata_is_pruned_below_the_oldest_anchor() {
        // Per-epoch bookkeeping (sealed set, offsets) must not grow one entry
        // per epoch forever: a full rebase retires everything beneath it.
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(0));
        let mut store = SnapshotStore::new_amortized(1);
        let record = |store: &mut SnapshotStore, epoch, kind, part: &mut PartitionState| {
            let state = match kind {
                SnapshotKind::Full => part.snapshot_full(),
                SnapshotKind::Delta => part.snapshot_delta(),
            };
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind,
                state,
                source_offsets: BTreeMap::from([(0, epoch * 10)]),
            });
        };
        record(&mut store, 1, SnapshotKind::Full, &mut part);
        for epoch in 2..=9 {
            part.get_mut(&addr("A", "k"))
                .unwrap()
                .insert("balance".into(), Value::Int(epoch as i64));
            record(&mut store, epoch, SnapshotKind::Delta, &mut part);
        }
        assert_eq!(store.epoch_count(), 9);
        // Rebase: epochs 1..=9 are no longer reconstructible; their metadata
        // goes with them. Only the new anchor epoch remains tracked.
        record(&mut store, 10, SnapshotKind::Full, &mut part);
        assert_eq!(store.epoch_count(), 1);
        assert_eq!(store.latest_sealed_epoch(), Some(10));
        assert_eq!(store.epoch_offsets(10), Some(&BTreeMap::from([(0, 100)])));
        assert_eq!(store.epoch_offsets(5), None);
    }

    #[test]
    fn truncate_after_drops_pending_arrivals_too() {
        let mut store = SnapshotStore::new(2);
        let snap = |epoch, partition| Snapshot {
            epoch,
            partition,
            kind: SnapshotKind::Full,
            state: vec![1],
            source_offsets: BTreeMap::new(),
        };
        store.add(snap(1, 0));
        store.add(snap(1, 1));
        store.begin_epoch(2);
        store.add(snap(2, 0)); // partial: epoch 2 stays pending
        store.begin_epoch(3); // announced, zero arrivals
        assert_eq!(store.unsealed_epochs(), 2);
        // Rollback to epoch 1 clears the failed timeline's pending arrivals.
        assert_eq!(store.truncate_after(1), 1);
        assert_eq!(store.unsealed_epochs(), 0);
        assert_eq!(store.latest_sealed_epoch(), Some(1));
    }

    /// Replay `delta_chain_store`'s history through an amortized store and
    /// check it reconstructs identically to the classic chain at the final
    /// epoch, with the chain structurally bounded at one merged delta.
    #[test]
    fn amortized_fold_reconstructs_identically_to_raw_chain() {
        let (raw, live) = delta_chain_store(9);
        let mut amortized = SnapshotStore::new_amortized(1);
        for (_, parts) in raw.snapshots.iter() {
            for snap in parts.values() {
                amortized.add(snap.clone());
            }
        }
        assert_eq!(amortized.latest_sealed_epoch(), Some(9));
        assert_eq!(
            amortized.delta_chain_len(0, 9),
            1,
            "fold must bound the chain at one merged delta continuously"
        );
        assert!(amortized.deltas_merged() > 0);
        let from_amortized = amortized.reconstruct(0, 9).unwrap().unwrap();
        assert_eq!(from_amortized, raw.reconstruct(0, 9).unwrap().unwrap());
        assert_eq!(from_amortized, live);
        // compact() has nothing left to do.
        assert_eq!(amortized.compact().unwrap(), 0);
    }

    // (The structural pin that folding performs zero encodes — and that
    // merged_delta_bytes encodes lazily, exactly once — lives in the
    // single-test `tests/compaction_cost.rs` binary, where the process-global
    // codec counters cannot be disturbed by parallel sibling tests.)
    #[test]
    fn merged_delta_bytes_apply_like_a_delta() {
        let (raw, live) = delta_chain_store(9);
        let mut amortized = SnapshotStore::new_amortized(1);
        for (_, parts) in raw.snapshots.iter() {
            for snap in parts.values() {
                amortized.add(snap.clone());
            }
        }
        let bytes = amortized.merged_delta_bytes(0).unwrap().to_vec();
        let anchor = raw.reconstruct(0, 1).unwrap().unwrap();
        let mut rebuilt = anchor;
        rebuilt.apply_delta(&bytes).unwrap();
        assert_eq!(rebuilt, live);
    }

    #[test]
    fn amortized_full_anchor_resets_the_chain() {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new_amortized(1);
        part.put(addr("A", "k"), account(0));
        let record = |store: &mut SnapshotStore, epoch, kind, part: &mut PartitionState| {
            let state = match kind {
                SnapshotKind::Full => part.snapshot_full(),
                SnapshotKind::Delta => part.snapshot_delta(),
            };
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind,
                state,
                source_offsets: BTreeMap::new(),
            });
        };
        record(&mut store, 1, SnapshotKind::Full, &mut part);
        for epoch in 2..=4 {
            part.get_mut(&addr("A", "k"))
                .unwrap()
                .insert("balance".into(), Value::Int(epoch as i64));
            record(&mut store, epoch, SnapshotKind::Delta, &mut part);
        }
        assert_eq!(store.delta_chain_len(0, 4), 1);
        // A full rebase retires the folded chain and the old anchor.
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(50));
        record(&mut store, 5, SnapshotKind::Full, &mut part);
        assert_eq!(store.delta_chain_len(0, 5), 0);
        assert!(store.merged_delta_bytes(0).is_none());
        assert_eq!(store.epoch(1), None, "superseded anchor is pruned");
        let rebuilt = store.reconstruct(0, 5).unwrap().unwrap();
        assert_eq!(rebuilt, part);
    }

    #[test]
    fn amortized_corrupt_delta_surfaces_at_reconstruct() {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new_amortized(1);
        part.put(addr("A", "k"), account(0));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(9));
        let mut delta = part.snapshot_delta();
        delta.truncate(delta.len() / 2);
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: delta,
            source_offsets: BTreeMap::new(),
        });
        // The corrupt delta seals (bytes arrived) but cannot fold; recovery
        // through it must error rather than silently skip the epoch.
        assert!(store.is_sealed(2));
        assert!(store.reconstruct(0, 2).is_err());
    }
}
