//! # state-backend
//!
//! Managed operator state for stateful dataflow operators: a partitioned
//! key→entity-state store, (de)serialization used to measure state-size
//! overheads, and a snapshot store implementing the state side of the
//! consistent-snapshot (Chandy–Lamport style) fault-tolerance protocol the
//! paper's StateFlow runtime relies on for exactly-once guarantees.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use stateful_entities::{EntityAddr, EntityState, Key, Value};
use std::collections::BTreeMap;

/// An epoch identifier: snapshots are aligned on epoch boundaries.
pub type EpochId = u64;

/// The state owned by one worker/partition: every entity instance whose key
/// hashes to this partition, across all operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionState {
    entities: BTreeMap<EntityAddr, EntityState>,
}

impl PartitionState {
    /// Create an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or overwrite) an entity instance.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        self.entities.insert(addr, state);
    }

    /// Remove and return the state of an entity instance.
    pub fn take(&mut self, addr: &EntityAddr) -> Option<EntityState> {
        self.entities.remove(addr)
    }

    /// Read-only access to an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.entities.get(addr)
    }

    /// Mutable access to an entity instance.
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        self.entities.get_mut(addr)
    }

    /// True if the instance exists.
    pub fn contains(&self, addr: &EntityAddr) -> bool {
        self.entities.contains_key(addr)
    }

    /// Number of entity instances.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if the partition holds no instances.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterate over all instances.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityAddr, &EntityState)> {
        self.entities.iter()
    }

    /// Approximate serialized size of the partition in bytes.
    pub fn approx_size(&self) -> usize {
        self.entities
            .iter()
            .map(|(addr, state)| {
                addr.entity.len()
                    + key_size(&addr.key)
                    + state
                        .iter()
                        .map(|(f, v)| f.len() + v.approx_size())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Serialize to JSON (the paper requires entity state to be serializable;
    /// JSON keeps snapshots human-inspectable). Entries are stored as a list
    /// of `(address, state)` pairs because JSON object keys must be strings.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries: Vec<(&EntityAddr, &EntityState)> = self.entities.iter().collect();
        serde_json::to_vec(&entries).expect("partition state serializes")
    }

    /// Restore from bytes produced by [`PartitionState::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        let entries: Vec<(EntityAddr, EntityState)> = serde_json::from_slice(bytes)?;
        Ok(PartitionState {
            entities: entries.into_iter().collect(),
        })
    }
}

fn key_size(key: &Key) -> usize {
    match key {
        Key::Int(_) => 8,
        Key::Str(s) => s.len() + 8,
    }
}

/// A partitioned state store: `partitions` instances of [`PartitionState`],
/// with routing by the entity key's stable hash — mirroring how the paper
/// partitions operator state across parallel instances using `__key__`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateStore {
    partitions: Vec<PartitionState>,
}

impl StateStore {
    /// Create a store with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        StateStore {
            partitions: vec![PartitionState::new(); partitions],
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Which partition a key belongs to.
    pub fn partition_of(&self, key: &Key) -> usize {
        key.partition(self.partitions.len())
    }

    /// Access one partition.
    pub fn partition(&self, idx: usize) -> &PartitionState {
        &self.partitions[idx]
    }

    /// Mutable access to one partition.
    pub fn partition_mut(&mut self, idx: usize) -> &mut PartitionState {
        &mut self.partitions[idx]
    }

    /// Install an entity instance in the right partition.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        let idx = self.partition_of(&addr.key);
        self.partitions[idx].put(addr, state);
    }

    /// Read an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.partitions[self.partition_of(&addr.key)].get(addr)
    }

    /// Mutably access an entity instance.
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        let idx = self.partition_of(&addr.key);
        self.partitions[idx].get_mut(addr)
    }

    /// Total number of entity instances across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(PartitionState::len).sum()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one field of one entity (dashboard/test helper).
    pub fn read_field(&self, addr: &EntityAddr, field: &str) -> Option<Value> {
        self.get(addr).and_then(|s| s.get(field).cloned())
    }
}

/// A snapshot of one partition at an epoch boundary, together with the source
/// offsets that had been fully processed when the snapshot was taken — the
/// pair is what makes recovery exactly-once: restore the state, rewind the
/// replayable source to the recorded offsets, and re-process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Epoch this snapshot terminates.
    pub epoch: EpochId,
    /// Partition index.
    pub partition: usize,
    /// Serialized partition state.
    pub state: Vec<u8>,
    /// Source offsets processed (exclusive) per source partition.
    pub source_offsets: BTreeMap<usize, u64>,
}

/// Stores completed snapshots per epoch; the latest epoch for which *all*
/// partitions have reported is the recovery point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStore {
    snapshots: BTreeMap<EpochId, BTreeMap<usize, Snapshot>>,
    expected_partitions: usize,
}

impl SnapshotStore {
    /// Create a store expecting `expected_partitions` partitions per epoch.
    pub fn new(expected_partitions: usize) -> Self {
        SnapshotStore {
            snapshots: BTreeMap::new(),
            expected_partitions,
        }
    }

    /// Record a partition snapshot for an epoch.
    pub fn add(&mut self, snapshot: Snapshot) {
        self.snapshots
            .entry(snapshot.epoch)
            .or_default()
            .insert(snapshot.partition, snapshot);
    }

    /// The newest epoch for which every partition has a snapshot (the epoch a
    /// recovering job rolls back to), if any.
    pub fn latest_complete_epoch(&self) -> Option<EpochId> {
        self.snapshots
            .iter()
            .rev()
            .find(|(_, parts)| parts.len() == self.expected_partitions)
            .map(|(epoch, _)| *epoch)
    }

    /// All partition snapshots of an epoch.
    pub fn epoch(&self, epoch: EpochId) -> Option<&BTreeMap<usize, Snapshot>> {
        self.snapshots.get(&epoch)
    }

    /// Number of epochs with at least one snapshot.
    pub fn epoch_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Total bytes stored across all snapshots.
    pub fn total_bytes(&self) -> usize {
        self.snapshots
            .values()
            .flat_map(|parts| parts.values())
            .map(|s| s.state.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateful_entities::Value;

    fn addr(entity: &str, key: &str) -> EntityAddr {
        EntityAddr::new(entity, Key::Str(key.to_string()))
    }

    fn account(balance: i64) -> EntityState {
        let mut s = EntityState::new();
        s.insert("balance".into(), Value::Int(balance));
        s.insert("payload".into(), Value::Str("x".repeat(16)));
        s
    }

    #[test]
    fn put_get_routes_by_key_hash() {
        let mut store = StateStore::new(4);
        for i in 0..100 {
            store.put(addr("Account", &format!("acc{i}")), account(i));
        }
        assert_eq!(store.len(), 100);
        assert_eq!(
            store.read_field(&addr("Account", "acc7"), "balance"),
            Some(Value::Int(7))
        );
        // Every instance is in exactly the partition its key hashes to.
        for i in 0..100 {
            let a = addr("Account", &format!("acc{i}"));
            let p = store.partition_of(&a.key);
            assert!(store.partition(p).contains(&a));
        }
        // Partitioning is reasonably balanced (no partition empty for 100 keys).
        for p in 0..store.partition_count() {
            assert!(!store.partition(p).is_empty());
        }
    }

    #[test]
    fn partition_state_roundtrips_through_bytes() {
        let mut part = PartitionState::new();
        part.put(addr("Account", "a"), account(10));
        part.put(addr("User", "u"), account(20));
        let bytes = part.to_bytes();
        let restored = PartitionState::from_bytes(&bytes).unwrap();
        assert_eq!(part, restored);
        assert!(part.approx_size() > 32);
    }

    #[test]
    fn take_and_put_back() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let state = part.take(&addr("A", "k")).unwrap();
        assert!(part.take(&addr("A", "k")).is_none());
        part.put(addr("A", "k"), state);
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn snapshot_store_tracks_complete_epochs() {
        let mut store = SnapshotStore::new(2);
        assert_eq!(store.latest_complete_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            state: vec![1, 2, 3],
            source_offsets: BTreeMap::from([(0, 10)]),
        });
        // Only one of two partitions reported: epoch 1 is not complete.
        assert_eq!(store.latest_complete_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 1,
            state: vec![4],
            source_offsets: BTreeMap::from([(1, 7)]),
        });
        assert_eq!(store.latest_complete_epoch(), Some(1));
        // A partial newer epoch does not advance the recovery point.
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            state: vec![9],
            source_offsets: BTreeMap::new(),
        });
        assert_eq!(store.latest_complete_epoch(), Some(1));
        assert_eq!(store.epoch_count(), 2);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.epoch(1).unwrap().len(), 2);
    }

    #[test]
    fn state_size_scales_with_payload() {
        let mut small = PartitionState::new();
        let mut big = PartitionState::new();
        let mut s = EntityState::new();
        s.insert("payload".into(), Value::Str("x".repeat(50)));
        small.put(addr("A", "k"), s.clone());
        let mut b = EntityState::new();
        b.insert("payload".into(), Value::Str("x".repeat(200_000)));
        big.put(addr("A", "k"), b);
        assert!(big.approx_size() > small.approx_size() * 100);
    }
}
