//! # state-backend
//!
//! Managed operator state for stateful dataflow operators: a partitioned
//! key→entity-state store with **dirty tracking**, a compact **binary
//! snapshot codec**, and a snapshot store implementing the state side of the
//! consistent-snapshot (Chandy–Lamport style) fault-tolerance protocol the
//! paper's StateFlow runtime relies on for exactly-once guarantees.
//!
//! ## Incremental snapshot protocol
//!
//! The seed implementation serialized *every* partition through `serde_json`
//! at *every* epoch, stalling workers proportionally to total state size.
//! Snapshots are now incremental and binary:
//!
//! * [`PartitionState`] tracks which entities were written (or removed) since
//!   the last snapshot in a dirty set — `put`, `get_mut`, and `take` mark it;
//! * at an epoch boundary the runtime emits either a **full** snapshot
//!   ([`PartitionState::snapshot_full`]) or a **delta**
//!   ([`PartitionState::snapshot_delta`]) containing only dirty entities and
//!   tombstones for removals; both clear the dirty set, re-basing the next
//!   delta on the epoch just captured;
//! * the runtime takes a full snapshot every N epochs (the *rebase interval*)
//!   and deltas in between, bounding recovery-chain length;
//! * recovery rebuilds a partition with [`SnapshotStore::reconstruct`]:
//!   latest full snapshot at-or-before the target epoch, plus every delta
//!   after it, applied in epoch order.
//!
//! The wire format is length-prefixed binary (see [`stateful_entities::binary`]),
//! version 2: a **class dictionary** (each distinct entity-class name written
//! once per snapshot), a layout dictionary (each distinct [`FieldLayout`]
//! encoded once), then one record per entity — class dictionary index (`u32`),
//! key, layout index, and the slot values in layout order. Addresses inside a
//! snapshot are therefore pure ids; class names appear exactly once however
//! many entities share them. Numeric [`ClassId`]s never hit the wire (they
//! are process-local); decode re-interns the dictionary names. No JSON is
//! produced on this path; the `BTreeMap` debug view of [`EntityState`]
//! remains available for human inspection.
//!
//! Long delta chains can be bounded independently of the rebase interval with
//! [`SnapshotStore::compact`], which merges adjacent deltas per partition so
//! every full snapshot is followed by at most one delta.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use stateful_entities::binary::{
    get_key, get_layout, get_str, get_u32, get_value, put_key, put_layout, put_str, put_u32,
    put_value, CodecError, CodecResult,
};
use stateful_entities::{ClassId, EntityAddr, EntityState, FieldLayout, Key, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An epoch identifier: snapshots are aligned on epoch boundaries.
pub type EpochId = u64;

/// Binary snapshot format version. Version 2 (PR 2) introduced the class
/// dictionary: every distinct entity-class name is written once per
/// snapshot and entity records refer to it by `u32` index — addresses inside
/// a snapshot are pure ids, never repeated strings.
const SNAPSHOT_VERSION: u8 = 2;
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Whether a snapshot captures the whole partition or only the entities
/// written since the previous snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotKind {
    /// Complete partition contents (a rebase point for delta chains).
    Full,
    /// Dirty entities + tombstones since the previous snapshot.
    Delta,
}

/// The state owned by one worker/partition: every entity instance whose key
/// hashes to this partition, across all operators.
#[derive(Debug, Clone, Default)]
pub struct PartitionState {
    entities: BTreeMap<EntityAddr, EntityState>,
    /// Entities written since the last snapshot.
    dirty: BTreeSet<EntityAddr>,
    /// Entities removed since the last snapshot.
    tombstones: BTreeSet<EntityAddr>,
}

impl PartialEq for PartitionState {
    fn eq(&self, other: &Self) -> bool {
        // Equality is by contents; dirty/tombstone bookkeeping is relative to
        // the last snapshot, not part of the logical state.
        self.entities == other.entities
    }
}

impl PartitionState {
    /// Create an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or overwrite) an entity instance.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        self.tombstones.remove(&addr);
        if !self.dirty.contains(&addr) {
            self.dirty.insert(addr.clone());
        }
        self.entities.insert(addr, state);
    }

    /// Remove and return the state of an entity instance.
    pub fn take(&mut self, addr: &EntityAddr) -> Option<EntityState> {
        let removed = self.entities.remove(addr);
        if removed.is_some() {
            self.dirty.remove(addr);
            self.tombstones.insert(addr.clone());
        }
        removed
    }

    /// Read-only access to an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.entities.get(addr)
    }

    /// Mutable access to an entity instance (marks it dirty).
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        if !self.entities.contains_key(addr) {
            return None;
        }
        // Clone the address into the dirty set only on the first write since
        // the last snapshot — hot entities stay allocation-free per access.
        if !self.dirty.contains(addr) {
            self.dirty.insert(addr.clone());
        }
        self.entities.get_mut(addr)
    }

    /// Run `f` against an entity's state **in place**, marking the entity
    /// dirty only if `f` actually wrote a field (checked through the state's
    /// O(1) write marker, which is cleared before `f` runs).
    ///
    /// This is the per-hop execution path of the sharded runtime: a worker
    /// thread owns its partition outright, so a hop can execute directly on
    /// the stored state — no per-hop clone — while read-only invocations
    /// still stay out of the dirty set and keep delta snapshots proportional
    /// to the write set. Returns `None` (without calling `f`) if the entity
    /// does not exist.
    pub fn update_with<R>(
        &mut self,
        addr: &EntityAddr,
        f: impl FnOnce(&mut EntityState) -> R,
    ) -> Option<R> {
        let state = self.entities.get_mut(addr)?;
        state.clear_written();
        let result = f(state);
        if state.was_written() && !self.dirty.contains(addr) {
            self.dirty.insert(addr.clone());
        }
        Some(result)
    }

    /// True if the instance exists.
    pub fn contains(&self, addr: &EntityAddr) -> bool {
        self.entities.contains_key(addr)
    }

    /// Number of entity instances.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True if the partition holds no instances.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Number of entities written since the last snapshot.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Iterate over all instances.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityAddr, &EntityState)> {
        self.entities.iter()
    }

    /// Approximate serialized size of the partition in bytes (addresses are
    /// fixed-width class ids + keys under the v2 codec).
    pub fn approx_size(&self) -> usize {
        self.entities
            .iter()
            .map(|(addr, state)| {
                4 + key_size(addr.key())
                    + state
                        .iter()
                        .map(|(f, v)| f.len() + v.approx_size())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Serialize the complete partition (binary, without touching the dirty
    /// set — use [`PartitionState::snapshot_full`] at epoch boundaries).
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(KIND_FULL, self.entities.iter(), &[])
    }

    /// Restore from bytes produced by [`PartitionState::to_bytes`] or
    /// [`PartitionState::snapshot_full`]. The restored partition is clean
    /// (nothing dirty).
    pub fn from_bytes(bytes: &[u8]) -> CodecResult<Self> {
        let (kind, entities, tombstones) = decode(bytes)?;
        if kind != KIND_FULL {
            return Err(CodecError::new(
                "expected a full snapshot, found a delta (apply it with apply_delta)",
            ));
        }
        if !tombstones.is_empty() {
            return Err(CodecError::new(
                "malformed full snapshot: carries tombstones",
            ));
        }
        Ok(PartitionState {
            entities,
            dirty: BTreeSet::new(),
            tombstones: BTreeSet::new(),
        })
    }

    /// Capture a full snapshot and re-base: the dirty set is cleared, so the
    /// next [`PartitionState::snapshot_delta`] is relative to this capture.
    pub fn snapshot_full(&mut self) -> Vec<u8> {
        self.dirty.clear();
        self.tombstones.clear();
        encode(KIND_FULL, self.entities.iter(), &[])
    }

    /// Capture only the entities written (and removed) since the previous
    /// snapshot, then clear the dirty set.
    pub fn snapshot_delta(&mut self) -> Vec<u8> {
        let dirty_entities = self
            .dirty
            .iter()
            .filter_map(|addr| self.entities.get(addr).map(|s| (addr, s)));
        let tombstones: Vec<EntityAddr> = self.tombstones.iter().cloned().collect();
        let bytes = encode(KIND_DELTA, dirty_entities, &tombstones);
        self.dirty.clear();
        self.tombstones.clear();
        bytes
    }

    /// Apply a delta produced by [`PartitionState::snapshot_delta`] on top of
    /// this partition (recovery path).
    pub fn apply_delta(&mut self, bytes: &[u8]) -> CodecResult<()> {
        let (kind, entities, tombstones) = decode(bytes)?;
        if kind != KIND_DELTA {
            return Err(CodecError::new(
                "expected a delta snapshot, found a full one",
            ));
        }
        for (addr, state) in entities {
            self.entities.insert(addr, state);
        }
        for addr in tombstones {
            self.entities.remove(&addr);
        }
        Ok(())
    }
}

/// Encode a snapshot: header, class dictionary, layout dictionary, entity
/// records, tombstones. Each distinct class *name* is written exactly once
/// (numeric [`ClassId`]s are process-local, so the wire format carries names
/// in the dictionary and `u32` dictionary indices everywhere else).
///
/// Two passes: the first builds the dictionaries and sums exact record sizes
/// (see `binary::value_len` and friends), the second writes everything into
/// **one exactly-sized buffer**. The earlier single-pass encoder grew a
/// transient `records` vector by doubling and then copied it into the output
/// — for a 50 KB entity that meant a 64 KB+ doubling allocation crossing the
/// allocator's mmap threshold and a fresh page-faulted mapping per snapshot
/// (the "50 KB codec anomaly": state access 6 µs → 15 µs). The exact-size
/// pass performs one heap allocation per snapshot, of the final length.
fn encode<'a>(
    kind: u8,
    entities: impl Iterator<Item = (&'a EntityAddr, &'a EntityState)>,
    tombstones: &[EntityAddr],
) -> Vec<u8> {
    use stateful_entities::binary::{key_len, layout_len, str_len, value_len};

    let entities: Vec<(&EntityAddr, &EntityState)> = entities.collect();
    let mut classes: Vec<ClassId> = Vec::new();
    let class_idx = |classes: &mut Vec<ClassId>, class: ClassId| -> u32 {
        match classes.iter().position(|c| *c == class) {
            Some(i) => i as u32,
            None => {
                classes.push(class);
                (classes.len() - 1) as u32
            }
        }
    };

    // Pass 1: dictionaries + exact byte counts.
    let mut layouts: Vec<&FieldLayout> = Vec::new();
    let mut records_size = 0usize;
    for (addr, state) in &entities {
        class_idx(&mut classes, addr.class);
        // Dictionary lookup: pointer identity first (all instances of a class
        // share one Arc), content equality as the ad-hoc-state fallback.
        let layout: &'a FieldLayout = state.layout();
        if !layouts
            .iter()
            .any(|l| std::ptr::eq(*l, layout) || *l == layout)
        {
            layouts.push(layout);
        }
        records_size +=
            4 + key_len(addr.key()) + 4 + state.slots().iter().map(value_len).sum::<usize>();
    }
    let mut tomb_size = 0usize;
    for addr in tombstones {
        class_idx(&mut classes, addr.class);
        tomb_size += 4 + key_len(addr.key());
    }
    let total = 2 // version + kind
        + 4 + classes.iter().map(|c| str_len(c.name())).sum::<usize>()
        + 4 + layouts.iter().map(|l| layout_len(l)).sum::<usize>()
        + 4 + records_size
        + 4 + tomb_size;

    // Pass 2: write into the single exactly-sized buffer.
    let mut out = Vec::with_capacity(total);
    out.push(SNAPSHOT_VERSION);
    out.push(kind);
    put_u32(&mut out, classes.len() as u32);
    for class in &classes {
        put_str(&mut out, class.name());
    }
    put_u32(&mut out, layouts.len() as u32);
    for layout in &layouts {
        put_layout(&mut out, layout);
    }
    put_u32(&mut out, entities.len() as u32);
    for (addr, state) in &entities {
        put_u32(&mut out, class_idx(&mut classes, addr.class));
        put_key(&mut out, addr.key());
        let layout: &'a FieldLayout = state.layout();
        let idx = layouts
            .iter()
            .position(|l| std::ptr::eq(*l, layout) || *l == layout)
            .expect("pass 1 registered every layout");
        put_u32(&mut out, idx as u32);
        for value in state.slots() {
            put_value(&mut out, value);
        }
    }
    put_u32(&mut out, tombstones.len() as u32);
    for addr in tombstones {
        put_u32(&mut out, class_idx(&mut classes, addr.class));
        put_key(&mut out, addr.key());
    }
    debug_assert_eq!(out.len(), total, "exact-size accounting must be exact");
    out
}

type DecodedSnapshot = (u8, BTreeMap<EntityAddr, EntityState>, Vec<EntityAddr>);

fn decode(bytes: &[u8]) -> CodecResult<DecodedSnapshot> {
    let input = &mut &bytes[..];
    let header: &[u8] = {
        if input.len() < 2 {
            return Err(CodecError::new("snapshot too short for header"));
        }
        let (h, rest) = input.split_at(2);
        *input = rest;
        h
    };
    if header[0] != SNAPSHOT_VERSION {
        return Err(CodecError::new(format!(
            "unsupported snapshot version {}",
            header[0]
        )));
    }
    let kind = header[1];
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(CodecError::new(format!("invalid snapshot kind {kind}")));
    }

    // Parse the class dictionary as plain strings first: interning happens
    // only after the *whole* snapshot has decoded successfully, and only for
    // names the records actually reference — corrupt or hostile bytes must
    // never grow the process-global (never-pruned) interner.
    let class_count = get_u32(input)? as usize;
    if class_count > input.len() / 4 + 1 {
        return Err(CodecError::new(format!(
            "class dictionary claims {class_count} entries, input too short"
        )));
    }
    let mut class_names: Vec<String> = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        class_names.push(get_str(input)?);
    }
    let check_idx = |idx: usize| -> CodecResult<usize> {
        if idx < class_names.len() {
            Ok(idx)
        } else {
            Err(CodecError::new(format!("bad class index {idx}")))
        }
    };

    let layout_count = get_u32(input)? as usize;
    let mut layouts: Vec<Arc<FieldLayout>> = Vec::with_capacity(layout_count.min(1 << 12));
    for _ in 0..layout_count {
        layouts.push(Arc::new(get_layout(input)?));
    }

    let entity_count = get_u32(input)? as usize;
    let mut raw_entities: Vec<(usize, Key, EntityState)> =
        Vec::with_capacity(entity_count.min(1 << 16));
    for _ in 0..entity_count {
        let class_idx = check_idx(get_u32(input)? as usize)?;
        let key = get_key(input)?;
        let layout_idx = get_u32(input)? as usize;
        let layout = layouts
            .get(layout_idx)
            .ok_or_else(|| CodecError::new(format!("bad layout index {layout_idx}")))?
            .clone();
        let mut slots = Vec::with_capacity(layout.len());
        for _ in 0..layout.len() {
            slots.push(get_value(input)?);
        }
        raw_entities.push((class_idx, key, EntityState::from_parts(layout, slots)));
    }

    let tombstone_count = get_u32(input)? as usize;
    let mut raw_tombstones: Vec<(usize, Key)> = Vec::with_capacity(tombstone_count.min(1 << 16));
    for _ in 0..tombstone_count {
        let class_idx = check_idx(get_u32(input)? as usize)?;
        let key = get_key(input)?;
        raw_tombstones.push((class_idx, key));
    }
    if !input.is_empty() {
        return Err(CodecError::new(format!(
            "{} trailing bytes after snapshot",
            input.len()
        )));
    }

    // The snapshot is structurally valid: intern referenced names (memoised
    // per dictionary slot) and materialise the addresses.
    let mut interned: Vec<Option<ClassId>> = vec![None; class_names.len()];
    let mut class_at = |idx: usize| -> ClassId {
        *interned[idx].get_or_insert_with(|| ClassId::intern(&class_names[idx]))
    };
    let mut entities = BTreeMap::new();
    for (class_idx, key, state) in raw_entities {
        entities.insert(EntityAddr::from_ids(class_at(class_idx), key), state);
    }
    let tombstones = raw_tombstones
        .into_iter()
        .map(|(class_idx, key)| EntityAddr::from_ids(class_at(class_idx), key))
        .collect();
    Ok((kind, entities, tombstones))
}

/// Fold an ordered (oldest-first) chain of delta snapshots into one merged
/// delta, decoding each input once and encoding once. Applying the result is
/// equivalent to applying the inputs in order:
/// `final = (((base + A) − tombA) + B) − tombB …`, so the merged delta is
/// `entities = (A ∪ B ∪ …, later wins) − later tombstones` and
/// `tombstones = (earlier tombs − later entity keys) ∪ later tombs` —
/// entity sets and tombstones stay disjoint.
fn fold_delta_bytes<'a>(deltas: impl Iterator<Item = &'a [u8]>) -> CodecResult<Vec<u8>> {
    let mut entities: BTreeMap<EntityAddr, EntityState> = BTreeMap::new();
    let mut tombs: BTreeSet<EntityAddr> = BTreeSet::new();
    for bytes in deltas {
        let (kind, delta_entities, delta_tombs) = decode(bytes)?;
        if kind != KIND_DELTA {
            return Err(CodecError::new("can only merge delta snapshots"));
        }
        for (addr, state) in delta_entities {
            tombs.remove(&addr);
            entities.insert(addr, state);
        }
        for addr in delta_tombs {
            entities.remove(&addr);
            tombs.insert(addr);
        }
    }
    let tombs: Vec<EntityAddr> = tombs.into_iter().collect();
    Ok(encode(KIND_DELTA, entities.iter(), &tombs))
}

fn key_size(key: &Key) -> usize {
    match key {
        Key::Int(_) => 8,
        Key::Str(s) => s.len() + 8,
    }
}

/// A partitioned state store: `partitions` instances of [`PartitionState`],
/// with routing by the entity key's stable hash — mirroring how the paper
/// partitions operator state across parallel instances using `__key__`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateStore {
    partitions: Vec<PartitionState>,
}

impl StateStore {
    /// Create a store with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0);
        StateStore {
            partitions: vec![PartitionState::new(); partitions],
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Which partition a key belongs to.
    pub fn partition_of(&self, key: &Key) -> usize {
        key.partition(self.partitions.len())
    }

    /// Which partition an address belongs to (uses the hash cached in the
    /// address — no key bytes are re-walked).
    #[inline]
    pub fn partition_of_addr(&self, addr: &EntityAddr) -> usize {
        addr.partition(self.partitions.len())
    }

    /// Access one partition.
    pub fn partition(&self, idx: usize) -> &PartitionState {
        &self.partitions[idx]
    }

    /// Mutable access to one partition.
    pub fn partition_mut(&mut self, idx: usize) -> &mut PartitionState {
        &mut self.partitions[idx]
    }

    /// Install an entity instance in the right partition.
    pub fn put(&mut self, addr: EntityAddr, state: EntityState) {
        let idx = self.partition_of_addr(&addr);
        self.partitions[idx].put(addr, state);
    }

    /// Read an entity instance.
    pub fn get(&self, addr: &EntityAddr) -> Option<&EntityState> {
        self.partitions[self.partition_of_addr(addr)].get(addr)
    }

    /// Mutably access an entity instance (marks it dirty in its partition).
    pub fn get_mut(&mut self, addr: &EntityAddr) -> Option<&mut EntityState> {
        let idx = self.partition_of_addr(addr);
        self.partitions[idx].get_mut(addr)
    }

    /// Total number of entity instances across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(PartitionState::len).sum()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one field of one entity (dashboard/test helper).
    pub fn read_field(&self, addr: &EntityAddr, field: &str) -> Option<Value> {
        self.get(addr).and_then(|s| s.get(field).cloned())
    }
}

/// A snapshot of one partition at an epoch boundary, together with the source
/// offsets that had been fully processed when the snapshot was taken — the
/// pair is what makes recovery exactly-once: restore the state, rewind the
/// replayable source to the recorded offsets, and re-process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Epoch this snapshot terminates.
    pub epoch: EpochId,
    /// Partition index.
    pub partition: usize,
    /// Full capture or dirty delta.
    pub kind: SnapshotKind,
    /// Binary-encoded partition state (full) or dirty delta.
    pub state: Vec<u8>,
    /// Source offsets processed (exclusive) per source partition.
    pub source_offsets: BTreeMap<usize, u64>,
}

/// Stores completed snapshots per epoch; the latest epoch for which *all*
/// partitions have reported is the recovery point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStore {
    snapshots: BTreeMap<EpochId, BTreeMap<usize, Snapshot>>,
    expected_partitions: usize,
}

impl SnapshotStore {
    /// Create a store expecting `expected_partitions` partitions per epoch.
    pub fn new(expected_partitions: usize) -> Self {
        SnapshotStore {
            snapshots: BTreeMap::new(),
            expected_partitions,
        }
    }

    /// Record a partition snapshot for an epoch.
    pub fn add(&mut self, snapshot: Snapshot) {
        self.snapshots
            .entry(snapshot.epoch)
            .or_default()
            .insert(snapshot.partition, snapshot);
    }

    /// The newest epoch for which every partition has a snapshot (the epoch a
    /// recovering job rolls back to), if any.
    pub fn latest_complete_epoch(&self) -> Option<EpochId> {
        self.snapshots
            .iter()
            .rev()
            .find(|(_, parts)| parts.len() == self.expected_partitions)
            .map(|(epoch, _)| *epoch)
    }

    /// All partition snapshots of an epoch.
    pub fn epoch(&self, epoch: EpochId) -> Option<&BTreeMap<usize, Snapshot>> {
        self.snapshots.get(&epoch)
    }

    /// Number of epochs with at least one snapshot.
    pub fn epoch_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Total bytes stored across all snapshots.
    pub fn total_bytes(&self) -> usize {
        self.snapshots
            .values()
            .flat_map(|parts| parts.values())
            .map(|s| s.state.len())
            .sum()
    }

    /// Rebuild `partition`'s state as of `epoch`: the latest full snapshot
    /// at-or-before `epoch`, plus every delta after it up to `epoch`, applied
    /// in order. Returns `Ok(None)` if no full snapshot anchors the chain,
    /// and `Err` if a snapshot in the chain fails to decode — corruption must
    /// stay distinguishable from a merely missing anchor.
    pub fn reconstruct(
        &self,
        partition: usize,
        epoch: EpochId,
    ) -> CodecResult<Option<PartitionState>> {
        let mut deltas: Vec<&Snapshot> = Vec::new();
        let mut base: Option<&Snapshot> = None;
        for (_, parts) in self.snapshots.range(..=epoch).rev() {
            let Some(snap) = parts.get(&partition) else {
                // This epoch has no capture for the partition (e.g. it was
                // recorded by a test, not the runtime loop); it contributes
                // nothing to the chain.
                continue;
            };
            match snap.kind {
                SnapshotKind::Full => {
                    base = Some(snap);
                    break;
                }
                SnapshotKind::Delta => deltas.push(snap),
            }
        }
        let Some(base) = base else {
            return Ok(None);
        };
        let mut state = PartitionState::from_bytes(&base.state)?;
        for snap in deltas.iter().rev() {
            state.apply_delta(&snap.state)?;
        }
        Ok(Some(state))
    }

    /// Drop every snapshot recorded for an epoch newer than `epoch`.
    ///
    /// Recovery rolls the job back to the latest *complete* epoch; snapshots
    /// taken after it (including partial epochs a crash interrupted) describe
    /// state that no longer exists. Re-processing after the rollback will
    /// re-record those epochs, and a stale partial epoch left behind would
    /// corrupt the chain: a delta re-taken at epoch `e+1` must re-base on the
    /// *recovered* `e`, not mix with captures from the failed timeline.
    ///
    /// Returns the number of partition snapshots dropped.
    pub fn truncate_after(&mut self, epoch: EpochId) -> usize {
        let stale = self.snapshots.split_off(&(epoch + 1));
        stale.values().map(|parts| parts.len()).sum()
    }

    /// Number of delta snapshots [`SnapshotStore::reconstruct`] would apply
    /// on top of the full anchor to rebuild `partition` at `epoch` — i.e.
    /// the recovery replay depth. [`SnapshotStore::compact`] exists to bound
    /// this at 1 regardless of the rebase cadence; the sharded runtime
    /// asserts that invariant after every barrier.
    pub fn delta_chain_len(&self, partition: usize, epoch: EpochId) -> usize {
        let mut deltas = 0usize;
        for (_, parts) in self.snapshots.range(..=epoch).rev() {
            let Some(snap) = parts.get(&partition) else {
                continue;
            };
            match snap.kind {
                SnapshotKind::Full => break,
                SnapshotKind::Delta => deltas += 1,
            }
        }
        deltas
    }

    /// Merge adjacent delta snapshots so every full snapshot is followed by at
    /// most one delta per partition. Long-running jobs accumulate one delta
    /// per epoch until the next rebase; compaction bounds recovery replay work
    /// independently of the rebase interval (`full_snapshot_every`).
    ///
    /// A merged delta lives at the *newest* epoch of its run and carries that
    /// snapshot's source offsets; [`SnapshotStore::reconstruct`] at or after
    /// that epoch returns exactly the state the uncompacted chain would have
    /// produced. Intermediate epochs of a merged run lose their per-epoch
    /// capture (the granularity is traded for bounded chain length).
    ///
    /// Returns the number of delta snapshots merged away.
    pub fn compact(&mut self) -> CodecResult<usize> {
        let mut removed_total = 0usize;
        let partitions: BTreeSet<usize> = self
            .snapshots
            .values()
            .flat_map(|parts| parts.keys().copied())
            .collect();
        for partition in partitions {
            // The partition's chain, oldest first.
            let chain: Vec<(EpochId, SnapshotKind)> = self
                .snapshots
                .iter()
                .filter_map(|(epoch, parts)| parts.get(&partition).map(|s| (*epoch, s.kind)))
                .collect();
            // Collect maximal runs of consecutive deltas.
            let mut runs: Vec<Vec<EpochId>> = Vec::new();
            let mut current: Vec<EpochId> = Vec::new();
            for (epoch, kind) in chain {
                match kind {
                    SnapshotKind::Delta => current.push(epoch),
                    SnapshotKind::Full => {
                        if current.len() > 1 {
                            runs.push(std::mem::take(&mut current));
                        } else {
                            current.clear();
                        }
                    }
                }
            }
            if current.len() > 1 {
                runs.push(current);
            }
            for run in runs {
                let (&last_epoch, earlier) = run.split_last().expect("run has >= 2 entries");
                // One decode per delta, one encode for the merged result —
                // a K-delta run costs O(K) codec work, not O(K²).
                let merged = fold_delta_bytes(
                    run.iter()
                        .map(|epoch| self.snapshots[epoch][&partition].state.as_slice()),
                )?;
                let last = self
                    .snapshots
                    .get_mut(&last_epoch)
                    .and_then(|parts| parts.get_mut(&partition))
                    .expect("last run epoch present");
                last.state = merged;
                for &epoch in earlier {
                    if let Some(parts) = self.snapshots.get_mut(&epoch) {
                        parts.remove(&partition);
                        removed_total += 1;
                        if parts.is_empty() {
                            self.snapshots.remove(&epoch);
                        }
                    }
                }
            }
        }
        Ok(removed_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stateful_entities::Value;

    fn addr(entity: &str, key: &str) -> EntityAddr {
        EntityAddr::new(entity, Key::Str(key.to_string().into()))
    }

    fn account(balance: i64) -> EntityState {
        let mut s = EntityState::new();
        s.insert("balance".into(), Value::Int(balance));
        s.insert("payload".into(), Value::Str("x".repeat(16).into()));
        s
    }

    #[test]
    fn put_get_routes_by_key_hash() {
        let mut store = StateStore::new(4);
        for i in 0..100 {
            store.put(addr("Account", &format!("acc{i}")), account(i));
        }
        assert_eq!(store.len(), 100);
        assert_eq!(
            store.read_field(&addr("Account", "acc7"), "balance"),
            Some(Value::Int(7))
        );
        // Every instance is in exactly the partition its key hashes to.
        for i in 0..100 {
            let a = addr("Account", &format!("acc{i}"));
            let p = store.partition_of(a.key());
            assert!(store.partition(p).contains(&a));
        }
        // Partitioning is reasonably balanced (no partition empty for 100 keys).
        for p in 0..store.partition_count() {
            assert!(!store.partition(p).is_empty());
        }
    }

    #[test]
    fn partition_state_roundtrips_through_bytes() {
        let mut part = PartitionState::new();
        part.put(addr("Account", "a"), account(10));
        part.put(addr("User", "u"), account(20));
        let bytes = part.to_bytes();
        let restored = PartitionState::from_bytes(&bytes).unwrap();
        assert_eq!(part, restored);
        assert!(part.approx_size() > 32);
    }

    #[test]
    fn binary_snapshot_is_compact() {
        let mut part = PartitionState::new();
        for i in 0..50 {
            part.put(addr("Account", &format!("acc{i}")), account(i));
        }
        let bytes = part.to_bytes();
        // 50 entities × (addr ~12B + layout idx + int + 16-char payload) plus
        // one shared layout record — far below a JSON encoding (~100B/entity).
        assert!(
            bytes.len() < 50 * 80,
            "binary snapshot too large: {}",
            bytes.len()
        );
        let restored = PartitionState::from_bytes(&bytes).unwrap();
        assert_eq!(part, restored);
    }

    #[test]
    fn take_and_put_back() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let state = part.take(&addr("A", "k")).unwrap();
        assert!(part.take(&addr("A", "k")).is_none());
        part.put(addr("A", "k"), state);
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn dirty_tracking_marks_writes_and_clears_on_snapshot() {
        let mut part = PartitionState::new();
        part.put(addr("A", "x"), account(1));
        part.put(addr("A", "y"), account(2));
        assert_eq!(part.dirty_len(), 2);
        let _ = part.snapshot_full();
        assert_eq!(part.dirty_len(), 0);

        // A read does not dirty; a write does.
        assert!(part.get(&addr("A", "x")).is_some());
        assert_eq!(part.dirty_len(), 0);
        part.get_mut(&addr("A", "x"))
            .unwrap()
            .insert("balance".into(), Value::Int(9));
        assert_eq!(part.dirty_len(), 1);

        let delta = part.snapshot_delta();
        assert_eq!(part.dirty_len(), 0);
        // The delta carries one entity, not the whole partition.
        assert!(delta.len() < part.to_bytes().len());
    }

    #[test]
    fn update_with_marks_dirty_only_on_writes() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let _ = part.snapshot_full();
        assert_eq!(part.dirty_len(), 0);

        // A read-only closure leaves the entity clean.
        let balance = part
            .update_with(&addr("A", "k"), |s| s["balance"].clone())
            .unwrap();
        assert_eq!(balance, Value::Int(1));
        assert_eq!(part.dirty_len(), 0);

        // A writing closure dirties it (and the write sticks).
        part.update_with(&addr("A", "k"), |s| {
            s.insert("balance".into(), Value::Int(7));
        })
        .unwrap();
        assert_eq!(part.dirty_len(), 1);
        assert_eq!(part.get(&addr("A", "k")).unwrap()["balance"], Value::Int(7));

        // Missing entities return None without running the closure.
        assert!(part.update_with(&addr("A", "ghost"), |_| ()).is_none());
    }

    #[test]
    fn delta_roundtrip_with_tombstones() {
        let mut part = PartitionState::new();
        part.put(addr("A", "keep"), account(1));
        part.put(addr("A", "gone"), account(2));
        let base = part.snapshot_full();

        part.get_mut(&addr("A", "keep"))
            .unwrap()
            .insert("balance".into(), Value::Int(42));
        part.take(&addr("A", "gone"));
        let delta = part.snapshot_delta();

        let mut restored = PartitionState::from_bytes(&base).unwrap();
        restored.apply_delta(&delta).unwrap();
        assert_eq!(restored, part);
        assert!(!restored.contains(&addr("A", "gone")));
        assert_eq!(
            restored.get(&addr("A", "keep")).unwrap()["balance"],
            Value::Int(42)
        );
    }

    #[test]
    fn full_and_delta_snapshots_are_distinguished() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let full = part.snapshot_full();
        part.get_mut(&addr("A", "k"))
            .unwrap()
            .insert("balance".into(), Value::Int(2));
        let delta = part.snapshot_delta();
        assert!(PartitionState::from_bytes(&delta).is_err());
        assert!(PartitionState::new().apply_delta(&full).is_err());
    }

    #[test]
    fn corrupted_snapshots_error() {
        let mut part = PartitionState::new();
        part.put(addr("A", "k"), account(1));
        let mut bytes = part.to_bytes();
        assert!(PartitionState::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        bytes[0] = 99; // bad version
        assert!(PartitionState::from_bytes(&bytes).is_err());
        assert!(PartitionState::from_bytes(&[]).is_err());
    }

    #[test]
    fn hostile_class_dictionary_is_rejected_without_interning() {
        // A snapshot claiming a 4-billion-entry class dictionary (or carrying
        // garbage names) must fail cleanly *before* anything reaches the
        // process-global interner — corrupt bytes must not leak memory.
        let mut bytes = vec![2u8, 0u8]; // version 2, full snapshot
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd class count
        assert!(PartitionState::from_bytes(&bytes).is_err());

        let mut bytes = vec![2u8, 0u8];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one dictionary entry
        bytes.extend_from_slice(&7u32.to_le_bytes()); // name of length 7
        bytes.extend_from_slice(b"__EvilX"); // ...then truncated input
        assert!(PartitionState::from_bytes(&bytes).is_err());
        // The parsed-but-failed snapshot never interned its dictionary name.
        assert!(stateful_entities::ClassId::lookup("__EvilX").is_none());
    }

    #[test]
    fn snapshot_store_tracks_complete_epochs() {
        let mut store = SnapshotStore::new(2);
        assert_eq!(store.latest_complete_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: vec![1, 2, 3],
            source_offsets: BTreeMap::from([(0, 10)]),
        });
        // Only one of two partitions reported: epoch 1 is not complete.
        assert_eq!(store.latest_complete_epoch(), None);
        store.add(Snapshot {
            epoch: 1,
            partition: 1,
            kind: SnapshotKind::Full,
            state: vec![4],
            source_offsets: BTreeMap::from([(1, 7)]),
        });
        assert_eq!(store.latest_complete_epoch(), Some(1));
        // A partial newer epoch does not advance the recovery point.
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: vec![9],
            source_offsets: BTreeMap::new(),
        });
        assert_eq!(store.latest_complete_epoch(), Some(1));
        assert_eq!(store.epoch_count(), 2);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.epoch(1).unwrap().len(), 2);
    }

    #[test]
    fn reconstruct_applies_base_plus_deltas() {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);

        part.put(addr("A", "x"), account(1));
        part.put(addr("A", "y"), account(2));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });

        part.get_mut(&addr("A", "x"))
            .unwrap()
            .insert("balance".into(), Value::Int(10));
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        part.take(&addr("A", "y"));
        part.put(addr("B", "z"), account(3));
        store.add(Snapshot {
            epoch: 3,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        // Reconstructing at each epoch matches the state the partition had.
        let at2 = store.reconstruct(0, 2).unwrap().unwrap();
        assert_eq!(at2.get(&addr("A", "x")).unwrap()["balance"], Value::Int(10));
        assert!(at2.contains(&addr("A", "y")));

        let at3 = store.reconstruct(0, 3).unwrap().unwrap();
        assert_eq!(at3, part);
        assert!(!at3.contains(&addr("A", "y")));
        assert!(at3.contains(&addr("B", "z")));

        // Without a full anchor there is nothing to reconstruct from.
        assert!(SnapshotStore::new(1).reconstruct(0, 3).unwrap().is_none());

        // A corrupted snapshot in the chain surfaces as a decode error, not
        // as a missing anchor.
        let mut corrupt = store.clone();
        let bad = corrupt.snapshots.get_mut(&2).unwrap().get_mut(&0).unwrap();
        bad.state.truncate(bad.state.len() / 2);
        assert!(corrupt.reconstruct(0, 3).is_err());
    }

    #[test]
    fn truncate_after_drops_stale_epochs() {
        let (mut store, _) = delta_chain_store(6);
        assert_eq!(store.epoch_count(), 6);
        // Rolling back to epoch 4 drops epochs 5 and 6 (one partition each).
        assert_eq!(store.truncate_after(4), 2);
        assert_eq!(store.epoch_count(), 4);
        assert!(store.epoch(5).is_none() && store.epoch(6).is_none());
        // The surviving chain still reconstructs.
        assert!(store.reconstruct(0, 4).unwrap().is_some());
        // Truncating at-or-above the newest epoch is a no-op.
        assert_eq!(store.truncate_after(10), 0);
        assert_eq!(store.latest_complete_epoch(), Some(4));
    }

    #[test]
    fn state_size_scales_with_payload() {
        let mut small = PartitionState::new();
        let mut big = PartitionState::new();
        let mut s = EntityState::new();
        s.insert("payload".into(), Value::Str("x".repeat(50).into()));
        small.put(addr("A", "k"), s.clone());
        let mut b = EntityState::new();
        b.insert("payload".into(), Value::Str("x".repeat(200_000).into()));
        big.put(addr("A", "k"), b);
        assert!(big.approx_size() > small.approx_size() * 100);
    }

    /// Build a store with one full snapshot at epoch 1 and a delta per epoch
    /// after it, mutating/removing/creating entities along the way. Returns
    /// the store together with the live partition (the expected final state).
    fn delta_chain_store(epochs: u64) -> (SnapshotStore, PartitionState) {
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        for i in 0..6 {
            part.put(addr("A", &format!("k{i}")), account(i));
        }
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::from([(0, 100)]),
        });
        for epoch in 2..=epochs {
            let e = epoch as i64;
            let target = addr("A", &format!("k{}", e % 6));
            match part.get_mut(&target) {
                Some(state) => state.insert("balance".into(), Value::Int(e * 10)),
                // An earlier epoch may have tombstoned this key; re-create it.
                None => part.put(target, account(e * 10)),
            }
            if epoch % 3 == 0 {
                part.take(&addr("A", &format!("k{}", (e + 1) % 6)));
            }
            if epoch % 4 == 0 {
                part.put(addr("B", &format!("fresh{e}")), account(e));
            }
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind: SnapshotKind::Delta,
                state: part.snapshot_delta(),
                source_offsets: BTreeMap::from([(0, 100 * epoch)]),
            });
        }
        (store, part)
    }

    #[test]
    fn compacted_chain_reconstructs_identically_to_raw_chain() {
        let (raw, live) = delta_chain_store(9);
        let mut compacted = raw.clone();
        let merged = compacted.compact().unwrap();
        assert!(merged > 0, "a 8-delta chain must have something to merge");

        let from_raw = raw.reconstruct(0, 9).unwrap().unwrap();
        let from_compacted = compacted.reconstruct(0, 9).unwrap().unwrap();
        assert_eq!(from_raw, from_compacted);
        assert_eq!(from_compacted, live);

        // After compaction, each full is followed by at most one delta: the
        // chain at the final epoch is exactly [full, merged delta].
        let chain: Vec<SnapshotKind> = compacted
            .snapshots
            .values()
            .filter_map(|parts| parts.get(&0).map(|s| s.kind))
            .collect();
        assert_eq!(chain, vec![SnapshotKind::Full, SnapshotKind::Delta]);
        // The merged delta carries the newest source offsets of its run.
        let last = compacted.epoch(9).unwrap().get(&0).unwrap();
        assert_eq!(last.source_offsets[&0], 900);
        // Compaction is idempotent.
        assert_eq!(compacted.compact().unwrap(), 0);
    }

    #[test]
    fn delta_chain_len_reports_recovery_replay_depth() {
        let (raw, _) = delta_chain_store(9);
        // Uncompacted: epochs 2..=9 each appended one delta on the epoch-1
        // full anchor.
        assert_eq!(raw.delta_chain_len(0, 9), 8);
        assert_eq!(raw.delta_chain_len(0, 4), 3);
        assert_eq!(raw.delta_chain_len(0, 1), 0, "a full anchors the chain");
        // A partition with no captures reports an empty chain.
        assert_eq!(raw.delta_chain_len(7, 9), 0);

        let mut compacted = raw.clone();
        compacted.compact().unwrap();
        assert_eq!(
            compacted.delta_chain_len(0, 9),
            1,
            "compaction bounds replay depth at full + one merged delta"
        );
    }

    #[test]
    fn compaction_preserves_tombstone_and_reinsert_ordering() {
        // k removed in one delta and re-created in a later one must survive;
        // k removed *after* being written must stay gone.
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        part.put(addr("A", "revived"), account(1));
        part.put(addr("A", "doomed"), account(2));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });
        part.take(&addr("A", "revived"));
        part.get_mut(&addr("A", "doomed"))
            .unwrap()
            .insert("balance".into(), Value::Int(9));
        store.add(Snapshot {
            epoch: 2,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });
        part.put(addr("A", "revived"), account(42));
        part.take(&addr("A", "doomed"));
        store.add(Snapshot {
            epoch: 3,
            partition: 0,
            kind: SnapshotKind::Delta,
            state: part.snapshot_delta(),
            source_offsets: BTreeMap::new(),
        });

        let expected = store.reconstruct(0, 3).unwrap().unwrap();
        store.compact().unwrap();
        let compacted = store.reconstruct(0, 3).unwrap().unwrap();
        assert_eq!(expected, compacted);
        assert_eq!(
            compacted.get(&addr("A", "revived")).unwrap()["balance"],
            Value::Int(42)
        );
        assert!(!compacted.contains(&addr("A", "doomed")));
    }

    #[test]
    fn compaction_does_not_cross_full_snapshots() {
        // delta, FULL, delta, delta: only the trailing pair may merge — a
        // delta must never be folded across the rebase point it precedes.
        let mut part = PartitionState::new();
        let mut store = SnapshotStore::new(1);
        part.put(addr("A", "k"), account(0));
        store.add(Snapshot {
            epoch: 1,
            partition: 0,
            kind: SnapshotKind::Full,
            state: part.snapshot_full(),
            source_offsets: BTreeMap::new(),
        });
        for (epoch, kind) in [
            (2, SnapshotKind::Delta),
            (3, SnapshotKind::Full),
            (4, SnapshotKind::Delta),
            (5, SnapshotKind::Delta),
        ] {
            part.get_mut(&addr("A", "k"))
                .unwrap()
                .insert("balance".into(), Value::Int(epoch as i64));
            let state = match kind {
                SnapshotKind::Full => part.snapshot_full(),
                SnapshotKind::Delta => part.snapshot_delta(),
            };
            store.add(Snapshot {
                epoch,
                partition: 0,
                kind,
                state,
                source_offsets: BTreeMap::new(),
            });
        }
        let expected = store.reconstruct(0, 5).unwrap().unwrap();
        assert_eq!(
            store.compact().unwrap(),
            1,
            "only the trailing delta pair merges"
        );
        let chain: Vec<(EpochId, SnapshotKind)> = store
            .snapshots
            .iter()
            .filter_map(|(e, parts)| parts.get(&0).map(|s| (*e, s.kind)))
            .collect();
        assert_eq!(
            chain,
            vec![
                (1, SnapshotKind::Full),
                (2, SnapshotKind::Delta),
                (3, SnapshotKind::Full),
                (5, SnapshotKind::Delta),
            ]
        );
        assert_eq!(store.reconstruct(0, 5).unwrap().unwrap(), expected);
    }
}
